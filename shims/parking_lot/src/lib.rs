//! Std-only stand-in for the slice of `parking_lot` this workspace uses.
//!
//! The real crate is a registry dependency; this shim keeps the same call
//! sites compiling against `std::sync` so a clean checkout builds offline.
//! Semantics match what the workspace relies on: non-poisoning locks
//! (poison is swallowed via [`std::sync::PoisonError::into_inner`], which is
//! what `parking_lot` effectively gives you) and a `Condvar` that takes
//! `&mut MutexGuard` instead of consuming the guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutual exclusion primitive, API-compatible with `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, ignoring poison (parking_lot locks never poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can take the guard out and put a fresh one back
/// without consuming the caller's binding.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable, API-compatible with the `parking_lot::Condvar`
/// methods this workspace calls (`wait`, `wait_for`, `notify_one`,
/// `notify_all`).
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(g)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock, API-compatible with `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(20));
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
