//! Std-only stand-in for the slice of `criterion` this workspace uses.
//!
//! Keeps `cargo bench` working offline: every bench target compiles and
//! runs, timing each case with `std::time::Instant` and printing a
//! mean/min/max line per benchmark. No statistical analysis, HTML
//! reports, or comparison baselines — this is a measurement smoke
//! harness, not the real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Cap on total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate throughput (reported alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            samples,
            budget: self.criterion.measurement_time,
            warm_up: self.criterion.warm_up_time,
            durations: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Run one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::from_parameter(id);
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    warm_up: Duration,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over up to `sample_size` iterations (bounded by the
    /// measurement-time budget).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let start = Instant::now();
        self.durations.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.durations.push(t0.elapsed());
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.durations.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let total: Duration = self.durations.iter().sum();
        let mean = total / self.durations.len() as u32;
        let min = *self.durations.iter().min().expect("non-empty");
        let max = *self.durations.iter().max().expect("non-empty");
        let thrpt = match throughput {
            Some(Throughput::Bytes(b)) if mean.as_secs_f64() > 0.0 => {
                format!(
                    "  {:.1} MiB/s",
                    b as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(e)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:.1} elem/s", e as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){thrpt}",
            self.durations.len()
        );
    }
}

/// Define a bench group: supports both the struct form
/// (`name = ...; config = ...; targets = ...`) and the simple list form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .measurement_time(std::time::Duration::from_millis(50))
            .warm_up_time(std::time::Duration::from_millis(1));
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
