//! Std-only stand-in for the slice of `rand` this workspace uses:
//! `StdRng::seed_from_u64`, `rng.random::<T>()`, and
//! `rng.random_range(a..b)`.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! fine for synthetic data and weight init. It is *not* the same stream
//! as the real `rand::rngs::StdRng`; all in-repo seeds are self-consistent.

use std::ops::Range;

/// Deterministic pseudo-random generators.
pub mod rngs {
    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-scramble so that nearby seeds don't yield correlated streams.
        StdRng {
            state: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling methods, mirroring the `rand::Rng`/`RngExt` surface we call.
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for ints).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from a half-open range.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self.next_u64(), range)
    }
}

impl RngExt for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from 64 random bits (`rng.random::<T>()`).
pub trait Standard {
    /// Derive a sample from 64 uniform random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> f32 {
        // 24 top bits -> uniform in [0, 1).
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Integer types usable with `random_range(a..b)`.
pub trait UniformInt: Sized {
    /// Map 64 uniform bits into `range`.
    fn sample_range(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is < 2^-40 for the spans used here.
                range.start + (bits % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
