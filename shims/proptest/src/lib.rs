//! Std-only stand-in for the slice of `proptest` this workspace uses.
//!
//! Implements `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `any::<T>()`, numeric range strategies, `Just`, and `collection::vec`
//! on top of a deterministic SplitMix64 generator. Each test case is
//! seeded from the test's full path and the case index, so failures
//! reproduce run-to-run; set `PROPTEST_SEED=<u64>` to shift the whole
//! stream. There is no shrinking: the deterministic seed makes every
//! failing case directly replayable, which is what the in-repo suites
//! rely on.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-suite configuration (only `cases` is consumed in this workspace).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed `prop_assert!`-style check, carried out of the test body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic SplitMix64 stream for one test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test path and case index (plus `PROPTEST_SEED` if set).
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let mut rng = Self {
            state: h ^ ((case as u64) << 32) ^ env_seed,
        };
        // Warm up so nearby case indices decorrelate immediately.
        rng.next_u64();
        rng
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// Type of value produced.
    type Value;
    /// Produce one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Uniform strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-range uniform distribution for `any::<T>()`.
pub trait Arbitrary {
    /// Draw one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Arbitrary bit patterns (including NaN/inf) exercise codecs best.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from a non-empty set of alternatives.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The names test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __res: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __res {
                    panic!(
                        "property `{}` failed at case {}/{} (deterministic; re-run reproduces, set PROPTEST_SEED to vary): {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                __l,
                __r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({}) at {}:{}",
                __l,
                __r,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Uniformly choose among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 1u64..=4, x in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x), "x = {}", x);
        }

        #[test]
        fn vec_lengths_respect_size(
            xs in crate::collection::vec(any::<u8>(), 2..5),
            ys in crate::collection::vec(any::<u64>(), 7),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 4);
            prop_assert_eq!(ys.len(), 7);
        }

        #[test]
        fn oneof_hits_all_choices(seed in any::<u64>()) {
            let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
            let mut rng = crate::TestRng::for_case("oneof", (seed % 1000) as u32);
            let mut seen = [false; 4];
            for _ in 0..64 {
                seen[strat.generate(&mut rng) as usize] = true;
            }
            prop_assert!(seen[1] && seen[2] && seen[3]);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("path", 3);
        let mut b = crate::TestRng::for_case("path", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("path", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
