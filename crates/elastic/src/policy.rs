//! The adaptive recovery-policy engine ("Chameleon mode").
//!
//! The paper fixes the recovery engine per run: forward-shrink or
//! rollback-rendezvous, chosen at launch. But which arm survives a given
//! failure *cheapest* depends on live state — how stale the checkpoint is,
//! how big the group is, how expensive a step is, whether warm spares are
//! standing by, how lossy the links have been. Chameleon-style systems
//! show real-time selection beats any static policy; Prime-CCL-style warm
//! spare pools show a failure can be absorbed with *no* shrink at all.
//!
//! [`PolicyEngine`] scores the three arms of
//! [`ulfm::RecoveryArm`] with the extended
//! [`cost_model`](crate::cost_model) on [`PolicyInputs`] gathered at the
//! failure site, and the forward engine commits the chosen arm uniformly
//! through [`ulfm::Communicator::commit_recovery_policy`] — only the
//! leader's choice matters, and it rides inside the committed proposal, so
//! locally-diverging inputs (clocks, fabric stats) can never diverge the
//! SPMD control flow.
//!
//! The policy layer is itself recoverable: if the chosen arm dies
//! mid-recovery (a spare killed during promotion, a checkpoint sync broken
//! by a cascade), the engine falls down a deterministic chain —
//! spare → shrink → abort-below-floor — instead of wedging. Forward-shrink
//! is the chain's backstop because it is the only arm with no
//! preconditions: retained inputs always exist.
//!
//! The scoring itself is deterministic (a pure function of the inputs) and
//! monotone in checkpoint age and group size — property-tested in
//! `tests/cost_props.rs`.

use crate::cost_model::{PolicyInputs, RecoveryCostModel};
use ulfm::RecoveryArm;

/// How the forward engine picks a recovery arm at each failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyMode {
    /// Score all arms with the cost model and pick the cheapest
    /// (Chameleon mode).
    Adaptive,
    /// Always use one arm (the paper's fixed-engine behaviour). Infeasible
    /// choices degrade to [`RecoveryArm::Shrink`] — never a wedge.
    Static(RecoveryArm),
}

impl Default for PolicyMode {
    fn default() -> Self {
        // The seed behaviour: pure forward-shrink, no policy round at all
        // (see `ForwardConfig::policy_active`).
        PolicyMode::Static(RecoveryArm::Shrink)
    }
}

/// The recovery-policy engine: a [`PolicyMode`] plus the cost model that
/// scores the arms under [`PolicyMode::Adaptive`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyEngine {
    /// Selection mode.
    pub mode: PolicyMode,
    /// Analytic per-arm cost model.
    pub model: RecoveryCostModel,
}

/// The fixed preference order that breaks exact score ties — and the
/// fallback chain's direction: every arm falls back *toward* `Shrink`.
pub const ARM_ORDER: [RecoveryArm; 3] = [
    RecoveryArm::Shrink,
    RecoveryArm::PromoteSpares,
    RecoveryArm::Rollback,
];

impl PolicyEngine {
    /// An engine in the given mode with the default (Summit-calibrated)
    /// cost model.
    pub fn new(mode: PolicyMode) -> Self {
        Self {
            mode,
            model: RecoveryCostModel::default(),
        }
    }

    /// Pick the recovery arm for one failure. Deterministic: a pure
    /// function of `inputs` (ties break by [`ARM_ORDER`]). Arms whose
    /// preconditions fail (promotion with no spares, rollback with no
    /// checkpoint) score infinite and can never win; a *static* infeasible
    /// choice degrades to [`RecoveryArm::Shrink`], which has no
    /// preconditions.
    pub fn choose(&self, inputs: &PolicyInputs) -> RecoveryArm {
        match self.mode {
            PolicyMode::Static(arm) => {
                if self.model.recovery_cost(arm, inputs).is_finite() {
                    arm
                } else {
                    RecoveryArm::Shrink
                }
            }
            PolicyMode::Adaptive => {
                let mut best = RecoveryArm::Shrink;
                let mut best_score = f64::INFINITY;
                for arm in ARM_ORDER {
                    let s = self.model.score(arm, inputs);
                    // Strict `<`: earlier arms in ARM_ORDER win ties.
                    if s < best_score {
                        best = arm;
                        best_score = s;
                    }
                }
                best
            }
        }
    }

    /// The scores behind [`PolicyEngine::choose`], in [`ARM_ORDER`] — used
    /// by the regret bench to compare the adaptive pick against an oracle
    /// with perfect knowledge.
    pub fn scores(&self, inputs: &PolicyInputs) -> [(RecoveryArm, f64); 3] {
        ARM_ORDER.map(|arm| (arm, self.model.score(arm, inputs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> PolicyInputs {
        PolicyInputs {
            world: 6,
            lost: 1,
            spares: 1,
            has_ckpt: true,
            ckpt_age_steps: 3,
            remaining_steps: 400,
            step_time: 0.01,
            state_bytes: 4096.0,
            perturb_rate: 0.0,
        }
    }

    #[test]
    fn adaptive_prefers_promotion_when_spares_exist_and_work_remains() {
        // A warm spare forfeits no throughput; with many steps ahead the
        // deficit term dominates and promotion must win.
        let e = PolicyEngine::new(PolicyMode::Adaptive);
        assert_eq!(e.choose(&inputs()), RecoveryArm::PromoteSpares);
    }

    #[test]
    fn adaptive_without_spares_never_picks_promotion() {
        let e = PolicyEngine::new(PolicyMode::Adaptive);
        let inp = PolicyInputs {
            spares: 0,
            ..inputs()
        };
        assert_ne!(e.choose(&inp), RecoveryArm::PromoteSpares);
    }

    #[test]
    fn static_infeasible_degrades_to_shrink() {
        let no_spares = PolicyInputs {
            spares: 0,
            ..inputs()
        };
        let e = PolicyEngine::new(PolicyMode::Static(RecoveryArm::PromoteSpares));
        assert_eq!(e.choose(&no_spares), RecoveryArm::Shrink);
        let no_ckpt = PolicyInputs {
            has_ckpt: false,
            ..inputs()
        };
        let e = PolicyEngine::new(PolicyMode::Static(RecoveryArm::Rollback));
        assert_eq!(e.choose(&no_ckpt), RecoveryArm::Shrink);
    }

    #[test]
    fn static_feasible_is_honoured() {
        let e = PolicyEngine::new(PolicyMode::Static(RecoveryArm::Rollback));
        assert_eq!(e.choose(&inputs()), RecoveryArm::Rollback);
    }

    #[test]
    fn scores_align_with_choice() {
        let e = PolicyEngine::new(PolicyMode::Adaptive);
        let scores = e.scores(&inputs());
        let min = scores
            .iter()
            .fold((RecoveryArm::Shrink, f64::INFINITY), |acc, &(a, s)| {
                if s < acc.1 {
                    (a, s)
                } else {
                    acc
                }
            });
        assert_eq!(min.0, e.choose(&inputs()));
    }
}
