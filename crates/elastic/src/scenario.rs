//! Scenario orchestration: scripts the paper's three elasticity scenarios
//! (§3.3) over either engine and collects per-worker outcomes and recovery
//! breakdowns. Used by the integration tests, the examples, and the
//! benches that regenerate the paper's figures.

use crate::backward::{run_backward_worker, BackwardConfig, ElasticDriver};
use crate::config::{RecoveryPolicy, TrainSpec, WorkerExit};
use crate::forward::{run_forward_role, run_forward_worker, ForwardConfig, Role};
use crate::policy::PolicyMode;
use crate::profiler::{mean_breakdown, RecoveryBreakdown, RecoveryKind};
use std::sync::Arc;
use std::time::{Duration, Instant};
use transport::{
    Backend, BackendKind, Endpoint, Fabric, FaultInjector, FaultPlan, PerturbPlan, RankId,
    SocketBackend, Topology,
};
use ulfm::Universe;

/// Which of the paper's dynamic-training scenarios to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Scenario I — "Down": drop the failed process/node and continue with
    /// the survivors.
    Downscale,
    /// Scenario II — "Same": replace the failed capacity with fresh
    /// workers so the worker count recovers.
    Replace,
    /// Scenario III — "Up": no failure; new workers join mid-run and the
    /// group grows.
    Upscale,
}

/// Which engine to run the scenario on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// ULFM forward recovery (the paper's approach).
    UlfmForward,
    /// Gloo + checkpoint backward recovery (Elastic Horovod baseline).
    GlooBackward,
}

/// Full scenario description.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Engine under test.
    pub engine: Engine,
    /// The training workload.
    pub spec: TrainSpec,
    /// Initial worker count.
    pub workers: usize,
    /// Workers per node (Summit: 6).
    pub ranks_per_node: usize,
    /// Eviction policy.
    pub policy: RecoveryPolicy,
    /// The scenario to script.
    pub kind: ScenarioKind,
    /// Victim of the injected failure (Downscale/Replace). Dies at its
    /// `fail_at_op`-th allreduce protocol step.
    pub victim: usize,
    /// Which occurrence of the victim's `allreduce.step` fault point kills
    /// it (lets tests target a specific step/tensor).
    pub fail_at_op: u64,
    /// How many joiners to add (Replace: usually = evicted count;
    /// Upscale: the growth amount).
    pub joiners: usize,
    /// Forward engine: renormalize degraded steps.
    pub renormalize: bool,
    /// Optional adversarial link schedule (drops/dups/corruption/reorder/
    /// delay), healed by the transport's retransmission layer.
    pub perturb: Option<PerturbPlan>,
    /// Optional engine-level failure-detection deadline: a collective that
    /// stalls on a silent peer past this converts the hang into a peer-death
    /// report (ULFM suspicion) instead of blocking forever.
    pub suspicion_timeout: Option<Duration>,
    /// Extra fault triggers merged into the scripted victim's plan — lets
    /// tests and `repro` express multi-victim and during-recovery cascades
    /// (e.g. a second kill at `shrink.attempt` or `ckpt.sync`).
    pub extra_faults: FaultPlan,
    /// Transport backend the workers communicate over. `InProc` (the
    /// default) is the shared-memory fabric; `Tcp`/`Unix` run every worker
    /// over a real socket mesh (forward engine). Socket joins rendezvous
    /// through a shared KV store ([`ulfm::NetJoin`]), so all three
    /// scenarios run on all backends.
    pub backend: BackendKind,
    /// Warm spares to pre-join the pool (forward engine): spawned at
    /// launch, promoted only by a recovery's policy round, dismissed at
    /// completion. Their exits append after members and joiners.
    pub spares: usize,
    /// Recovery-arm selection for the forward engine's policy layer. The
    /// default (static shrink) keeps the seed behavior.
    pub policy_mode: PolicyMode,
    /// Forward engine: capture a local checkpoint every this many steps
    /// (the rollback arm's restore source); 0 disables.
    pub ckpt_every: u64,
}

impl ScenarioConfig {
    /// A small, fast default scenario (used by tests/examples).
    pub fn quick(engine: Engine, kind: ScenarioKind) -> Self {
        Self {
            engine,
            spec: TrainSpec::default(),
            workers: 6,
            ranks_per_node: 3,
            policy: RecoveryPolicy::DropProcess,
            kind,
            victim: 2,
            fail_at_op: 7,
            joiners: 1,
            renormalize: false,
            perturb: None,
            suspicion_timeout: None,
            extra_faults: FaultPlan::none(),
            backend: BackendKind::InProc,
            spares: 0,
            policy_mode: PolicyMode::default(),
            ckpt_every: 0,
        }
    }
}

/// What a scenario produced.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Exit of every worker: initial workers first, then joiners, then
    /// warm spares.
    pub exits: Vec<WorkerExit>,
    /// All recovery breakdowns from all workers.
    pub breakdowns: Vec<RecoveryBreakdown>,
    /// Wall-clock duration of the whole scenario.
    pub wall: Duration,
    /// Transport-layer counters for this scenario's fabric (retransmits,
    /// corrupt frames, suspicions, ...) — per-run, unlike the process-global
    /// telemetry registry.
    pub fabric_stats: transport::FabricStats,
}

impl ScenarioResult {
    /// Workers that trained to completion.
    pub fn completed(&self) -> usize {
        self.exits.iter().filter(|e| e.completed()).count()
    }

    /// Mean breakdown over workers for a given episode kind.
    pub fn mean_breakdown(&self, kind: RecoveryKind) -> Option<RecoveryBreakdown> {
        let of_kind: Vec<RecoveryBreakdown> = self
            .breakdowns
            .iter()
            .filter(|b| b.kind == kind)
            .cloned()
            .collect();
        mean_breakdown(&of_kind)
    }

    /// Assert that every completed worker holds bit-identical model state.
    /// Returns the common fingerprint.
    pub fn assert_consistent_state(&self) -> u64 {
        let fps: Vec<u64> = self
            .exits
            .iter()
            .filter(|e| e.completed())
            .filter_map(|e| e.stats().map(|s| s.state_fingerprint))
            .collect();
        assert!(!fps.is_empty(), "no worker completed");
        for w in fps.windows(2) {
            assert_eq!(w[0], w[1], "model replicas diverged");
        }
        fps[0]
    }
}

/// Run a scripted scenario to completion.
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioResult {
    let metric = match cfg.engine {
        Engine::UlfmForward => "elastic.scenario.forward",
        Engine::GlooBackward => "elastic.scenario.backward",
    };
    telemetry::counter(&format!("{metric}.runs")).incr();
    let _span = telemetry::span(&format!("{metric}.wall_ns"));
    match cfg.engine {
        Engine::UlfmForward => run_forward_scenario(cfg),
        Engine::GlooBackward => run_backward_scenario(cfg),
    }
}

fn fault_plan(cfg: &ScenarioConfig) -> FaultPlan {
    let scripted = match cfg.kind {
        ScenarioKind::Upscale => FaultPlan::none(),
        _ => FaultPlan::none().kill_at_point(RankId(cfg.victim), "allreduce.step", cfg.fail_at_op),
    };
    scripted.merge(cfg.extra_faults.clone())
}

fn joiner_count(cfg: &ScenarioConfig) -> usize {
    match cfg.kind {
        ScenarioKind::Downscale => 0,
        _ => cfg.joiners,
    }
}

fn run_forward_scenario(cfg: &ScenarioConfig) -> ScenarioResult {
    if cfg.backend != BackendKind::InProc {
        return run_forward_scenario_sockets(cfg);
    }
    let t0 = Instant::now();
    let topology = Topology::new(cfg.ranks_per_node);
    let universe = Universe::new(topology, fault_plan(cfg));
    if let Some(plan) = &cfg.perturb {
        universe.set_perturbation(plan.clone());
    }
    if let Some(t) = cfg.suspicion_timeout {
        universe.set_suspicion_timeout(t);
    }
    let fwd_cfg = ForwardConfig {
        spec: cfg.spec.clone(),
        policy: cfg.policy,
        accept_joiners: true,
        expected_joiners: joiner_count(cfg),
        renormalize_after_loss: cfg.renormalize,
        lr_scaling: None,
        join_wait: None,
        policy_mode: cfg.policy_mode,
        expected_spares: cfg.spares,
        ckpt_every: cfg.ckpt_every,
    };

    let c1 = fwd_cfg.clone();
    let initial = universe
        .spawn_batch(cfg.workers, move |proc| {
            let out = run_forward_worker(&proc, &c1, false);
            (out.exit, out.breakdowns)
        })
        .expect("in-process universe");

    // Warm spares park in the pool immediately — members wait for their
    // announcements before training, so the pool is warm before the
    // scripted failure can hit.
    let spare_handles = if cfg.spares > 0 {
        let cs = fwd_cfg.clone();
        universe
            .spawn_joiners(cfg.spares, move |proc| {
                let out = run_forward_role(&proc, &cs, Role::Spare);
                (out.exit, out.breakdowns)
            })
            .expect("in-process universe")
    } else {
        Vec::new()
    };

    // Spawn joiners once the trigger condition holds: after the failure
    // (Replace) or after a fixed dwell (Upscale).
    let joiners = joiner_count(cfg);
    let joiner_handles = if joiners > 0 {
        match cfg.kind {
            ScenarioKind::Replace => {
                while universe
                    .fabric()
                    .expect("in-process universe")
                    .dead_ranks()
                    .is_empty()
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            ScenarioKind::Upscale => std::thread::sleep(Duration::from_millis(10)),
            ScenarioKind::Downscale => unreachable!(),
        }
        let c2 = fwd_cfg.clone();
        universe
            .spawn_joiners(joiners, move |proc| {
                let out = run_forward_worker(&proc, &c2, true);
                (out.exit, out.breakdowns)
            })
            .expect("in-process universe")
    } else {
        Vec::new()
    };

    let mut exits = Vec::new();
    let mut breakdowns = Vec::new();
    for h in initial
        .into_iter()
        .chain(joiner_handles)
        .chain(spare_handles)
    {
        let (exit, bd) = h.join();
        exits.push(exit);
        breakdowns.extend(bd);
    }
    ScenarioResult {
        exits,
        breakdowns,
        wall: t0.elapsed(),
        fabric_stats: universe.fabric().expect("in-process universe").stats(),
    }
}

/// Forward recovery over a real socket mesh: one backend (and one
/// `Universe`) per worker, connected only by byte streams — the same shape
/// a multi-process launch has, minus the process boundary. All three
/// scenarios run here: joins rendezvous through a [`gloo::KvStore`] via
/// [`ulfm::NetJoin`] (the in-process stand-in for the launcher's TCP store
/// server), and joiners bootstrap exactly like a fresh OS process — bind a
/// listener, scan the members' published addresses, dial in, announce.
fn run_forward_scenario_sockets(cfg: &ScenarioConfig) -> ScenarioResult {
    let t0 = Instant::now();
    let topology = Topology::new(cfg.ranks_per_node);
    let plan = fault_plan(cfg);
    let backends = SocketBackend::local_mesh(cfg.backend, topology, cfg.workers, plan.clone())
        .expect("socket mesh");
    // Socket peers have no global wakeup: a worker that never touches
    // the dead rank's link must learn of the death by suspicion, so the
    // scenario always runs with a detection deadline here.
    let suspicion = cfg.suspicion_timeout.unwrap_or(Duration::from_secs(5));
    for b in &backends {
        if let Some(plan) = &cfg.perturb {
            b.set_perturbation(plan.clone());
        }
        b.set_suspicion_timeout(Some(suspicion));
    }
    let joiners = joiner_count(cfg);
    let store = gloo::KvStore::shared();
    let prefix = "scn/";
    let addr_prefix = format!("{prefix}addr/");
    let fwd_cfg = ForwardConfig {
        spec: cfg.spec.clone(),
        policy: cfg.policy,
        accept_joiners: joiners > 0,
        expected_joiners: joiners,
        renormalize_after_loss: cfg.renormalize,
        lr_scaling: None,
        // Bounded so a crashed joiner degrades the group to running shrunk
        // instead of wedging the epoch boundary (and an orphaned joiner
        // exits instead of polling the store forever).
        join_wait: Some(Duration::from_secs(10)),
        policy_mode: cfg.policy_mode,
        expected_spares: cfg.spares,
        ckpt_every: cfg.ckpt_every,
    };
    let group: Vec<RankId> = (0..cfg.workers).map(RankId).collect();
    // Joiner backends surface here for stats aggregation and shutdown.
    let joined_backends: parking_lot::Mutex<Vec<Arc<SocketBackend>>> =
        parking_lot::Mutex::new(Vec::new());
    let joined_sink = &joined_backends;
    let (exits, breakdowns) = std::thread::scope(|s| {
        let member_handles: Vec<_> = backends
            .iter()
            .cloned()
            .map(|b| {
                let group = group.clone();
                let fwd_cfg = fwd_cfg.clone();
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let rank = b.rank();
                    let join =
                        ulfm::NetJoin::new(store, prefix).with_contact(b.local_addr().to_string());
                    join.publish_contact(rank);
                    let ep = Endpoint::from_backend(b as Arc<dyn Backend>);
                    let (_universe, proc) =
                        Universe::for_backend_with_join(ep, group, Arc::new(join));
                    let out = run_forward_worker(&proc, &fwd_cfg, false);
                    (out.exit, out.breakdowns)
                })
            })
            .collect();

        let joiner_handles: Vec<_> = (0..joiners)
            .map(|i| {
                let jrank = RankId(cfg.workers + i);
                let fwd_cfg = fwd_cfg.clone();
                let store = Arc::clone(&store);
                let addr_prefix = addr_prefix.clone();
                let plan = plan.clone();
                // A surviving member's backend doubles as the failure
                // observer triggering Replace joiners.
                let watch = Arc::clone(&backends[(cfg.victim + 1) % cfg.workers]);
                s.spawn(move || {
                    match cfg.kind {
                        ScenarioKind::Replace => {
                            while watch.is_alive(RankId(cfg.victim)) {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                        ScenarioKind::Upscale => std::thread::sleep(Duration::from_millis(10)),
                        ScenarioKind::Downscale => unreachable!(),
                    }
                    // Bootstrap like a fresh process: every member address
                    // must be published before we dial the mesh.
                    while store.count_prefix(&addr_prefix) < cfg.workers {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let member_addrs: Vec<(RankId, String)> = store
                        .scan_prefix(&addr_prefix)
                        .into_iter()
                        .filter_map(|(k, v)| {
                            let rank = k.rsplit('/').next()?.parse::<usize>().ok()?;
                            Some((RankId(rank), String::from_utf8(v).ok()?))
                        })
                        .collect();
                    let listener = SocketBackend::bind(cfg.backend).expect("bind joiner listener");
                    let contact = listener.addr().to_string();
                    let b = SocketBackend::establish_joiner(
                        jrank,
                        topology,
                        listener,
                        &member_addrs,
                        transport::FaultInjector::new(plan),
                        Duration::from_secs(10),
                    )
                    .expect("joiner could not reach any member");
                    if let Some(plan) = &cfg.perturb {
                        b.set_perturbation(plan.clone());
                    }
                    b.set_suspicion_timeout(Some(suspicion));
                    joined_sink.lock().push(Arc::clone(&b));
                    let join = ulfm::NetJoin::new(store, prefix).with_contact(contact);
                    let ep = Endpoint::from_backend(b as Arc<dyn Backend>);
                    let (_universe, proc) = Universe::joiner_for_backend(ep, Arc::new(join));
                    let out = run_forward_worker(&proc, &fwd_cfg, true);
                    (out.exit, out.breakdowns)
                })
            })
            .collect();

        // Warm spares bootstrap exactly like joiners — bind, scan member
        // addresses, dial the mesh — but immediately (the pool must be
        // warm before the scripted failure) and into the spare namespace.
        let spare_handles: Vec<_> = (0..cfg.spares)
            .map(|i| {
                let srank = RankId(cfg.workers + joiners + i);
                let fwd_cfg = fwd_cfg.clone();
                let store = Arc::clone(&store);
                let addr_prefix = addr_prefix.clone();
                let plan = plan.clone();
                s.spawn(move || {
                    while store.count_prefix(&addr_prefix) < cfg.workers {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let member_addrs: Vec<(RankId, String)> = store
                        .scan_prefix(&addr_prefix)
                        .into_iter()
                        .filter_map(|(k, v)| {
                            let rank = k.rsplit('/').next()?.parse::<usize>().ok()?;
                            Some((RankId(rank), String::from_utf8(v).ok()?))
                        })
                        .collect();
                    let listener = SocketBackend::bind(cfg.backend).expect("bind spare listener");
                    let contact = listener.addr().to_string();
                    let b = SocketBackend::establish_joiner(
                        srank,
                        topology,
                        listener,
                        &member_addrs,
                        transport::FaultInjector::new(plan),
                        Duration::from_secs(10),
                    )
                    .expect("spare could not reach any member");
                    if let Some(plan) = &cfg.perturb {
                        b.set_perturbation(plan.clone());
                    }
                    b.set_suspicion_timeout(Some(suspicion));
                    joined_sink.lock().push(Arc::clone(&b));
                    let join = ulfm::NetJoin::new(store, prefix).with_contact(contact);
                    let ep = Endpoint::from_backend(b as Arc<dyn Backend>);
                    let (_universe, proc) = Universe::joiner_for_backend(ep, Arc::new(join));
                    let out = run_forward_role(&proc, &fwd_cfg, Role::Spare);
                    (out.exit, out.breakdowns)
                })
            })
            .collect();

        let mut exits = Vec::new();
        let mut breakdowns = Vec::new();
        for h in member_handles
            .into_iter()
            .chain(joiner_handles)
            .chain(spare_handles)
        {
            let (exit, bd) = h.join().expect("worker thread panicked");
            exits.push(exit);
            breakdowns.extend(bd);
        }
        (exits, breakdowns)
    });
    // Each backend observes its own traffic; the sum is the mesh total.
    // (Unlike the shared fabric, `deaths`/`suspicions` count per-rank
    // observations of the same event.)
    let mut fabric_stats = transport::FabricStats::default();
    let all_backends: Vec<Arc<SocketBackend>> = backends
        .into_iter()
        .chain(std::mem::take(&mut *joined_backends.lock()))
        .collect();
    for b in &all_backends {
        let st = b.stats();
        fabric_stats.messages += st.messages;
        fabric_stats.bytes += st.bytes;
        fabric_stats.deaths += st.deaths;
        fabric_stats.retransmits += st.retransmits;
        fabric_stats.corrupt_frames += st.corrupt_frames;
        fabric_stats.dup_suppressed += st.dup_suppressed;
        fabric_stats.suspicions += st.suspicions;
    }
    for b in &all_backends {
        b.shutdown();
    }
    ScenarioResult {
        exits,
        breakdowns,
        wall: t0.elapsed(),
        fabric_stats,
    }
}

fn run_backward_scenario(cfg: &ScenarioConfig) -> ScenarioResult {
    assert_eq!(
        cfg.backend,
        BackendKind::InProc,
        "the Gloo backward engine rendezvouses through the in-process store"
    );
    let t0 = Instant::now();
    let topology = Topology::new(cfg.ranks_per_node);
    let fabric = Fabric::new(topology, FaultInjector::new(fault_plan(cfg)));
    if let Some(plan) = &cfg.perturb {
        fabric.set_perturbation(plan.clone());
    }
    fabric.set_suspicion_timeout(cfg.suspicion_timeout);
    let initial_ranks = fabric.register_ranks(cfg.workers);
    let driver = ElasticDriver::new(topology, initial_ranks.clone());
    driver.set_min_workers(cfg.spec.min_workers);
    let bwd_cfg = BackwardConfig {
        spec: cfg.spec.clone(),
        policy: cfg.policy,
        checkpoint_every: 1,
        op_timeout: Duration::from_millis(600),
        rendezvous_timeout: Duration::from_secs(30),
        worker_init_delay: Duration::from_millis(5),
        expected_new_workers: joiner_count(cfg),
    };

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for &rank in &initial_ranks {
            let fabric = Arc::clone(&fabric);
            let driver = Arc::clone(&driver);
            let bwd_cfg = bwd_cfg.clone();
            handles.push(s.spawn(move || {
                let ep = Endpoint::new(Arc::clone(&fabric), rank);
                let out = run_backward_worker(&ep, &bwd_cfg, &driver, false);
                fabric.kill_rank(rank); // model process exit
                out
            }));
        }

        // Joiners.
        let joiners = joiner_count(cfg);
        let joiner_handles: Vec<_> = if joiners > 0 {
            match cfg.kind {
                ScenarioKind::Replace => {
                    while fabric.dead_ranks().is_empty() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                ScenarioKind::Upscale => std::thread::sleep(Duration::from_millis(10)),
                ScenarioKind::Downscale => unreachable!(),
            }
            let new_ranks = fabric.register_ranks(joiners);
            new_ranks
                .into_iter()
                .map(|rank| {
                    let fabric = Arc::clone(&fabric);
                    let driver = Arc::clone(&driver);
                    let bwd_cfg = bwd_cfg.clone();
                    s.spawn(move || {
                        let ep = Endpoint::new(Arc::clone(&fabric), rank);
                        let out = run_backward_worker(&ep, &bwd_cfg, &driver, true);
                        fabric.kill_rank(rank); // model process exit
                        out
                    })
                })
                .collect()
        } else {
            Vec::new()
        };

        let mut exits = Vec::new();
        let mut breakdowns = Vec::new();
        for h in handles.into_iter().chain(joiner_handles) {
            let (exit, bd) = h.join().expect("worker thread panicked");
            exits.push(exit);
            breakdowns.extend(bd);
        }
        ScenarioResult {
            exits,
            breakdowns,
            wall: t0.elapsed(),
            fabric_stats: fabric.stats(),
        }
    })
}
