//! Elastic deep learning through resilient collective operations.
//!
//! This crate is the Rust reproduction of the paper's contribution (Li,
//! Bosilca, Bouteiller, Nicolae — SC-W'23): data-parallel training that
//! survives worker failures and membership changes **at the granularity of
//! a single collective operation**, plus the Elastic-Horovod-style baseline
//! it is evaluated against.
//!
//! Two engines train the same model on the same data:
//!
//! * [`forward`] — **forward recovery** over the ULFM runtime. A failure
//!   inside a gradient allreduce is absorbed by revoke → agree → shrink →
//!   *re-execute the failed collective from retained inputs* on the shrunk
//!   communicator. The mini-batch completes in degraded mode; nothing rolls
//!   back; checkpoints are not needed for failure recovery (paper §3.2,
//!   Fig. 2 right).
//! * [`backward`] — **backward recovery** over Gloo-style contexts. Any
//!   failure poisons the context; an elastic driver catches the exception,
//!   blacklists the failed node (or process), re-runs the KV-store
//!   rendezvous, rebuilds the context, reloads the last per-batch
//!   in-memory checkpoint, and recomputes lost work (paper §3.2, Fig. 2
//!   left; §4's Elastic Horovod).
//!
//! Both engines support the paper's three elasticity scenarios (§3.3):
//! *downscaling* (drop process or node), *replacement* (failed capacity
//! rejoins), and *automated upscaling* (new workers join at epoch
//! boundaries), and both record per-phase recovery cost breakdowns that
//! the `bench` crate turns into the paper's Figures 4–7.
//!
//! On top of the forward engine sits the adaptive recovery-policy layer
//! ([`policy`], "Chameleon mode"): at each failure a [`PolicyEngine`]
//! scores forward-shrink vs. hot-spare promotion vs. checkpoint rollback
//! with the live-input [`cost_model`] and commits the winning arm
//! uniformly, falling down a deterministic spare → shrink → abort chain
//! when the chosen arm itself dies mid-recovery.

#![warn(missing_docs)]

pub mod backward;
pub mod config;
pub mod cost_model;
pub mod forward;
pub mod fusion;
pub mod policy;
pub mod profiler;
pub mod scenario;

pub use backward::{run_backward_worker, BackwardConfig, ElasticDriver, Membership};
pub use config::{HierMode, RecoveryPolicy, TrainSpec, WorkerExit, WorkerStats};
pub use cost_model::{CommModel, Eq1Params, HierModel, PolicyInputs, RecoveryCostModel};
pub use forward::{run_forward_role, run_forward_worker, ForwardConfig, LrScaling, Role};
pub use fusion::FusionSetup;
pub use policy::{PolicyEngine, PolicyMode};
pub use profiler::{Phase, RecoveryBreakdown, RecoveryKind};
pub use scenario::{run_scenario, ScenarioConfig, ScenarioKind, ScenarioResult};
