//! The paper's Eq. (1): the analytic cost of checkpoint-based fault
//! recovery.
//!
//! ```text
//! C_fault_recovery = C_checkpoint_saving × freq_saving
//!                  + Count_fault × ( C_checkpoint_loading
//!                                  + C_re-configuration
//!                                  + C_re-compute_from_checkpoint
//!                                  + C_new_worker_init )
//! ```
//!
//! The forward-recovery approach removes every term except the
//! reconfiguration (shrink) and replaces recompute-from-checkpoint with a
//! single redone collective — which is the paper's core claim. The model
//! here backs the checkpoint-interval ablation bench and cross-checks the
//! simulated breakdowns.

/// Parameters of Eq. (1). All costs in seconds; `saving_freq` is the number
/// of checkpoint saves over the window being modelled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Eq1Params {
    /// Cost of saving one checkpoint.
    pub ckpt_save: f64,
    /// Number of checkpoint saves in the window.
    pub saving_freq: f64,
    /// Number of faults in the window.
    pub fault_count: f64,
    /// Cost of loading a checkpoint on recovery.
    pub ckpt_load: f64,
    /// Cost of rebuilding the communication context (rendezvous + Gloo).
    pub reconfiguration: f64,
    /// Cost of recomputing the work lost since the last checkpoint.
    pub recompute: f64,
    /// Cost of initializing any replacement workers.
    pub new_worker_init: f64,
}

impl Eq1Params {
    /// Evaluate Eq. (1).
    pub fn total(&self) -> f64 {
        self.ckpt_save * self.saving_freq
            + self.fault_count
                * (self.ckpt_load + self.reconfiguration + self.recompute + self.new_worker_init)
    }

    /// Model a training window of `steps` steps with a checkpoint every
    /// `interval` steps: saving cost scales with `steps / interval`, while
    /// expected recompute per fault is half an interval of step time —
    /// the inverse relationship §2.2 describes.
    #[allow(clippy::too_many_arguments)]
    pub fn with_interval(
        steps: f64,
        interval: f64,
        step_time: f64,
        ckpt_save: f64,
        faults: f64,
        ckpt_load: f64,
        reconfiguration: f64,
        new_worker_init: f64,
    ) -> Self {
        assert!(interval >= 1.0, "interval must be at least one step");
        Self {
            ckpt_save,
            saving_freq: steps / interval,
            fault_count: faults,
            ckpt_load,
            reconfiguration,
            recompute: (interval / 2.0) * step_time,
            new_worker_init,
        }
    }
}

/// An α–β point-to-point network model, used to calibrate the size-adaptive
/// allreduce selection ([`collectives::AllreduceAlgo::Auto`]).
///
/// * ring allreduce: `2(p−1)·α + 2·((p−1)/p)·n·β` — bandwidth-optimal,
///   latency grows linearly with the group;
/// * recursive doubling: `⌈log₂ p⌉·(α + n·β)` — latency-optimal, ships the
///   whole vector every round.
///
/// The curves intersect at
/// `n* = α·(2(p−1) − ⌈log₂ p⌉) / (β·(⌈log₂ p⌉ − 2(p−1)/p))`:
/// below `n*` the α (startup) term dominates and recursive doubling wins;
/// above it the β (bandwidth) term dominates and ring/Rabenseifner win.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommModel {
    /// Per-message startup latency, seconds.
    pub alpha: f64,
    /// Per-byte transfer time, seconds (1 / bandwidth).
    pub beta: f64,
}

impl CommModel {
    /// Summit-like constants (the paper's evaluation platform): 1.5 µs
    /// startup, 23 GB/s injection bandwidth — matching
    /// `simnet::ClusterModel::summit`.
    pub fn summit() -> Self {
        Self {
            alpha: 1.5e-6,
            beta: 1.0 / 23e9,
        }
    }

    /// Predicted ring-allreduce time for `n_bytes` over `p` ranks.
    pub fn ring_time(&self, n_bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        2.0 * (pf - 1.0) * self.alpha + 2.0 * ((pf - 1.0) / pf) * n_bytes * self.beta
    }

    /// Predicted recursive-doubling-allreduce time for `n_bytes` over `p`.
    pub fn recursive_doubling_time(&self, n_bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * (self.alpha + n_bytes * self.beta)
    }

    /// The payload size where ring and recursive doubling cost the same.
    /// Saturates to `u32::MAX` when recursive doubling is never beaten
    /// (e.g. `p = 2`, where both move `n` bytes but ring pays 2α).
    pub fn crossover_bytes(&self, p: usize) -> u32 {
        if p <= 1 {
            return u32::MAX;
        }
        let pf = p as f64;
        let rounds = pf.log2().ceil();
        let alpha_gap = 2.0 * (pf - 1.0) - rounds;
        let beta_gap = rounds - 2.0 * (pf - 1.0) / pf;
        if beta_gap <= 0.0 || alpha_gap <= 0.0 {
            return u32::MAX;
        }
        let n = self.alpha * alpha_gap / (self.beta * beta_gap);
        n.min(u32::MAX as f64) as u32
    }

    /// A size-adaptive allreduce selection calibrated from this model for
    /// a group of `p` ranks.
    pub fn auto_algo(&self, p: usize) -> collectives::AllreduceAlgo {
        collectives::AllreduceAlgo::auto_with(self.crossover_bytes(p))
    }

    /// Best (minimum) predicted flat-allreduce time over the algorithms
    /// the size-adaptive selection can pick.
    pub fn best_time(&self, n_bytes: f64, p: usize) -> f64 {
        self.ring_time(n_bytes, p)
            .min(self.recursive_doubling_time(n_bytes, p))
    }
}

/// Two-tier α–β model: separate constants for intra-node (NVLink-class)
/// and cross-node (injection-network) links, so the allreduce route —
/// flat over all `p` ranks vs. hierarchical (intra-node reduce → exchange
/// among node leaders → intra-node bcast) — can be chosen per bucket size
/// *and* per topology.
///
/// Predicted hierarchical time for `p` ranks on nodes of (at most)
/// `local` ranks, with `nodes` leaders:
///
/// ```text
/// T_hier = 2·⌈log₂ local⌉·(α_intra + n·β_intra)   # binomial reduce + bcast
///        + T_flat_best(n, nodes; α_cross, β_cross) # leader exchange
/// ```
///
/// versus `T_flat_best(n, p; α_cross, β_cross)` for the flat route. The
/// regimes this produces on Summit-like constants: at the paper's 192
/// workers the flat ring's latency term is still small, so flat wins at
/// every size; by O(10k) workers `2(p−1)·α_cross` dominates and the
/// hierarchy — whose cross latency scales with nodes, not ranks — wins at
/// large buckets, while tiny buckets still prefer flat recursive
/// doubling. One-rank-per-node topologies degenerate to flat exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HierModel {
    /// Intra-node (NVLink-class) link model.
    pub intra: CommModel,
    /// Cross-node (injection-network) link model.
    pub cross: CommModel,
}

impl HierModel {
    /// Summit-like constants: NVLink 2.0 intra-node (≈1 µs launch,
    /// 150 GB/s per direction) over the cross-node model of
    /// [`CommModel::summit`].
    pub fn summit() -> Self {
        Self {
            intra: CommModel {
                alpha: 1.0e-6,
                beta: 1.0 / 150e9,
            },
            cross: CommModel::summit(),
        }
    }

    /// Predicted flat-route time (best flat algorithm over cross-node
    /// constants — every hop may cross the node boundary).
    pub fn flat_time(&self, n_bytes: f64, p: usize) -> f64 {
        self.cross.best_time(n_bytes, p)
    }

    /// Predicted hierarchical-route time for `p` ranks spread over
    /// `nodes` nodes of at most `local` ranks each.
    pub fn hier_time(&self, n_bytes: f64, nodes: usize, local: usize) -> f64 {
        let rounds = if local <= 1 {
            0.0
        } else {
            (local as f64).log2().ceil()
        };
        let intra = 2.0 * rounds * (self.intra.alpha + n_bytes * self.intra.beta);
        intra + self.cross.best_time(n_bytes, nodes)
    }

    /// Should a bucket of `n_bytes` route through the hierarchy on this
    /// topology? Deterministic in its arguments, so every SPMD rank makes
    /// the same choice without communicating. Degenerate topologies
    /// (one node, or one rank per node) always answer `false`.
    pub fn use_hier(&self, n_bytes: f64, p: usize, nodes: usize, local: usize) -> bool {
        if local <= 1 || nodes <= 1 || nodes >= p {
            return false;
        }
        self.hier_time(n_bytes, nodes, local) < self.flat_time(n_bytes, p)
    }

    /// The size-adaptive selection for the cross-node exchange among
    /// `nodes` leaders — the second tier of the crossover: the Auto
    /// threshold is computed from the *leader* count and the cross-node
    /// constants, not the flat world size.
    pub fn cross_auto_algo(&self, nodes: usize) -> collectives::AllreduceAlgo {
        self.cross.auto_algo(nodes)
    }
}

/// Live inputs the recovery-policy engine scores the arms with, gathered
/// at the failure site: group state from the communicator, training state
/// from the engine, timing from the profiler's per-step EMA, and link
/// health from the transport's fabric stats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyInputs {
    /// Surviving world size (after the shrink that detected the failure).
    pub world: usize,
    /// Ranks lost in this failure (pre-shrink minus post-shrink size).
    pub lost: usize,
    /// Live warm spares observed in the pool (leader's local view; the
    /// committed decision re-validates against the pool atomically).
    pub spares: usize,
    /// Does a local checkpoint exist to roll back to?
    pub has_ckpt: bool,
    /// Steps of work since that checkpoint (recompute distance).
    pub ckpt_age_steps: u64,
    /// Steps of training still ahead (the window a throughput deficit
    /// accrues over).
    pub remaining_steps: u64,
    /// Smoothed seconds per training step at the current world size.
    pub step_time: f64,
    /// Bytes of model + optimizer state (sync payload for promotion and
    /// rollback broadcasts).
    pub state_bytes: f64,
    /// Observed perturbation rate: retransmits per delivered message on
    /// this worker's links, `[0, 1]`-ish. Inflates every communication
    /// term — a lossy fabric makes sync-heavy arms relatively costlier.
    pub perturb_rate: f64,
}

/// Analytic cost of each recovery arm, extending [`Eq1Params`] with the
/// α–β [`CommModel`] so the arms are comparable *per failure* from live
/// inputs (Eq. (1) models a whole window; the policy engine needs the
/// marginal cost of the next recovery).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryCostModel {
    /// Point-to-point network model for the collective terms.
    pub comm: CommModel,
    /// Seconds to load a checkpoint from storage (rollback only).
    pub ckpt_load: f64,
    /// Seconds a promoted spare needs to become step-ready beyond the
    /// state broadcast (framework re-init; Eq. (1)'s `new_worker_init`).
    pub spare_init: f64,
}

impl Default for RecoveryCostModel {
    fn default() -> Self {
        Self {
            comm: CommModel::summit(),
            ckpt_load: 0.5,
            spare_init: 0.2,
        }
    }
}

impl RecoveryCostModel {
    /// Flood-set agreement over `p` ranks: `⌈log₂ p⌉` rounds, each an α
    /// startup per peer (the threaded runtime's agreement is p-round, but
    /// the *model* uses ERA's logarithmic cost like `simnet`).
    pub fn agree_time(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.comm.alpha * p as f64
    }

    /// Reconfiguration (revoke + agree-on-failed + shrink commit): two
    /// agreements plus a communicator rebuild's worth of startups. Strictly
    /// increasing in `p`.
    pub fn reconfig_time(&self, p: usize) -> f64 {
        2.0 * self.agree_time(p) + self.comm.alpha * p as f64
    }

    /// Direct cost of *executing* `arm` once, given `inputs`. Infeasible
    /// arms (promotion with a cold pool, rollback without a checkpoint)
    /// cost `f64::INFINITY`, so `choose` can argmin without special cases.
    pub fn recovery_cost(&self, arm: ulfm::RecoveryArm, inputs: &PolicyInputs) -> f64 {
        use ulfm::RecoveryArm::*;
        let p = inputs.world.max(1);
        // A lossy fabric retransmits: every communication term pays the
        // observed overhead.
        let lossy = 1.0 + inputs.perturb_rate.max(0.0);
        match arm {
            // Forward-shrink: reconfigure, then redo the interrupted
            // collective from retained inputs (one step's comm volume).
            Shrink => lossy * (self.reconfig_time(p) + self.comm.ring_time(inputs.state_bytes, p)),
            // Promotion: reconfigure, run the policy-commit round (a
            // broadcast + agreement), broadcast full state to the merged
            // group, and pay the spare's init.
            PromoteSpares => {
                if inputs.spares == 0 {
                    return f64::INFINITY;
                }
                let merged = p + inputs.lost.min(inputs.spares);
                lossy
                    * (self.reconfig_time(p)
                        + self.agree_time(p)
                        + self
                            .comm
                            .recursive_doubling_time(inputs.state_bytes, merged))
                    + self.spare_init
            }
            // Rollback: reconfigure, load + broadcast the checkpoint, then
            // recompute everything since it was taken.
            Rollback => {
                if !inputs.has_ckpt {
                    return f64::INFINITY;
                }
                lossy
                    * (self.reconfig_time(p)
                        + self.comm.recursive_doubling_time(inputs.state_bytes, p))
                    + self.ckpt_load
                    + inputs.ckpt_age_steps as f64 * inputs.step_time
            }
        }
    }

    /// Throughput deficit an arm leaves behind: shrink and rollback both
    /// continue on `world` survivors, losing `lost/world` of aggregate
    /// throughput over the remaining steps; promotion restores the world
    /// and forfeits nothing. (First-order model: per-step time is taken as
    /// world-size-independent, which is exact for the fixed-per-worker
    /// shard the engines train.)
    pub fn deficit(&self, arm: ulfm::RecoveryArm, inputs: &PolicyInputs) -> f64 {
        use ulfm::RecoveryArm::*;
        match arm {
            PromoteSpares => 0.0,
            Shrink | Rollback => {
                let p = inputs.world.max(1) as f64;
                inputs.remaining_steps as f64 * inputs.step_time * inputs.lost as f64 / p
            }
        }
    }

    /// Total score of an arm: execution cost plus the deficit it leaves.
    pub fn score(&self, arm: ulfm::RecoveryArm, inputs: &PolicyInputs) -> f64 {
        self.recovery_cost(arm, inputs) + self.deficit(arm, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Eq1Params {
        Eq1Params {
            ckpt_save: 0.1,
            saving_freq: 100.0,
            fault_count: 2.0,
            ckpt_load: 0.5,
            reconfiguration: 3.0,
            recompute: 1.0,
            new_worker_init: 10.0,
        }
    }

    #[test]
    fn total_matches_hand_computation() {
        // 0.1×100 + 2×(0.5+3+1+10) = 10 + 29 = 39
        assert!((base().total() - 39.0).abs() < 1e-9);
    }

    #[test]
    fn zero_faults_leaves_only_saving_cost() {
        let p = Eq1Params {
            fault_count: 0.0,
            ..base()
        };
        assert!((p.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn recompute_and_saving_tradeoff_is_inverse() {
        // Shorter interval ⇒ more saving cost, less recompute (paper §2.2).
        let short = Eq1Params::with_interval(1000.0, 1.0, 0.5, 0.05, 1.0, 0.5, 3.0, 0.0);
        let long = Eq1Params::with_interval(1000.0, 100.0, 0.5, 0.05, 1.0, 0.5, 3.0, 0.0);
        assert!(short.saving_freq > long.saving_freq);
        assert!(short.recompute < long.recompute);
    }

    #[test]
    fn optimal_interval_is_interior() {
        // The classic checkpoint-interval tradeoff has an interior optimum.
        let cost =
            |i: f64| Eq1Params::with_interval(1000.0, i, 0.5, 0.05, 2.0, 0.5, 3.0, 0.0).total();
        let c1 = cost(1.0);
        let c10 = cost(10.0);
        let c500 = cost(500.0);
        assert!(c10 < c1, "10-step interval should beat every-step saving");
        assert!(c10 < c500, "10-step interval should beat huge intervals");
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn interval_below_one_rejected() {
        Eq1Params::with_interval(10.0, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0);
    }

    #[test]
    fn crossover_separates_the_regimes() {
        let m = CommModel::summit();
        for p in [3usize, 4, 5, 8, 16] {
            let x = m.crossover_bytes(p) as f64;
            assert!(x.is_finite() && x > 0.0);
            // Below the crossover recursive doubling must be cheaper, above
            // it ring must be — that is the definition of the crossover.
            assert!(
                m.recursive_doubling_time(x / 4.0, p) < m.ring_time(x / 4.0, p),
                "p={p}: recursive doubling should win below the crossover"
            );
            assert!(
                m.ring_time(x * 4.0, p) < m.recursive_doubling_time(x * 4.0, p),
                "p={p}: ring should win above the crossover"
            );
        }
    }

    #[test]
    fn p2_never_prefers_ring() {
        // At p = 2 both algorithms move n bytes but ring pays twice the
        // startup cost; the crossover saturates.
        assert_eq!(CommModel::summit().crossover_bytes(2), u32::MAX);
    }

    #[test]
    fn default_crossover_matches_summit_calibration() {
        // The collectives crate's baked-in default (used when no model is
        // supplied) must sit in the Summit model's crossover range for the
        // group sizes the benches run (within 2×).
        let m = CommModel::summit();
        let default = collectives::AllreduceAlgo::DEFAULT_CROSSOVER_BYTES as f64;
        let x4 = m.crossover_bytes(4) as f64;
        assert!(
            default / x4 < 2.0 && x4 / default < 2.0,
            "default {default} vs model {x4}"
        );
    }

    #[test]
    fn auto_algo_resolves_against_model() {
        let m = CommModel::summit();
        let algo = m.auto_algo(4);
        let x = m.crossover_bytes(4) as usize;
        assert_eq!(
            algo.resolve(x / 2, 4),
            collectives::AllreduceAlgo::RecursiveDoubling
        );
        assert_eq!(
            algo.resolve(x * 2, 4),
            collectives::AllreduceAlgo::Rabenseifner
        );
        assert_eq!(algo.resolve(x * 2, 5), collectives::AllreduceAlgo::Ring);
    }

    /// Summit nodes hold 6 ranks; `nodes_for` rounding.
    fn summit_shape(p: usize) -> (usize, usize) {
        (p.div_ceil(6), 6.min(p))
    }

    #[test]
    fn hier_selection_flips_with_topology() {
        let m = HierModel::summit();
        let big = 256.0 * (1 << 20) as f64;
        // One rank per node: the hierarchy buys nothing, at any size.
        for p in [2usize, 192, 12288] {
            assert!(!m.use_hier(big, p, p, 1), "p={p} flat topology");
            assert!(!m.use_hier(64.0, p, p, 1));
        }
        // Same bucket, same node shape, different scale: at the paper's
        // 192 workers the flat ring's latency term is still negligible and
        // the intra-node rounds are pure overhead — flat wins. At O(10k)
        // workers the 2(p−1)α cross latency dominates and hierarchy wins.
        let (n192, l192) = summit_shape(192);
        let (n12k, l12k) = summit_shape(12288);
        assert!(!m.use_hier(big, 192, n192, l192), "flat still wins at 192");
        assert!(m.use_hier(big, 12288, n12k, l12k), "hier wins at O(10k)");
    }

    #[test]
    fn hier_selection_flips_with_bucket_size() {
        let m = HierModel::summit();
        let (nodes, local) = summit_shape(12288);
        // Tiny buckets: flat recursive doubling (⌈log₂ p⌉ rounds) beats
        // paying the intra-node reduce+bcast on top of the leader exchange.
        assert!(!m.use_hier(1024.0, 12288, nodes, local));
        // Large buckets: the saved cross-node latency dwarfs the NVLink
        // rounds.
        assert!(m.use_hier(256.0 * (1 << 20) as f64, 12288, nodes, local));
    }

    #[test]
    fn cross_auto_algo_uses_leader_count() {
        let m = HierModel::summit();
        // The second-tier Auto threshold comes from the *leader* group:
        // with 2 leaders recursive doubling is never beaten, regardless of
        // what the flat world size would have chosen.
        let algo = m.cross_auto_algo(2);
        assert_eq!(
            algo.resolve(1 << 30, 2),
            collectives::AllreduceAlgo::RecursiveDoubling
        );
        // With many leaders the calibrated crossover separates regimes.
        let x = m.cross.crossover_bytes(32) as usize;
        let algo = m.cross_auto_algo(32);
        assert_eq!(
            algo.resolve(x / 2, 32),
            collectives::AllreduceAlgo::RecursiveDoubling
        );
        assert_eq!(
            algo.resolve(x * 2, 32),
            collectives::AllreduceAlgo::Rabenseifner
        );
    }

    #[test]
    fn hier_time_degenerates_cleanly() {
        let m = HierModel::summit();
        // local = 1 → no intra rounds: exactly the flat time over `nodes`.
        assert_eq!(m.hier_time(1e6, 8, 1), m.flat_time(1e6, 8));
        // One node → pure intra cost, no cross term.
        assert!(m.hier_time(1e6, 1, 6) < m.flat_time(1e6, 6));
    }
}
