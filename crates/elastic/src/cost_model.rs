//! The paper's Eq. (1): the analytic cost of checkpoint-based fault
//! recovery.
//!
//! ```text
//! C_fault_recovery = C_checkpoint_saving × freq_saving
//!                  + Count_fault × ( C_checkpoint_loading
//!                                  + C_re-configuration
//!                                  + C_re-compute_from_checkpoint
//!                                  + C_new_worker_init )
//! ```
//!
//! The forward-recovery approach removes every term except the
//! reconfiguration (shrink) and replaces recompute-from-checkpoint with a
//! single redone collective — which is the paper's core claim. The model
//! here backs the checkpoint-interval ablation bench and cross-checks the
//! simulated breakdowns.

/// Parameters of Eq. (1). All costs in seconds; `saving_freq` is the number
/// of checkpoint saves over the window being modelled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Eq1Params {
    /// Cost of saving one checkpoint.
    pub ckpt_save: f64,
    /// Number of checkpoint saves in the window.
    pub saving_freq: f64,
    /// Number of faults in the window.
    pub fault_count: f64,
    /// Cost of loading a checkpoint on recovery.
    pub ckpt_load: f64,
    /// Cost of rebuilding the communication context (rendezvous + Gloo).
    pub reconfiguration: f64,
    /// Cost of recomputing the work lost since the last checkpoint.
    pub recompute: f64,
    /// Cost of initializing any replacement workers.
    pub new_worker_init: f64,
}

impl Eq1Params {
    /// Evaluate Eq. (1).
    pub fn total(&self) -> f64 {
        self.ckpt_save * self.saving_freq
            + self.fault_count
                * (self.ckpt_load + self.reconfiguration + self.recompute + self.new_worker_init)
    }

    /// Model a training window of `steps` steps with a checkpoint every
    /// `interval` steps: saving cost scales with `steps / interval`, while
    /// expected recompute per fault is half an interval of step time —
    /// the inverse relationship §2.2 describes.
    #[allow(clippy::too_many_arguments)]
    pub fn with_interval(
        steps: f64,
        interval: f64,
        step_time: f64,
        ckpt_save: f64,
        faults: f64,
        ckpt_load: f64,
        reconfiguration: f64,
        new_worker_init: f64,
    ) -> Self {
        assert!(interval >= 1.0, "interval must be at least one step");
        Self {
            ckpt_save,
            saving_freq: steps / interval,
            fault_count: faults,
            ckpt_load,
            reconfiguration,
            recompute: (interval / 2.0) * step_time,
            new_worker_init,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Eq1Params {
        Eq1Params {
            ckpt_save: 0.1,
            saving_freq: 100.0,
            fault_count: 2.0,
            ckpt_load: 0.5,
            reconfiguration: 3.0,
            recompute: 1.0,
            new_worker_init: 10.0,
        }
    }

    #[test]
    fn total_matches_hand_computation() {
        // 0.1×100 + 2×(0.5+3+1+10) = 10 + 29 = 39
        assert!((base().total() - 39.0).abs() < 1e-9);
    }

    #[test]
    fn zero_faults_leaves_only_saving_cost() {
        let p = Eq1Params {
            fault_count: 0.0,
            ..base()
        };
        assert!((p.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn recompute_and_saving_tradeoff_is_inverse() {
        // Shorter interval ⇒ more saving cost, less recompute (paper §2.2).
        let short = Eq1Params::with_interval(1000.0, 1.0, 0.5, 0.05, 1.0, 0.5, 3.0, 0.0);
        let long = Eq1Params::with_interval(1000.0, 100.0, 0.5, 0.05, 1.0, 0.5, 3.0, 0.0);
        assert!(short.saving_freq > long.saving_freq);
        assert!(short.recompute < long.recompute);
    }

    #[test]
    fn optimal_interval_is_interior() {
        // The classic checkpoint-interval tradeoff has an interior optimum.
        let cost =
            |i: f64| Eq1Params::with_interval(1000.0, i, 0.5, 0.05, 2.0, 0.5, 3.0, 0.0).total();
        let c1 = cost(1.0);
        let c10 = cost(10.0);
        let c500 = cost(500.0);
        assert!(c10 < c1, "10-step interval should beat every-step saving");
        assert!(c10 < c500, "10-step interval should beat huge intervals");
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn interval_below_one_rejected() {
        Eq1Params::with_interval(10.0, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0);
    }
}
