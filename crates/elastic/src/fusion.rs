//! Engine-side fusion bookkeeping: mapping a model's tensors onto fused
//! allreduce buckets.
//!
//! The collectives crate owns the mechanics (bucket partitioning, packing,
//! the fused allreduce itself); this module owns the *schedule*: tensors
//! fill buckets in the order the backward pass produces them
//! ([`dnn::Model::ready_order`], last layer first), buckets therefore fill
//! strictly in sequence, and each bucket's allreduce can launch the moment
//! it fills — while earlier layers are still differentiating. Because the
//! ready order and the bucket plan are pure functions of the (replica-
//! identical) model architecture and the byte cap, every rank derives the
//! same schedule and the SPMD collective contract holds.

use std::ops::Range;

/// Precomputed fusion schedule for one model architecture.
///
/// Buckets partition the *ready-order* tensor sequence under the byte cap;
/// `slot` maps a declaration-order tensor index to its bucket and offset so
/// the backward hook can scatter gradients straight into bucket buffers.
#[derive(Clone, Debug)]
pub struct FusionSetup {
    /// Declaration-order element count of each tensor.
    decl_sizes: Vec<usize>,
    /// Buckets as ranges over ready-order positions.
    plan: Vec<Range<usize>>,
    /// Ready-order tensor sequence (declaration indices).
    ready_order: Vec<usize>,
    /// Declaration index → (bucket, element offset within bucket).
    slot: Vec<(usize, usize)>,
    /// Elements per bucket.
    bucket_lens: Vec<usize>,
}

impl FusionSetup {
    /// Build the schedule for `model` under a fusion byte cap (gradients
    /// are f32, 4 bytes each).
    pub fn new(model: &dnn::Model, cap_bytes: usize) -> Self {
        let decl_sizes: Vec<usize> = model.grads().iter().map(|g| g.len()).collect();
        let ready_order = model.ready_order();
        let ready_sizes: Vec<usize> = ready_order.iter().map(|&i| decl_sizes[i]).collect();
        let plan = collectives::plan_buckets(&ready_sizes, std::mem::size_of::<f32>(), cap_bytes);

        let mut slot = vec![(0usize, 0usize); decl_sizes.len()];
        let mut bucket_lens = Vec::with_capacity(plan.len());
        for (b, range) in plan.iter().enumerate() {
            let mut off = 0usize;
            for pos in range.clone() {
                slot[ready_order[pos]] = (b, off);
                off += ready_sizes[pos];
            }
            bucket_lens.push(off);
        }
        Self {
            decl_sizes,
            plan,
            ready_order,
            slot,
            bucket_lens,
        }
    }

    /// Number of fused buckets (= resilient collectives per step, before
    /// the commit barrier).
    pub fn n_buckets(&self) -> usize {
        self.plan.len()
    }

    /// Elements in bucket `b`'s buffer.
    pub fn bucket_len(&self, b: usize) -> usize {
        self.bucket_lens[b]
    }

    /// How many tensors bucket `b` fuses (its fill target).
    pub fn bucket_tensors(&self, b: usize) -> usize {
        self.plan[b].len()
    }

    /// Where tensor `decl_idx` lives: (bucket, element offset, length).
    pub fn slot(&self, decl_idx: usize) -> (usize, usize, usize) {
        let (b, off) = self.slot[decl_idx];
        (b, off, self.decl_sizes[decl_idx])
    }

    /// Fresh zeroed bucket buffers.
    pub fn bucket_buffers(&self) -> Vec<Vec<f32>> {
        self.bucket_lens.iter().map(|&n| vec![0.0; n]).collect()
    }

    /// Scatter reduced bucket buffers back into declaration-order
    /// per-tensor gradients (the layout [`dnn::Model::set_grads`] expects).
    pub fn unpack(&self, buckets: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(buckets.len(), self.n_buckets(), "bucket count mismatch");
        let mut out: Vec<Vec<f32>> = self.decl_sizes.iter().map(|&n| vec![0.0; n]).collect();
        for &decl_idx in &self.ready_order {
            let (b, off, len) = self.slot(decl_idx);
            out[decl_idx].copy_from_slice(&buckets[b][off..off + len]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> dnn::Model {
        // Tensors (decl order): 0: 8×16 W, 1: 16 b, 2: 16×4 W, 3: 4 b.
        dnn::Model::mlp(8, &[16], 4, 1)
    }

    #[test]
    fn schedule_covers_every_tensor_once() {
        let m = model();
        let fs = FusionSetup::new(&m, 64); // 16 f32 per bucket
        let total: usize = (0..fs.n_buckets()).map(|b| fs.bucket_tensors(b)).sum();
        assert_eq!(total, m.num_tensors());
        let elems: usize = (0..fs.n_buckets()).map(|b| fs.bucket_len(b)).sum();
        assert_eq!(elems, m.num_params());
    }

    #[test]
    fn huge_cap_fuses_everything_into_one_bucket() {
        let m = model();
        let fs = FusionSetup::new(&m, 64 << 20);
        assert_eq!(fs.n_buckets(), 1);
        assert_eq!(fs.bucket_tensors(0), 4);
    }

    #[test]
    fn zero_cap_degenerates_to_per_tensor() {
        let m = model();
        let fs = FusionSetup::new(&m, 0);
        assert_eq!(fs.n_buckets(), m.num_tensors());
    }

    #[test]
    fn pack_unpack_roundtrip_in_ready_order() {
        let m = model();
        let fs = FusionSetup::new(&m, 128);
        // Fill bucket buffers through the slot map from synthetic
        // declaration-order tensors...
        let decl: Vec<Vec<f32>> = m
            .grads()
            .iter()
            .enumerate()
            .map(|(i, g)| (0..g.len()).map(|j| (i * 1000 + j) as f32).collect())
            .collect();
        let mut bufs = fs.bucket_buffers();
        for (idx, t) in decl.iter().enumerate() {
            let (b, off, len) = fs.slot(idx);
            bufs[b][off..off + len].copy_from_slice(t);
        }
        // ...and unpacking must reproduce them exactly.
        assert_eq!(fs.unpack(&bufs), decl);
    }
}
