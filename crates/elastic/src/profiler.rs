//! Per-phase recovery cost accounting — the instrumentation behind the
//! paper's Figure 4 breakdowns.

use std::time::{Duration, Instant};

/// One named phase of a recovery/reconfiguration episode.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase name (e.g. `"revoke"`, `"rendezvous"`, `"recompute"`).
    pub name: &'static str,
    /// Wall-clock duration of the phase at this worker.
    pub duration: Duration,
}

/// What kind of episode produced a breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryKind {
    /// ULFM forward recovery (revoke/agree/shrink/redo).
    Forward,
    /// Gloo/Elastic-Horovod backward recovery (exception/rendezvous/
    /// rollback/recompute).
    Backward,
    /// Membership grew (replacement or upscale join).
    Join,
    /// The world shrank below the configured minimum and the run shut
    /// down gracefully instead of training on a degenerate group.
    Abort,
}

/// A recovery episode's cost breakdown at one worker.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryBreakdown {
    /// Episode kind.
    pub kind: RecoveryKind,
    /// Optimizer step during which the episode happened.
    pub at_step: u64,
    /// Ordered phases.
    pub phases: Vec<Phase>,
    /// Recovery arm the policy engine committed for this episode, with
    /// fallbacks recorded as a chain (`"spare->shrink"`). `None` when the
    /// policy layer was not engaged (seed-style pure forward recovery).
    pub policy: Option<&'static str>,
}

impl RecoveryBreakdown {
    /// Start a new episode record.
    pub fn new(kind: RecoveryKind, at_step: u64) -> Self {
        Self {
            kind,
            at_step,
            phases: Vec::new(),
            policy: None,
        }
    }

    /// Total episode duration.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Duration of a named phase (zero if absent).
    pub fn phase(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.duration)
            .sum()
    }

    /// Time a closure and record it as a phase; returns the closure result.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.phases.push(Phase {
            name,
            duration: t0.elapsed(),
        });
        r
    }

    /// Record an externally measured phase.
    pub fn push(&mut self, name: &'static str, duration: Duration) {
        self.phases.push(Phase { name, duration });
    }

    /// Mirror this finished episode into the global telemetry registry so
    /// a `telemetry::snapshot()` reconciles exactly with the breakdowns the
    /// figure benches aggregate. Call once per episode, after all phases.
    pub fn publish(&self, rank: usize) {
        telemetry::record_episode(telemetry::Episode {
            kind: match self.kind {
                RecoveryKind::Forward => "forward",
                RecoveryKind::Backward => "backward",
                RecoveryKind::Join => "join",
                RecoveryKind::Abort => "abort",
            },
            rank,
            at_step: self.at_step,
            policy: self.policy,
            phases: self
                .phases
                .iter()
                .map(|p| telemetry::EpisodePhase {
                    name: p.name,
                    ns: p.duration.as_nanos() as u64,
                })
                .collect(),
        });
    }
}

/// Element-wise mean of several workers' breakdowns (phases are matched by
/// name in order of first appearance). Used by benches to report a single
/// per-episode row, as the paper's figures do.
pub fn mean_breakdown(items: &[RecoveryBreakdown]) -> Option<RecoveryBreakdown> {
    let first = items.first()?;
    let mut out = RecoveryBreakdown::new(first.kind, first.at_step);
    let mut names: Vec<&'static str> = Vec::new();
    for it in items {
        for p in &it.phases {
            if !names.contains(&p.name) {
                names.push(p.name);
            }
        }
    }
    for name in names {
        let total: Duration = items.iter().map(|it| it.phase(name)).sum();
        out.push(name, total / items.len() as u32);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_phase() {
        let mut b = RecoveryBreakdown::new(RecoveryKind::Forward, 3);
        let v = b.time("revoke", || 7);
        assert_eq!(v, 7);
        assert_eq!(b.phases.len(), 1);
        assert_eq!(b.phases[0].name, "revoke");
    }

    #[test]
    fn total_and_phase_lookup() {
        let mut b = RecoveryBreakdown::new(RecoveryKind::Backward, 0);
        b.push("a", Duration::from_millis(10));
        b.push("b", Duration::from_millis(20));
        b.push("a", Duration::from_millis(5));
        assert_eq!(b.total(), Duration::from_millis(35));
        assert_eq!(b.phase("a"), Duration::from_millis(15));
        assert_eq!(b.phase("missing"), Duration::ZERO);
    }

    #[test]
    fn mean_over_workers() {
        let mut x = RecoveryBreakdown::new(RecoveryKind::Forward, 1);
        x.push("shrink", Duration::from_millis(10));
        let mut y = RecoveryBreakdown::new(RecoveryKind::Forward, 1);
        y.push("shrink", Duration::from_millis(30));
        y.push("redo", Duration::from_millis(4));
        let m = mean_breakdown(&[x, y]).unwrap();
        assert_eq!(m.phase("shrink"), Duration::from_millis(20));
        assert_eq!(m.phase("redo"), Duration::from_millis(2));
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(mean_breakdown(&[]).is_none());
    }
}
