//! Forward recovery over ULFM: the paper's contribution.
//!
//! ## The protocol (paper §3.1–3.2)
//!
//! Each optimizer step issues `T` gradient allreduces (one per trainable
//! tensor) followed by a **commit barrier**, then applies the optimizer.
//! Every operation carries a global id `step·(T+1) + local`. On any
//! failure:
//!
//! 1. **revoke** the communicator (interrupts members blocked in other
//!    operations — they join recovery via their own `Revoked` error);
//! 2. **agree** — a fault-tolerant agreement whose `min` merge yields the
//!    earliest failed operation id across survivors (the *restart point*),
//!    and whose failed-set union identifies the victims;
//! 3. **shrink** with the recovery policy (drop-process or drop-node;
//!    evicted healthy ranks leave with [`WorkerExit::Excluded`]);
//! 4. **redo** operations from the restart point on the shrunk
//!    communicator, *from retained inputs* — each worker still holds the
//!    gradient it contributed, so the re-executed allreduce aggregates the
//!    survivors' contributions. No rollback, no checkpoint.
//!
//! ## Why the restart point is safe
//!
//! The commit barrier gates the optimizer: a worker applies step `S` only
//! after its barrier completes, and barrier completion at *any* worker
//! implies *every* worker entered it (dissemination property) — hence no
//! worker failed inside step `S`'s allreduces. Consequently the agreed
//! restart point can only reach back to the latest uncommitted work: a
//! tensor allreduce of the current step, or the previous step's barrier.
//! Both are idempotent to redo (allreduces are re-fed from saved inputs;
//! the barrier carries no data), so replicas stay bit-identical — which
//! the tests assert via state fingerprints.
//!
//! ## The policy layer ("Chameleon mode")
//!
//! When [`ForwardConfig::policy_mode`] departs from pure shrink or a warm
//! spare pool is expected, step 3 gains a *policy round*: after the
//! shrink, the survivors uniformly commit one recovery arm
//! ([`ulfm::Communicator::commit_recovery_policy`]) —
//!
//! * **shrink** — the paper's retained-inputs redo above, unchanged;
//! * **spare** — promote pre-joined warm spares ([`Role::Spare`]) into the
//!   gap, synchronize them from live state, and restart the interrupted
//!   step at full strength: no capacity lost, no rollback;
//! * **rollback** — restore *every* survivor from the newest local
//!   checkpoint ([`ForwardConfig::ckpt_every`]) and recompute from there
//!   (the classic engine, available per-failure instead of per-run).
//!
//! The arm is chosen by [`PolicyEngine`](crate::policy::PolicyEngine) from
//! live [`PolicyInputs`], but only the leader's choice matters — it rides
//! inside the committed proposal, so locally-diverging inputs can never
//! diverge the SPMD control flow. If the committed arm itself dies
//! mid-recovery (a spare killed during promotion, a checkpoint sync broken
//! by a cascade), survivors fall down a deterministic chain — spare →
//! shrink → abort-below-floor — whose backstop, the retained-inputs redo,
//! has no preconditions and therefore always applies.

use crate::config::{
    policy_evictions, state_fingerprint, HierMode, RecoveryPolicy, TrainSpec, WorkerExit,
    WorkerStats,
};
use crate::cost_model::{HierModel, PolicyInputs};
use crate::policy::{PolicyEngine, PolicyMode};
use crate::profiler::{RecoveryBreakdown, RecoveryKind};
use collectives::{AllreduceAlgo, ReduceOp};
use dnn::Checkpoint;
use transport::RankId;
use ulfm::{
    Communicator, Hierarchy, JoinOutcome, PolicyCommit, Proc, RecoveryArm, ShrinkOutcome, UlfmError,
};

/// Configuration of the forward-recovery engine.
#[derive(Clone, Debug)]
pub struct ForwardConfig {
    /// The shared training workload.
    pub spec: TrainSpec,
    /// Eviction policy on failure.
    pub policy: RecoveryPolicy,
    /// Accept joiners (replacement/upscale) at epoch boundaries.
    pub accept_joiners: bool,
    /// How many joiners this run *expects* over its lifetime. Until that
    /// many have been admitted, workers block at epoch boundaries for
    /// pending announcements — making replacement/upscale admission
    /// deterministic instead of racing training speed against joiner
    /// startup. Zero (the default) never waits.
    pub expected_joiners: usize,
    /// Upper bound on the epoch-boundary wait for expected joiners, and on
    /// a joiner's own wait for its admission ticket. `None` (the default)
    /// waits forever — correct in-process, where every expected joiner is a
    /// thread that provably starts. Multi-process launches set a bound so a
    /// crashed joiner degrades the group to running shrunk instead of
    /// stalling it; the give-up decision travels inside the committed join
    /// proposal, so members never diverge on local clocks.
    pub join_wait: Option<std::time::Duration>,
    /// Rescale redone gradients by the lost contribution fraction so the
    /// degraded step keeps the same expected gradient magnitude.
    pub renormalize_after_loss: bool,
    /// Optional Goyal-style learning-rate re-scaling on membership change:
    /// after a shrink or join, ramp the rate to
    /// `spec.lr × world / base_world` over `warmup_steps` (paper §5's
    /// convergence techniques [16][22], applied elastically).
    pub lr_scaling: Option<LrScaling>,
    /// How the recovery arm is picked at each failure. The default —
    /// static forward-shrink — reproduces the seed engine bit-identically
    /// (with no spare pool, no policy round runs at all).
    pub policy_mode: PolicyMode,
    /// Warm spares this run expects ([`Role::Spare`] workers). Members
    /// wait for that many pool announcements before training starts, so
    /// the pool is warm before the first failure can hit. Zero (the
    /// default) disables the wait.
    pub expected_spares: usize,
    /// Capture a local in-memory checkpoint every this many steps — the
    /// rollback arm's restore source. Zero (the default) disables capture,
    /// which makes rollback infeasible and degrades it to shrink.
    pub ckpt_every: u64,
}

/// Elastic learning-rate policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LrScaling {
    /// World size at which `spec.lr` is the reference rate.
    pub base_world: usize,
    /// Ramp length after each membership change.
    pub warmup_steps: u64,
}

impl ForwardConfig {
    /// Defaults: drop-process policy, joins enabled, no renormalization,
    /// static forward-shrink (no policy layer).
    pub fn new(spec: TrainSpec) -> Self {
        Self {
            spec,
            policy: RecoveryPolicy::DropProcess,
            accept_joiners: true,
            expected_joiners: 0,
            join_wait: None,
            renormalize_after_loss: false,
            lr_scaling: None,
            policy_mode: PolicyMode::default(),
            expected_spares: 0,
            ckpt_every: 0,
        }
    }

    /// Does recovery run the policy round at all? Pure static shrink with
    /// no spare pool skips it entirely, keeping the seed engine's exact
    /// recovery sequence (and cost). Uniform across workers because `cfg`
    /// is shared — the round is a collective, so all survivors must agree
    /// on whether it runs.
    pub fn policy_active(&self) -> bool {
        self.policy_mode != PolicyMode::Static(RecoveryArm::Shrink) || self.expected_spares > 0
    }
}

/// How a worker participates in the computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Founding member: starts in the initial communicator.
    Member,
    /// Joins a running group at an epoch boundary (replacement/upscale).
    Joiner,
    /// Pre-joins the warm spare pool and waits for a promotion ticket; it
    /// enters the group only when a recovery's policy round commits a
    /// promotion (never at epoch boundaries). Dismissed spares exit with
    /// [`WorkerExit::Aborted`] and zeroed stats.
    Spare,
}

/// Outcome plus per-episode breakdowns (for the figure benches).
pub struct ForwardOutcome {
    /// How the worker ended.
    pub exit: WorkerExit,
    /// Recovery/join episodes recorded at this worker.
    pub breakdowns: Vec<RecoveryBreakdown>,
}

/// Internal: terminal conditions that abort the worker loop.
enum Fatal {
    Died,
    Excluded,
    /// The surviving world shrank below `TrainSpec::min_workers`.
    Aborted,
}

/// What the op loop does after a recovery episode resolves.
enum Flow {
    /// Redo from the agreed restart operation on the shrunk group (the
    /// paper's forward path).
    Redo(u64),
    /// Restart the step loop at this step — state was re-synchronized by a
    /// committed promotion or rollback.
    Restart(u64),
}

/// What the policy round decided (relative to the already-shrunk group).
enum PolicyAction {
    /// Keep the forward redo.
    Shrink,
    /// State re-synchronized; restart the step loop here.
    Restart(u64),
}

/// Gradient-allreduce router: flat (the seed behaviour) or hierarchical,
/// decided per bucket by [`TrainSpec::hier`]. The cached [`Hierarchy`] is
/// rebuilt lazily whenever the communicator epoch changed — a shrink,
/// join, or promotion replaced `comm` — which keeps it correct at *every*
/// comm-reassignment site in the engine (op-loop shrink, nested barrier
/// redo, epoch joins, policy arms, checkpoint-sync recovery) without
/// threading explicit rebuild calls through them. The rebuild itself is
/// local and deterministic in the agreed membership, so replicas stay
/// aligned.
///
/// When the hierarchical route is taken with a size-adaptive
/// ([`AllreduceAlgo::Auto`]) spec, the cross-node exchange resolves
/// against the two-tier model's *leader-count* crossover
/// ([`HierModel::cross_auto_algo`]), not the flat world's.
fn grad_allreduce(
    comm: &Communicator,
    hier: &mut Option<Hierarchy>,
    spec: &TrainSpec,
    model: &HierModel,
    buf: &mut [f32],
) -> Result<(), UlfmError> {
    if spec.hier != HierMode::Off {
        if hier.as_ref().is_none_or(|h| !h.is_current_for(comm)) {
            // A failed build (no node color for a member) falls back to
            // flat collectives instead of aborting the step.
            *hier = Hierarchy::build(comm).ok();
            if hier.is_some() {
                telemetry::counter("elastic.hier.rebuilds").incr();
            }
        }
        if let Some(h) = hier.as_ref() {
            let map = h.map();
            let bytes = std::mem::size_of_val(buf);
            if spec.hier.use_hier(
                model,
                bytes,
                comm.size(),
                map.n_nodes(),
                map.max_node_size(),
            ) {
                telemetry::counter("elastic.hier.routed_buckets").incr();
                let algo = if matches!(spec.algo, AllreduceAlgo::Auto { .. }) {
                    model.cross_auto_algo(map.n_nodes())
                } else {
                    spec.algo
                };
                return comm.hier_allreduce(h, buf, ReduceOp::Sum, algo);
            }
        }
    }
    comm.allreduce(buf, ReduceOp::Sum, spec.algo)
}

/// Run one worker under forward recovery. `is_joiner` workers attach to a
/// running group via the join service instead of the initial communicator.
pub fn run_forward_worker(proc: &Proc, cfg: &ForwardConfig, is_joiner: bool) -> ForwardOutcome {
    run_forward_role(
        proc,
        cfg,
        if is_joiner {
            Role::Joiner
        } else {
            Role::Member
        },
    )
}

/// Run one worker in the given [`Role`]. Members and joiners behave as in
/// [`run_forward_worker`]; spares park in the warm pool until a policy
/// round promotes them (after which they train as full members) or the run
/// ends and dismisses them.
pub fn run_forward_role(proc: &Proc, cfg: &ForwardConfig, role: Role) -> ForwardOutcome {
    let mut breakdowns = Vec::new();
    let exit = run_inner(proc, cfg, role, &mut breakdowns);
    ForwardOutcome { exit, breakdowns }
}

fn run_inner(
    proc: &Proc,
    cfg: &ForwardConfig,
    role: Role,
    breakdowns: &mut Vec<RecoveryBreakdown>,
) -> WorkerExit {
    let spec = &cfg.spec;
    let mut model = spec.build_model();
    let mut opt = spec.build_optimizer();
    let ds = spec.build_dataset();
    let topology = proc.endpoint().topology();
    let mut recoveries = 0usize;
    let mut last_loss = f32::NAN;
    let mut steps_recomputed: u64 = 0;
    // Rollback arm's restore source (captured every `ckpt_every` steps).
    let mut local_ckpt: Option<Checkpoint> = None;
    // Per-step wall time estimate feeding the policy cost model.
    let mut step_time_ema: f64 = 0.0;

    // --- membership -----------------------------------------------------
    let mut comm = match role {
        Role::Member => proc.init_comm(),
        Role::Joiner | Role::Spare => {
            let joined = if role == Role::Spare {
                proc.join_training_as_spare(cfg.join_wait)
            } else {
                proc.join_training_deadline(cfg.join_wait)
            };
            match joined {
                Ok(c) => c,
                Err(UlfmError::SelfDied) => return WorkerExit::Died,
                Err(UlfmError::Aborted) if role == Role::Spare => {
                    // Dismissed: the run finished (or aborted) without
                    // needing this spare. A clean non-event — crucially not
                    // a below-minimum abort.
                    telemetry::counter("elastic.spare.dismissed").incr();
                    proc.retire();
                    return WorkerExit::Aborted(idle_stats(&model));
                }
                Err(UlfmError::Aborted) => {
                    // The run shut down before this joiner was admitted.
                    return abort_exit(proc, 0, f32::NAN, 0, 0, 0, &model, &opt, breakdowns);
                }
                Err(UlfmError::JoinTimeout) => {
                    // Orphaned: the group completed, degraded to running
                    // shrunk, or partitioned away without ever ticketing
                    // us. Leave quietly — crucially *without* abort_joins,
                    // which would dismiss other still-viable joiners.
                    telemetry::counter(if role == Role::Spare {
                        "elastic.spare.ticket_timeouts"
                    } else {
                        "elastic.join.ticket_timeouts"
                    })
                    .incr();
                    proc.retire();
                    return WorkerExit::Aborted(idle_stats(&model));
                }
                Err(e) => unreachable!("join_training failed unexpectedly: {e}"),
            }
        }
    };
    // Select the agreement protocol for every recovery on this (and, via
    // inheritance, every derived) communicator. A joiner's ticket cannot
    // carry the setting, so each worker installs it from its own spec —
    // identical across the SPMD group by construction.
    comm.set_agree_impl(spec.agree);
    let mut step: u64 = if role != Role::Member {
        // Receive (state, step) from the group; the paper's "reinitializing
        // the training state for the new workers". The sync survives sender
        // deaths: it retries on the recovered group until a state-holder
        // commits the broadcast (or none survives and the run aborts). A
        // promoted spare bootstraps exactly like a joiner — the members'
        // side of its promotion is this same sync.
        let mut episode = RecoveryBreakdown::new(RecoveryKind::Join, 0);
        let mut has_state = false;
        let s = checkpoint_sync(
            proc,
            cfg,
            &mut comm,
            &mut model,
            &mut opt,
            &mut has_state,
            0,
            &None,
            SyncOpts {
                source: SyncSource::Live,
                restore_all: false,
                bound: SyncBound::Unbounded,
            },
            &mut episode,
            topology,
            &mut recoveries,
        );
        episode.publish(proc.rank().0);
        breakdowns.push(episode);
        match s {
            Ok(SyncOutcome::Synced(step)) => step,
            Ok(SyncOutcome::GaveUp) => unreachable!("unbounded sync never gives up"),
            Err(Fatal::Died) => return WorkerExit::Died,
            Err(Fatal::Excluded) => {
                return exclude_exit(proc, 0, f32::NAN, recoveries, 0, 0, &model)
            }
            Err(Fatal::Aborted) => {
                return abort_exit(
                    proc,
                    0,
                    f32::NAN,
                    recoveries,
                    0,
                    0,
                    &model,
                    &opt,
                    breakdowns,
                )
            }
        }
    } else {
        0
    };

    // Warm-pool determinism: like expected_joiners, members block until
    // every expected spare has announced itself, so the first failure
    // already sees a warm pool instead of racing spare startup. The
    // counter is monotone and global; `join_wait` bounds the stall.
    if role == Role::Member && cfg.expected_spares > 0 {
        let deadline = cfg.join_wait.map(|w| std::time::Instant::now() + w);
        while proc.announced_spares() < cfg.expected_spares as u64
            && deadline.is_none_or(|d| std::time::Instant::now() < d)
        {
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
    }

    // Fusion schedule (if enabled): gradients pack into buckets in ready
    // order and each bucket allreduces as one resilient collective. The
    // per-step op sequence becomes `n_ops` bucket allreduces + the commit
    // barrier, instead of one allreduce per tensor + barrier; op ids and
    // the restart-point protocol are otherwise identical.
    let fusion = spec
        .fusion
        .map(|cap| crate::fusion::FusionSetup::new(&model, cap));
    // Per-epoch hierarchical routing state: the two-tier cost model is
    // static; the node map is rebuilt inside `grad_allreduce` whenever the
    // communicator epoch changes.
    let hier_model = HierModel::summit();
    let mut hier_cache: Option<Hierarchy> = None;
    let n_ops: i64 = fusion
        .as_ref()
        .map_or(model.num_tensors() as i64, |f| f.n_buckets() as i64);
    // World size the LR schedule is currently anchored to.
    let mut lr_world = comm.size();
    if let Some(policy) = cfg.lr_scaling {
        let target = spec.lr * lr_world as f32 / policy.base_world as f32;
        opt.set_schedule(dnn::LrSchedule::PiecewiseRamp {
            from: spec.lr,
            to: target,
            start: step,
            ramp: policy.warmup_steps,
        });
    }

    while (step as usize) < spec.total_steps {
        telemetry::counter("elastic.forward.steps").incr();
        let _step_span = telemetry::span("elastic.forward.step_ns");
        let step_t0 = std::time::Instant::now();
        let recoveries_before = recoveries;
        // The step body may be re-attempted from scratch: if this worker had
        // raced ahead into step S+1 when a failure struck step S's commit
        // barrier, it redoes that barrier and then *recomputes* its S+1
        // gradients with the post-recovery membership (its pre-failure
        // shard was cut for the old world). A committed promotion or
        // rollback also restarts here, at the re-synchronized step.
        let grads = 'attempt: loop {
            // --- local gradient computation -------------------------------
            let world = comm.size();
            let my_rank = comm.rank();
            let shard = ds.shard(step as usize, spec.global_batch, my_rank, world);
            let shard_weight = shard.labels.len() as f32 / spec.global_batch as f32;
            model.zero_grads();

            // Ops already completed by the eager (ready-queue) launch path,
            // and the first error it encountered, if any.
            let mut done: Vec<bool> = vec![false; n_ops as usize];
            let mut pending_err: Option<(usize, UlfmError)> = None;

            // Weighted gradients: allreduce(SUM) of per-shard means ×
            // weights equals the global-batch mean. `op_bufs` are the
            // collective payloads — fused buckets (ready order) or
            // per-tensor gradients (declaration order); `saved` holds the
            // retained inputs of §3.2 — what makes forward recovery work.
            let (report, mut op_bufs, saved) = if let Some(fs) = &fusion {
                let mut bufs = fs.bucket_buffers();
                let mut saved: Vec<Vec<f32>> = vec![Vec::new(); fs.n_buckets()];
                let mut filled = vec![0usize; fs.n_buckets()];
                let mut fill_start: Vec<Option<std::time::Instant>> = vec![None; fs.n_buckets()];
                let report = model.compute_gradients_with(&shard, |idx, g| {
                    let (b, off, len) = fs.slot(idx);
                    if fill_start[b].is_none() {
                        fill_start[b] = Some(std::time::Instant::now());
                    }
                    for (d, s) in bufs[b][off..off + len].iter_mut().zip(g.data()) {
                        *d = s * shard_weight;
                    }
                    filled[b] += 1;
                    if filled[b] < fs.bucket_tensors(b) {
                        return;
                    }
                    // Bucket filled: save its input, then launch the fused
                    // allreduce immediately — later layers are still
                    // differentiating (the ready-queue overlap).
                    if let Some(t0) = fill_start[b].take() {
                        telemetry::histogram("elastic.fusion.fill_latency_ns")
                            .record(t0.elapsed().as_nanos() as u64);
                    }
                    collectives::observe_bucket(
                        bufs[b].len() * std::mem::size_of::<f32>(),
                        fs.bucket_tensors(b),
                    );
                    saved[b] = bufs[b].clone();
                    if pending_err.is_none() {
                        match grad_allreduce(
                            &comm,
                            &mut hier_cache,
                            spec,
                            &hier_model,
                            &mut bufs[b],
                        ) {
                            Ok(()) => done[b] = true,
                            // Stop launching; the op loop below drives the
                            // recovery from this recorded error.
                            Err(e) => pending_err = Some((b, e)),
                        }
                    }
                });
                (report, bufs, saved)
            } else {
                let report = model.compute_gradients(&shard);
                let grads: Vec<Vec<f32>> = model
                    .grads()
                    .iter()
                    .map(|g| g.data().iter().map(|v| v * shard_weight).collect())
                    .collect();
                let saved = grads.clone();
                (report, grads, saved)
            };
            last_loss = report.loss;
            let step_group: Vec<RankId> = comm.group().to_vec();

            // --- resilient collective phase -------------------------------
            // local_op ∈ [0, n_ops]: gradient allreduces (per bucket or per
            // tensor), then the commit barrier. Ops the eager path already
            // completed are skipped; its recorded error surfaces at the op
            // it struck, feeding the same recovery protocol.
            let mut local_op: i64 = 0;
            let mut redo_from: Option<usize> = None;
            while local_op <= n_ops {
                let lo = local_op as usize;
                let result = if local_op < n_ops && done[lo] {
                    Ok(())
                } else if pending_err.as_ref().is_some_and(|(b, _)| *b == lo) {
                    Err(pending_err.take().expect("just checked").1)
                } else if local_op == n_ops {
                    comm.barrier()
                } else {
                    grad_allreduce(&comm, &mut hier_cache, spec, &hier_model, &mut op_bufs[lo])
                };
                match result {
                    Ok(()) => local_op += 1,
                    Err(UlfmError::SelfDied) => return WorkerExit::Died,
                    Err(UlfmError::Excluded) => unreachable!("collectives never exclude"),
                    Err(_) => {
                        recoveries += 1;
                        let my_global = global_op(step, n_ops, local_op);
                        let mut episode = RecoveryBreakdown::new(RecoveryKind::Forward, step);
                        // Recover, then — if the policy layer is on — run
                        // the policy round. *Every* survivor of the shrink
                        // runs it (racing workers included: they align here
                        // before diverging into their redo paths), so the
                        // commit's collectives stay collective.
                        let flow =
                            match recover(proc, cfg, &comm, my_global, &mut episode, topology) {
                                Ok((new_comm, restart)) => {
                                    comm = new_comm;
                                    if cfg.policy_active() {
                                        policy_dispatch(
                                            proc,
                                            cfg,
                                            &mut comm,
                                            &mut model,
                                            &mut opt,
                                            step,
                                            &local_ckpt,
                                            step_time_ema,
                                            world,
                                            &mut episode,
                                            topology,
                                            &mut recoveries,
                                        )
                                        .map(|action| {
                                            match action {
                                                PolicyAction::Shrink => Flow::Redo(restart),
                                                PolicyAction::Restart(s) => Flow::Restart(s),
                                            }
                                        })
                                    } else {
                                        Ok(Flow::Redo(restart))
                                    }
                                }
                                Err(f) => Err(f),
                            };
                        episode.publish(proc.rank().0);
                        breakdowns.push(breakdowns_last_fix(&mut episode));
                        match flow {
                            Ok(Flow::Restart(s)) => {
                                // Promotion or rollback re-synchronized the
                                // state; recompute from step `s` (racing
                                // workers count their rewound applies as
                                // recomputation).
                                if s < step {
                                    steps_recomputed += step - s;
                                }
                                step = s;
                                continue 'attempt;
                            }
                            Ok(Flow::Redo(restart)) => {
                                let first_of_step = global_op(step, n_ops, 0);
                                if restart >= first_of_step {
                                    // Restart within this step: restore the
                                    // retained inputs and redo from there.
                                    // Ops the eager path completed on the
                                    // old communicator are redone too —
                                    // their `done` marks are void.
                                    let rlocal = (restart - first_of_step) as usize;
                                    assert!(rlocal as i64 <= n_ops);
                                    for (i, s) in saved.iter().enumerate().skip(rlocal) {
                                        op_bufs[i].copy_from_slice(s);
                                    }
                                    for d in done.iter_mut().skip(rlocal) {
                                        *d = false;
                                    }
                                    pending_err = None;
                                    redo_from = Some(redo_from.map_or(rlocal, |r| r.min(rlocal)));
                                    local_op = rlocal as i64;
                                } else {
                                    // This worker raced ahead: the agreed
                                    // restart is the previous step's commit
                                    // barrier. Redo it (with nested recovery)
                                    // and recompute this step from scratch.
                                    assert_eq!(
                                        restart,
                                        first_of_step - 1,
                                        "restart cannot reach into committed work"
                                    );
                                    loop {
                                        match comm.barrier() {
                                            Ok(()) => break,
                                            Err(UlfmError::SelfDied) => return WorkerExit::Died,
                                            Err(_) => {
                                                recoveries += 1;
                                                let mut ep = RecoveryBreakdown::new(
                                                    RecoveryKind::Forward,
                                                    step,
                                                );
                                                // The policy round runs here
                                                // too: the slower survivors
                                                // of this cascade run it in
                                                // their op loops, and its
                                                // commit must see everyone.
                                                let flow2 = match recover(
                                                    proc, cfg, &comm, restart, &mut ep, topology,
                                                ) {
                                                    Ok((c, r2)) => {
                                                        assert_eq!(
                                                            r2, restart,
                                                            "nested restart must stay at the \
                                                             redone barrier"
                                                        );
                                                        comm = c;
                                                        if cfg.policy_active() {
                                                            policy_dispatch(
                                                                proc,
                                                                cfg,
                                                                &mut comm,
                                                                &mut model,
                                                                &mut opt,
                                                                step,
                                                                &local_ckpt,
                                                                step_time_ema,
                                                                world,
                                                                &mut ep,
                                                                topology,
                                                                &mut recoveries,
                                                            )
                                                            .map(|action| match action {
                                                                PolicyAction::Shrink => {
                                                                    Flow::Redo(restart)
                                                                }
                                                                PolicyAction::Restart(s) => {
                                                                    Flow::Restart(s)
                                                                }
                                                            })
                                                        } else {
                                                            Ok(Flow::Redo(restart))
                                                        }
                                                    }
                                                    Err(f) => Err(f),
                                                };
                                                ep.publish(proc.rank().0);
                                                breakdowns.push(breakdowns_last_fix(&mut ep));
                                                match flow2 {
                                                    Ok(Flow::Redo(_)) => {}
                                                    Ok(Flow::Restart(s)) => {
                                                        if s < step {
                                                            steps_recomputed += step - s;
                                                        }
                                                        step = s;
                                                        continue 'attempt;
                                                    }
                                                    Err(Fatal::Died) => return WorkerExit::Died,
                                                    Err(Fatal::Excluded) => {
                                                        return exclude_exit(
                                                            proc,
                                                            step,
                                                            last_loss,
                                                            recoveries,
                                                            world,
                                                            steps_recomputed,
                                                            &model,
                                                        )
                                                    }
                                                    Err(Fatal::Aborted) => {
                                                        return abort_exit(
                                                            proc,
                                                            step,
                                                            last_loss,
                                                            recoveries,
                                                            world,
                                                            steps_recomputed,
                                                            &model,
                                                            &opt,
                                                            breakdowns,
                                                        )
                                                    }
                                                }
                                            }
                                        }
                                    }
                                    continue 'attempt;
                                }
                            }
                            Err(Fatal::Died) => return WorkerExit::Died,
                            Err(Fatal::Excluded) => {
                                return exclude_exit(
                                    proc,
                                    step,
                                    last_loss,
                                    recoveries,
                                    world,
                                    steps_recomputed,
                                    &model,
                                )
                            }
                            Err(Fatal::Aborted) => {
                                return abort_exit(
                                    proc,
                                    step,
                                    last_loss,
                                    recoveries,
                                    world,
                                    steps_recomputed,
                                    &model,
                                    &opt,
                                    breakdowns,
                                )
                            }
                        }
                    }
                }
            }

            // Degraded-step renormalization: contributions of evicted
            // workers are gone from redone tensors; optionally scale back
            // up. The factor derives from the step's original sharding, so
            // every survivor applies the identical scale.
            if let (Some(rfrom), true) = (redo_from, cfg.renormalize_after_loss) {
                let surviving: f32 = comm
                    .group()
                    .iter()
                    .map(|g| {
                        step_group
                            .iter()
                            .position(|&x| x == *g)
                            .map(|idx| shard_len(idx, step_group.len(), spec.global_batch))
                            .unwrap_or(0) as f32
                    })
                    .sum::<f32>()
                    / spec.global_batch as f32;
                if surviving > 0.0 && surviving < 1.0 {
                    let scale = 1.0 / surviving;
                    let from = rfrom.min(op_bufs.len());
                    for g in op_bufs.iter_mut().skip(from) {
                        for v in g.iter_mut() {
                            *v *= scale;
                        }
                    }
                }
            }
            // Fused buckets scatter back to declaration-order tensors; the
            // unfused payloads already are the per-tensor gradients.
            break 'attempt match &fusion {
                Some(fs) => fs.unpack(&op_bufs),
                None => op_bufs,
            };
        };

        // --- committed: apply the update ---------------------------------
        let cascade = (recoveries - recoveries_before) as u64;
        if cascade > 0 {
            telemetry::histogram("elastic.recovery.cascade_depth").record(cascade);
        }
        model.set_grads(&grads);
        if let Some(policy) = cfg.lr_scaling {
            // Re-anchor the rate whenever the world changed this step.
            let world = comm.size();
            if world != lr_world {
                let target = spec.lr * world as f32 / policy.base_world as f32;
                opt.set_schedule(dnn::LrSchedule::PiecewiseRamp {
                    from: opt.current_lr(),
                    to: target,
                    start: step,
                    ramp: policy.warmup_steps,
                });
                lr_world = world;
            }
        }
        opt.step(&mut model.params_mut());
        step += 1;
        if cfg.ckpt_every > 0 && step.is_multiple_of(cfg.ckpt_every) {
            let mut ck = Checkpoint::capture(&model, &opt);
            // Anchor to the training step (state is ready to compute it),
            // which the rollback arm uses for the restart point and age.
            ck.step = step;
            local_ckpt = Some(ck);
        }
        let dt = step_t0.elapsed().as_secs_f64();
        step_time_ema = if step_time_ema > 0.0 {
            0.8 * step_time_ema + 0.2 * dt
        } else {
            dt
        };

        // --- epoch boundary: accept joiners (scenarios II & III) ---------
        if cfg.accept_joiners && (step as usize).is_multiple_of(spec.steps_per_epoch) {
            // Scenario II/III determinism: no epoch boundary passes until
            // every expected joiner has announced itself. The counter is
            // monotone and global, so all members unblock on the same
            // condition regardless of who drains the pending list when.
            // `join_wait` bounds the stall: past the deadline the group
            // gives up and continues shrunk rather than waiting on a joiner
            // that crashed before announcing. Spares are a different
            // namespace entirely: epoch boundaries never drain the pool.
            let wait_deadline = cfg.join_wait.map(|w| std::time::Instant::now() + w);
            while proc.announced_joiners() < cfg.expected_joiners as u64
                && wait_deadline.is_none_or(|d| std::time::Instant::now() < d)
            {
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            // The admission itself is re-entrant: a death mid-handshake
            // (leader included) fails the commit uniformly, the survivors
            // shrink, and the shrunk group's new rank 0 re-proposes the
            // still-pending joiners. The give-up hint below is only the
            // *leader's* input — the decision every member acts on rides in
            // the committed proposal, so deadline clocks cannot diverge the
            // SPMD control flow.
            loop {
                let arrived = proc.announced_joiners() >= cfg.expected_joiners as u64;
                let expired = wait_deadline.is_some_and(|d| std::time::Instant::now() >= d);
                match comm.accept_joiners_directed(arrived || expired) {
                    Ok(JoinOutcome::Merged(mut merged)) => {
                        let mut episode = RecoveryBreakdown::new(RecoveryKind::Join, step);
                        let mut has_state = true;
                        let res = checkpoint_sync(
                            proc,
                            cfg,
                            &mut merged,
                            &mut model,
                            &mut opt,
                            &mut has_state,
                            step,
                            &None,
                            SyncOpts {
                                source: SyncSource::Live,
                                restore_all: false,
                                bound: SyncBound::Unbounded,
                            },
                            &mut episode,
                            topology,
                            &mut recoveries,
                        );
                        episode.publish(proc.rank().0);
                        breakdowns.push(episode);
                        match res {
                            Ok(_) => {
                                comm = merged;
                                break;
                            }
                            Err(Fatal::Died) => return WorkerExit::Died,
                            Err(Fatal::Excluded) => {
                                return exclude_exit(
                                    proc,
                                    step,
                                    last_loss,
                                    recoveries,
                                    lr_world,
                                    steps_recomputed,
                                    &model,
                                )
                            }
                            Err(Fatal::Aborted) => {
                                return abort_exit(
                                    proc,
                                    step,
                                    last_loss,
                                    recoveries,
                                    lr_world,
                                    steps_recomputed,
                                    &model,
                                    &opt,
                                    breakdowns,
                                )
                            }
                        }
                    }
                    Ok(JoinOutcome::NoneYet) => {
                        // Leader asked the group to keep waiting: nobody had
                        // announced when it proposed. Poll again shortly.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Ok(JoinOutcome::StopWaiting) => {
                        if expired && !arrived {
                            // Degradation to a shrunk-but-progressing group:
                            // the expected joiner never came and the leader
                            // committed giving up on it.
                            telemetry::counter("elastic.join.wait_timeouts").incr();
                        }
                        break;
                    }
                    Err(UlfmError::SelfDied) => return WorkerExit::Died,
                    Err(_) => {
                        // Failed admission commit (or a death observed on
                        // entry): recover on the *old* communicator — the
                        // pending joiners stayed pending — and retry.
                        recoveries += 1;
                        let mut episode = RecoveryBreakdown::new(RecoveryKind::Forward, step);
                        let r = recover(proc, cfg, &comm, u64::MAX, &mut episode, topology);
                        episode.publish(proc.rank().0);
                        breakdowns.push(breakdowns_last_fix(&mut episode));
                        match r {
                            Ok((c, _)) => comm = c,
                            Err(Fatal::Died) => return WorkerExit::Died,
                            Err(Fatal::Excluded) => {
                                return exclude_exit(
                                    proc,
                                    step,
                                    last_loss,
                                    recoveries,
                                    lr_world,
                                    steps_recomputed,
                                    &model,
                                )
                            }
                            Err(Fatal::Aborted) => {
                                return abort_exit(
                                    proc,
                                    step,
                                    last_loss,
                                    recoveries,
                                    lr_world,
                                    steps_recomputed,
                                    &model,
                                    &opt,
                                    breakdowns,
                                )
                            }
                        }
                    }
                }
            }
        }
    }

    // Leaving the computation cleanly: dismiss spares the run never needed
    // (idempotent — racing completers may all call it), then mark ourselves
    // gone so that any concurrent recovery among slower workers does not
    // wait for us.
    let stats = WorkerStats {
        steps_done: step,
        final_loss: last_loss,
        recoveries,
        final_world: comm.size(),
        state_fingerprint: state_fingerprint(&model.state_flat()),
        final_lr: opt.current_lr(),
        steps_recomputed,
    };
    proc.dismiss_spares();
    proc.retire();
    WorkerExit::Completed(stats)
}

/// Stats for a worker that never trained (dismissed or orphaned spare /
/// joiner).
fn idle_stats(model: &dnn::Model) -> WorkerStats {
    WorkerStats {
        steps_done: 0,
        final_loss: f32::NAN,
        recoveries: 0,
        final_world: 0,
        state_fingerprint: state_fingerprint(&model.state_flat()),
        final_lr: f32::NAN,
        steps_recomputed: 0,
    }
}

/// Work around borrowck: move the episode out (it was filled in-place).
fn breakdowns_last_fix(episode: &mut RecoveryBreakdown) -> RecoveryBreakdown {
    std::mem::replace(episode, RecoveryBreakdown::new(RecoveryKind::Forward, 0))
}

/// Exit path for a worker evicted by the drop-node policy.
fn exclude_exit(
    proc: &Proc,
    step: u64,
    last_loss: f32,
    recoveries: usize,
    world: usize,
    steps_recomputed: u64,
    model: &dnn::Model,
) -> WorkerExit {
    proc.retire();
    WorkerExit::Excluded(WorkerStats {
        steps_done: step,
        final_loss: last_loss,
        recoveries,
        final_world: world,
        state_fingerprint: state_fingerprint(&model.state_flat()),
        final_lr: f32::NAN,
        steps_recomputed,
    })
}

/// Exit path for a graceful below-minimum shutdown: release waiting
/// joiners, record the abort episode, and leave with the progress so far.
#[allow(clippy::too_many_arguments)]
fn abort_exit(
    proc: &Proc,
    step: u64,
    last_loss: f32,
    recoveries: usize,
    world: usize,
    steps_recomputed: u64,
    model: &dnn::Model,
    opt: &dnn::Sgd,
    breakdowns: &mut Vec<RecoveryBreakdown>,
) -> WorkerExit {
    telemetry::counter("elastic.abort.below_min").incr();
    let mut episode = RecoveryBreakdown::new(RecoveryKind::Abort, step);
    episode.time("below_min", || {
        // Joiners (and spares) still blocked on the ticket service would
        // otherwise wait for a computation that no longer exists; dismiss
        // them, then leave so concurrent recoveries observe the departure
        // instead of hanging on our silence.
        proc.abort_joins();
        proc.retire();
    });
    episode.publish(proc.rank().0);
    breakdowns.push(episode);
    WorkerExit::Aborted(WorkerStats {
        steps_done: step,
        final_loss: last_loss,
        recoveries,
        final_world: world,
        state_fingerprint: state_fingerprint(&model.state_flat()),
        final_lr: opt.current_lr(),
        steps_recomputed,
    })
}

fn global_op(step: u64, n_tensors: i64, local_op: i64) -> u64 {
    (step as i64 * (n_tensors + 1) + local_op) as u64
}

fn shard_len(rank: usize, world: usize, global: usize) -> usize {
    (rank + 1) * global / world - rank * global / world
}

/// One recovery episode: revoke → agree(min) → shrink(policy), then the
/// `min_workers` floor check — a group that shrank below the floor aborts
/// uniformly (every survivor of the same shrink sees the same size).
fn recover(
    proc: &Proc,
    cfg: &ForwardConfig,
    comm: &Communicator,
    my_global_op: u64,
    episode: &mut RecoveryBreakdown,
    topology: transport::Topology,
) -> Result<(Communicator, u64), Fatal> {
    telemetry::counter("elastic.recovery.attempts").incr();
    episode.time("revoke", || comm.revoke());

    let agreed = episode.time("agree", || comm.agree(u64::MAX, my_global_op));
    let agreed = match agreed {
        Ok(a) => a,
        Err(UlfmError::SelfDied) => return Err(Fatal::Died),
        Err(e) => unreachable!("agree only fails fatally: {e}"),
    };
    // How many failures this episode handles as one batch: with suspicion
    // batching + lattice agreement a whole burst lands here at once and the
    // eviction policy dispatches on the full set in one view change.
    telemetry::histogram("elastic.recovery.batch_size").record(agreed.failed.len() as u64);

    let total_ranks = proc.endpoint().total_ranks();
    let policy = cfg.policy;
    let shrunk = episode.time("shrink", || {
        comm.shrink_with(|failed| policy_evictions(policy, failed, topology, total_ranks))
    });
    match shrunk {
        Ok(ShrinkOutcome::Member(c)) => {
            if c.size() < cfg.spec.min_workers {
                return Err(Fatal::Aborted);
            }
            Ok((c, agreed.min))
        }
        Ok(ShrinkOutcome::Excluded) => Err(Fatal::Excluded),
        Err(UlfmError::SelfDied) => Err(Fatal::Died),
        Err(e) => unreachable!("shrink only fails fatally: {e}"),
    }
}

/// The policy round: score the arms, commit one uniformly, execute it, and
/// fall down the deterministic fallback chain if it dies mid-recovery.
/// Runs on the *already-shrunk* group; `world_before` is the size the
/// failed attempt started with. Returns what the op loop should do next.
#[allow(clippy::too_many_arguments)]
fn policy_dispatch(
    proc: &Proc,
    cfg: &ForwardConfig,
    comm: &mut Communicator,
    model: &mut dnn::Model,
    opt: &mut dnn::Sgd,
    step: u64,
    local_ckpt: &Option<Checkpoint>,
    step_time_ema: f64,
    world_before: usize,
    episode: &mut RecoveryBreakdown,
    topology: transport::Topology,
    recoveries: &mut usize,
) -> Result<PolicyAction, Fatal> {
    let r = policy_dispatch_inner(
        proc,
        cfg,
        comm,
        model,
        opt,
        step,
        local_ckpt,
        step_time_ema,
        world_before,
        episode,
        topology,
        recoveries,
    );
    if matches!(r, Err(Fatal::Aborted)) {
        // The chain's last edge: whatever arm was running, a cascade drove
        // the group below the floor and the run aborts.
        telemetry::counter("elastic.policy.fallback.to_abort").incr();
    }
    r
}

#[allow(clippy::too_many_arguments)]
fn policy_dispatch_inner(
    proc: &Proc,
    cfg: &ForwardConfig,
    comm: &mut Communicator,
    model: &mut dnn::Model,
    opt: &mut dnn::Sgd,
    step: u64,
    local_ckpt: &Option<Checkpoint>,
    step_time_ema: f64,
    world_before: usize,
    episode: &mut RecoveryBreakdown,
    topology: transport::Topology,
    recoveries: &mut usize,
) -> Result<PolicyAction, Fatal> {
    // Live inputs, gathered locally. Only the leader's copy decides — the
    // decision rides inside the committed proposal, so divergent local
    // views (clocks, fabric stats, pool races) cannot split the SPMD flow.
    let fabric = proc.endpoint().stats();
    let inputs = PolicyInputs {
        world: comm.size(),
        lost: world_before.saturating_sub(comm.size()).max(1),
        spares: proc.waiting_spares(),
        has_ckpt: local_ckpt.is_some(),
        ckpt_age_steps: local_ckpt
            .as_ref()
            .map_or(0, |c| step.saturating_sub(c.step)),
        remaining_steps: (cfg.spec.total_steps as u64).saturating_sub(step),
        step_time: step_time_ema.max(1e-6),
        state_bytes: (model.state_flat().len() * 8) as f64,
        perturb_rate: fabric.retransmits as f64 / fabric.messages.max(1) as f64,
    };
    let hint = PolicyEngine::new(cfg.policy_mode).choose(&inputs);
    telemetry::counter(match hint {
        RecoveryArm::Shrink => "elastic.policy.decision.shrink",
        RecoveryArm::PromoteSpares => "elastic.policy.decision.spare",
        RecoveryArm::Rollback => "elastic.policy.decision.rollback",
    })
    .incr();

    let group_before: Vec<RankId> = comm.group().to_vec();
    let committed = episode.time("policy_commit", || {
        comm.commit_recovery_policy(hint, inputs.lost)
    });
    match committed {
        Err(UlfmError::SelfDied) => Err(Fatal::Died),
        Err(_) => {
            // The policy round itself died (a member or spare lost during
            // the proposal): recover once more and fall back to plain
            // shrink — the arm with no preconditions.
            telemetry::counter("elastic.policy.fallback.round_to_shrink").incr();
            *recoveries += 1;
            match recover(proc, cfg, comm, u64::MAX, episode, topology) {
                Ok((c, _)) => {
                    *comm = c;
                    episode.policy = Some("shrink");
                    Ok(PolicyAction::Shrink)
                }
                Err(f) => Err(f),
            }
        }
        Ok(PolicyCommit::Shrink) => {
            episode.policy = Some("shrink");
            Ok(PolicyAction::Shrink)
        }
        Ok(PolicyCommit::Promoted(merged)) => {
            // The spares hold their promotion tickets; synchronize them
            // from live state. `restore_all` reconciles racing survivors
            // (divergent by at most one optimizer apply) onto rank 0's
            // state; the bound gives up — uniformly, since post-recovery
            // membership is agreed — if no promoted spare survives the
            // sync, falling back to the shrink redo.
            let promoted: Vec<RankId> = merged
                .group()
                .iter()
                .copied()
                .filter(|r| !group_before.contains(r))
                .collect();
            *comm = merged;
            let mut has_state = true;
            let synced = checkpoint_sync(
                proc,
                cfg,
                comm,
                model,
                opt,
                &mut has_state,
                step,
                &None,
                SyncOpts {
                    source: SyncSource::Live,
                    restore_all: true,
                    bound: SyncBound::RanksAlive(&promoted),
                },
                episode,
                topology,
                recoveries,
            )?;
            match synced {
                SyncOutcome::Synced(s) => {
                    telemetry::counter("elastic.policy.outcome.promoted").incr();
                    episode.policy = Some("spare");
                    Ok(PolicyAction::Restart(s))
                }
                SyncOutcome::GaveUp => {
                    telemetry::counter("elastic.policy.fallback.spare_to_shrink").incr();
                    episode.policy = Some("spare->shrink");
                    Ok(PolicyAction::Shrink)
                }
            }
        }
        Ok(PolicyCommit::Rollback) => {
            // One shot: broadcast rank 0's local checkpoint and restore
            // every survivor from it. Any failure inside the attempt —
            // including the post-shrink root lacking a checkpoint — gives
            // up and falls back to the shrink redo (retained inputs are
            // still held).
            let mut has_state = true;
            let synced = checkpoint_sync(
                proc,
                cfg,
                comm,
                model,
                opt,
                &mut has_state,
                step,
                local_ckpt,
                SyncOpts {
                    source: SyncSource::Ckpt,
                    restore_all: true,
                    bound: SyncBound::Attempts(1),
                },
                episode,
                topology,
                recoveries,
            )?;
            match synced {
                SyncOutcome::Synced(s) => {
                    episode.policy = Some("rollback");
                    Ok(PolicyAction::Restart(s))
                }
                SyncOutcome::GaveUp => {
                    telemetry::counter("elastic.policy.fallback.rollback_to_shrink").incr();
                    episode.policy = Some("rollback->shrink");
                    Ok(PolicyAction::Shrink)
                }
            }
        }
    }
}

/// Outcome of one checkpoint-broadcast attempt.
enum SyncAttempt {
    /// The commit agreement accepted the broadcast; payload as delivered.
    Committed(Vec<u8>),
    /// A failure broke the attempt; recover and retry.
    Retry,
    /// The root holds no state of the requested source.
    Abort,
    /// This rank died.
    Died,
}

/// What the sender broadcasts in [`checkpoint_sync`].
enum SyncSource {
    /// Live training state, captured fresh at the root.
    Live,
    /// The root's most recent local checkpoint (the rollback arm).
    Ckpt,
}

/// When a bounded [`checkpoint_sync`] stops retrying. Every variant is
/// SPMD-uniform: per-attempt outcomes and post-recovery membership are both
/// agreed, so all survivors count attempts and see the group identically.
enum SyncBound<'a> {
    /// Retry until committed or no state-holder survives (legacy behavior
    /// of joiner bootstrap and epoch-boundary admission).
    Unbounded,
    /// Give up after this many *failed* attempts (the rollback arm's
    /// single shot).
    Attempts(u32),
    /// Give up once none of these ranks remains in the group (the
    /// promotion arm: stop once every promoted spare is dead).
    RanksAlive(&'a [RankId]),
}

/// How a [`checkpoint_sync`] behaves.
struct SyncOpts<'a> {
    /// What the root broadcasts.
    source: SyncSource,
    /// Restore *every* member from the payload, not just state-less ones —
    /// rollback semantics, and the racing-survivor reconciliation under
    /// promotion.
    restore_all: bool,
    /// Retry bound.
    bound: SyncBound<'a>,
}

/// How a bounded [`checkpoint_sync`] ended.
enum SyncOutcome {
    /// Committed; the step the synchronized state is ready to compute.
    Synced(u64),
    /// The bound tripped before a commit; nobody restored anything (the
    /// restore only happens on the uniform commit), so the caller can fall
    /// back safely.
    GaveUp,
}

/// Resilient (step ‖ state) synchronization, shared by the joiner/spare
/// bootstrap, the epoch-boundary admission, and the promotion and rollback
/// policy arms. Group rank 0 broadcasts its state (live or checkpointed
/// per [`SyncOpts`]), then a uniform commit agreement decides whether every
/// member got it; on failure the group recovers (revoke → agree → shrink →
/// floor check) and — within the bound — retries with the shrunk group's
/// rank 0 as the new sender.
///
/// The sender is always a state-holder while one survives: state-holders
/// form a prefix of the merged group (members before joiners, and shrink
/// preserves relative order), so rank 0 lacking state means *no* original
/// member survives — which the commit agreement reports uniformly; an
/// unbounded sync aborts on that (restoring garbage is the alternative),
/// a bounded one gives up and lets the caller fall back.
#[allow(clippy::too_many_arguments)]
fn checkpoint_sync(
    proc: &Proc,
    cfg: &ForwardConfig,
    comm: &mut Communicator,
    model: &mut dnn::Model,
    opt: &mut dnn::Sgd,
    has_state: &mut bool,
    my_step: u64,
    local_ckpt: &Option<Checkpoint>,
    opts: SyncOpts<'_>,
    episode: &mut RecoveryBreakdown,
    topology: transport::Topology,
    recoveries: &mut usize,
) -> Result<SyncOutcome, Fatal> {
    let mut attempt = 0u64;
    let mut failed_attempts = 0u32;
    loop {
        if attempt > 0 {
            telemetry::counter("elastic.ckpt_sync.retries").incr();
        }
        attempt += 1;
        // Named fault point: scripts can kill the sender (or any receiver)
        // between checkpoint-broadcast attempts.
        if comm.endpoint().fault_point("ckpt.sync").is_err() {
            return Err(Fatal::Died);
        }
        let outcome = episode.time("state_sync", || {
            let root = comm.rank() == 0;
            let provides = match opts.source {
                SyncSource::Live => *has_state,
                SyncSource::Ckpt => local_ckpt.is_some(),
            };
            let mut payload = if root && provides {
                match opts.source {
                    SyncSource::Live => {
                        let ck = Checkpoint::capture(model, opt);
                        let mut bytes = my_step.to_le_bytes().to_vec();
                        bytes.extend_from_slice(&ck.bytes);
                        bytes
                    }
                    SyncSource::Ckpt => {
                        let ck = local_ckpt.as_ref().expect("provides checked");
                        let mut bytes = ck.step.to_le_bytes().to_vec();
                        bytes.extend_from_slice(&ck.bytes);
                        bytes
                    }
                }
            } else {
                Vec::new()
            };
            // A failed broadcast unwinds reliably (the binomial tree
            // forwards poison frames), so every member reaches the commit
            // agreement without any comm-wide revocation.
            let sent = comm.bcast(0, &mut payload);
            if matches!(sent, Err(UlfmError::SelfDied)) {
                return SyncAttempt::Died;
            }
            // Commit flags: bit0 = my broadcast completed; bit1 = the root
            // holds state of the requested source (non-roots contribute 1
            // so the AND isolates the root's claim).
            let flags = (sent.is_ok() as u64) | if root { (provides as u64) << 1 } else { 0b10 };
            match comm.agree(flags, u64::MAX) {
                Ok(v) if v.flags & 0b10 == 0 => SyncAttempt::Abort,
                Ok(v) if v.flags & 1 == 1 && v.failed.is_empty() => SyncAttempt::Committed(payload),
                Ok(_) => SyncAttempt::Retry,
                Err(UlfmError::SelfDied) => SyncAttempt::Died,
                Err(e) => unreachable!("agree only fails fatally: {e}"),
            }
        });
        match outcome {
            SyncAttempt::Committed(payload) => {
                if opts.restore_all || !*has_state {
                    let step = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    let ck = Checkpoint {
                        step,
                        bytes: payload[8..].to_vec(),
                    };
                    ck.restore(model, opt);
                    *has_state = true;
                    return Ok(SyncOutcome::Synced(step));
                }
                return Ok(SyncOutcome::Synced(my_step));
            }
            SyncAttempt::Died => return Err(Fatal::Died),
            SyncAttempt::Abort => {
                return match opts.bound {
                    // No state-holder left and nothing to fall back to.
                    SyncBound::Unbounded => Err(Fatal::Aborted),
                    // The agreement that reported it is uniform, so every
                    // survivor gives up here together.
                    _ => Ok(SyncOutcome::GaveUp),
                };
            }
            SyncAttempt::Retry => {
                *recoveries += 1;
                match recover(proc, cfg, comm, u64::MAX, episode, topology) {
                    Ok((c, _)) => *comm = c,
                    Err(f) => return Err(f),
                }
                failed_attempts += 1;
                let give_up = match opts.bound {
                    SyncBound::Unbounded => false,
                    SyncBound::Attempts(n) => failed_attempts >= n,
                    SyncBound::RanksAlive(ranks) => !ranks.iter().any(|r| comm.group().contains(r)),
                };
                if give_up {
                    return Ok(SyncOutcome::GaveUp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainSpec;

    #[test]
    fn global_op_encoding() {
        // T = 4 tensors → 5 ops per step.
        assert_eq!(global_op(0, 4, 0), 0);
        assert_eq!(global_op(0, 4, 4), 4); // barrier of step 0
        assert_eq!(global_op(1, 4, 0), 5);
        assert_eq!(global_op(1, 4, -1), 4); // redo of step 0's barrier
    }

    #[test]
    fn shard_len_tiles() {
        let total: usize = (0..5).map(|r| shard_len(r, 5, 64)).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn policy_inactive_by_default() {
        // The seed configuration must not grow a policy round.
        let cfg = ForwardConfig::new(TrainSpec::default());
        assert!(!cfg.policy_active());
        let mut adaptive = ForwardConfig::new(TrainSpec::default());
        adaptive.policy_mode = PolicyMode::Adaptive;
        assert!(adaptive.policy_active());
        let mut spared = ForwardConfig::new(TrainSpec::default());
        spared.expected_spares = 1;
        assert!(spared.policy_active());
    }
}
