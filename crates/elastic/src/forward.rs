//! Forward recovery over ULFM: the paper's contribution.
//!
//! ## The protocol (paper §3.1–3.2)
//!
//! Each optimizer step issues `T` gradient allreduces (one per trainable
//! tensor) followed by a **commit barrier**, then applies the optimizer.
//! Every operation carries a global id `step·(T+1) + local`. On any
//! failure:
//!
//! 1. **revoke** the communicator (interrupts members blocked in other
//!    operations — they join recovery via their own `Revoked` error);
//! 2. **agree** — a fault-tolerant agreement whose `min` merge yields the
//!    earliest failed operation id across survivors (the *restart point*),
//!    and whose failed-set union identifies the victims;
//! 3. **shrink** with the recovery policy (drop-process or drop-node;
//!    evicted healthy ranks leave with [`WorkerExit::Excluded`]);
//! 4. **redo** operations from the restart point on the shrunk
//!    communicator, *from retained inputs* — each worker still holds the
//!    gradient it contributed, so the re-executed allreduce aggregates the
//!    survivors' contributions. No rollback, no checkpoint.
//!
//! ## Why the restart point is safe
//!
//! The commit barrier gates the optimizer: a worker applies step `S` only
//! after its barrier completes, and barrier completion at *any* worker
//! implies *every* worker entered it (dissemination property) — hence no
//! worker failed inside step `S`'s allreduces. Consequently the agreed
//! restart point can only reach back to the latest uncommitted work: a
//! tensor allreduce of the current step, or the previous step's barrier.
//! Both are idempotent to redo (allreduces are re-fed from saved inputs;
//! the barrier carries no data), so replicas stay bit-identical — which
//! the tests assert via state fingerprints.

use crate::config::{
    policy_evictions, state_fingerprint, RecoveryPolicy, TrainSpec, WorkerExit, WorkerStats,
};
use crate::profiler::{RecoveryBreakdown, RecoveryKind};
use collectives::ReduceOp;
use dnn::Checkpoint;
use transport::RankId;
use ulfm::{Communicator, JoinOutcome, Proc, ShrinkOutcome, UlfmError};

/// Configuration of the forward-recovery engine.
#[derive(Clone, Debug)]
pub struct ForwardConfig {
    /// The shared training workload.
    pub spec: TrainSpec,
    /// Eviction policy on failure.
    pub policy: RecoveryPolicy,
    /// Accept joiners (replacement/upscale) at epoch boundaries.
    pub accept_joiners: bool,
    /// How many joiners this run *expects* over its lifetime. Until that
    /// many have been admitted, workers block at epoch boundaries for
    /// pending announcements — making replacement/upscale admission
    /// deterministic instead of racing training speed against joiner
    /// startup. Zero (the default) never waits.
    pub expected_joiners: usize,
    /// Upper bound on the epoch-boundary wait for expected joiners, and on
    /// a joiner's own wait for its admission ticket. `None` (the default)
    /// waits forever — correct in-process, where every expected joiner is a
    /// thread that provably starts. Multi-process launches set a bound so a
    /// crashed joiner degrades the group to running shrunk instead of
    /// stalling it; the give-up decision travels inside the committed join
    /// proposal, so members never diverge on local clocks.
    pub join_wait: Option<std::time::Duration>,
    /// Rescale redone gradients by the lost contribution fraction so the
    /// degraded step keeps the same expected gradient magnitude.
    pub renormalize_after_loss: bool,
    /// Optional Goyal-style learning-rate re-scaling on membership change:
    /// after a shrink or join, ramp the rate to
    /// `spec.lr × world / base_world` over `warmup_steps` (paper §5's
    /// convergence techniques [16][22], applied elastically).
    pub lr_scaling: Option<LrScaling>,
}

/// Elastic learning-rate policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LrScaling {
    /// World size at which `spec.lr` is the reference rate.
    pub base_world: usize,
    /// Ramp length after each membership change.
    pub warmup_steps: u64,
}

impl ForwardConfig {
    /// Defaults: drop-process policy, joins enabled, no renormalization.
    pub fn new(spec: TrainSpec) -> Self {
        Self {
            spec,
            policy: RecoveryPolicy::DropProcess,
            accept_joiners: true,
            expected_joiners: 0,
            join_wait: None,
            renormalize_after_loss: false,
            lr_scaling: None,
        }
    }
}

/// Outcome plus per-episode breakdowns (for the figure benches).
pub struct ForwardOutcome {
    /// How the worker ended.
    pub exit: WorkerExit,
    /// Recovery/join episodes recorded at this worker.
    pub breakdowns: Vec<RecoveryBreakdown>,
}

/// Internal: terminal conditions that abort the worker loop.
enum Fatal {
    Died,
    Excluded,
    /// The surviving world shrank below `TrainSpec::min_workers`.
    Aborted,
}

/// Run one worker under forward recovery. `is_joiner` workers attach to a
/// running group via the join service instead of the initial communicator.
pub fn run_forward_worker(proc: &Proc, cfg: &ForwardConfig, is_joiner: bool) -> ForwardOutcome {
    let mut breakdowns = Vec::new();
    let exit = run_inner(proc, cfg, is_joiner, &mut breakdowns);
    ForwardOutcome { exit, breakdowns }
}

fn run_inner(
    proc: &Proc,
    cfg: &ForwardConfig,
    is_joiner: bool,
    breakdowns: &mut Vec<RecoveryBreakdown>,
) -> WorkerExit {
    let spec = &cfg.spec;
    let mut model = spec.build_model();
    let mut opt = spec.build_optimizer();
    let ds = spec.build_dataset();
    let topology = proc.endpoint().topology();
    let mut recoveries = 0usize;
    let mut last_loss = f32::NAN;

    // --- membership -----------------------------------------------------
    let mut comm = if is_joiner {
        match proc.join_training_deadline(cfg.join_wait) {
            Ok(c) => c,
            Err(UlfmError::SelfDied) => return WorkerExit::Died,
            Err(UlfmError::Aborted) => {
                // The run shut down before this joiner was admitted.
                return abort_exit(proc, 0, f32::NAN, 0, 0, &model, &opt, breakdowns);
            }
            Err(UlfmError::JoinTimeout) => {
                // Orphaned joiner: the group completed, degraded to running
                // shrunk, or partitioned away without ever ticketing us.
                // Leave quietly — crucially *without* abort_joins, which
                // would dismiss other still-viable joiners.
                telemetry::counter("elastic.join.ticket_timeouts").incr();
                proc.retire();
                return WorkerExit::Aborted(WorkerStats {
                    steps_done: 0,
                    final_loss: f32::NAN,
                    recoveries: 0,
                    final_world: 0,
                    state_fingerprint: state_fingerprint(&model.state_flat()),
                    final_lr: f32::NAN,
                    steps_recomputed: 0,
                });
            }
            Err(e) => unreachable!("join_training failed unexpectedly: {e}"),
        }
    } else {
        proc.init_comm()
    };
    let mut step: u64 = if is_joiner {
        // Receive (state, step) from the group; the paper's "reinitializing
        // the training state for the new workers". The sync survives sender
        // deaths: it retries on the recovered group until a state-holder
        // commits the broadcast (or none survives and the run aborts).
        let mut episode = RecoveryBreakdown::new(RecoveryKind::Join, 0);
        let mut has_state = false;
        let s = checkpoint_sync(
            proc,
            cfg,
            &mut comm,
            &mut model,
            &mut opt,
            &mut has_state,
            0,
            &mut episode,
            topology,
            &mut recoveries,
        );
        episode.publish(proc.rank().0);
        breakdowns.push(episode);
        match s {
            Ok(step) => step,
            Err(Fatal::Died) => return WorkerExit::Died,
            Err(Fatal::Excluded) => return exclude_exit(proc, 0, f32::NAN, recoveries, 0, &model),
            Err(Fatal::Aborted) => {
                return abort_exit(proc, 0, f32::NAN, recoveries, 0, &model, &opt, breakdowns)
            }
        }
    } else {
        0
    };

    // Fusion schedule (if enabled): gradients pack into buckets in ready
    // order and each bucket allreduces as one resilient collective. The
    // per-step op sequence becomes `n_ops` bucket allreduces + the commit
    // barrier, instead of one allreduce per tensor + barrier; op ids and
    // the restart-point protocol are otherwise identical.
    let fusion = spec
        .fusion
        .map(|cap| crate::fusion::FusionSetup::new(&model, cap));
    let n_ops: i64 = fusion
        .as_ref()
        .map_or(model.num_tensors() as i64, |f| f.n_buckets() as i64);
    // World size the LR schedule is currently anchored to.
    let mut lr_world = comm.size();
    if let Some(policy) = cfg.lr_scaling {
        let target = spec.lr * lr_world as f32 / policy.base_world as f32;
        opt.set_schedule(dnn::LrSchedule::PiecewiseRamp {
            from: spec.lr,
            to: target,
            start: step,
            ramp: policy.warmup_steps,
        });
    }

    while (step as usize) < spec.total_steps {
        telemetry::counter("elastic.forward.steps").incr();
        let _step_span = telemetry::span("elastic.forward.step_ns");
        let recoveries_before = recoveries;
        // The step body may be re-attempted from scratch: if this worker had
        // raced ahead into step S+1 when a failure struck step S's commit
        // barrier, it redoes that barrier and then *recomputes* its S+1
        // gradients with the post-recovery membership (its pre-failure
        // shard was cut for the old world).
        let grads = 'attempt: loop {
            // --- local gradient computation -------------------------------
            let world = comm.size();
            let my_rank = comm.rank();
            let shard = ds.shard(step as usize, spec.global_batch, my_rank, world);
            let shard_weight = shard.labels.len() as f32 / spec.global_batch as f32;
            model.zero_grads();

            // Ops already completed by the eager (ready-queue) launch path,
            // and the first error it encountered, if any.
            let mut done: Vec<bool> = vec![false; n_ops as usize];
            let mut pending_err: Option<(usize, UlfmError)> = None;

            // Weighted gradients: allreduce(SUM) of per-shard means ×
            // weights equals the global-batch mean. `op_bufs` are the
            // collective payloads — fused buckets (ready order) or
            // per-tensor gradients (declaration order); `saved` holds the
            // retained inputs of §3.2 — what makes forward recovery work.
            let (report, mut op_bufs, saved) = if let Some(fs) = &fusion {
                let mut bufs = fs.bucket_buffers();
                let mut saved: Vec<Vec<f32>> = vec![Vec::new(); fs.n_buckets()];
                let mut filled = vec![0usize; fs.n_buckets()];
                let mut fill_start: Vec<Option<std::time::Instant>> = vec![None; fs.n_buckets()];
                let report = model.compute_gradients_with(&shard, |idx, g| {
                    let (b, off, len) = fs.slot(idx);
                    if fill_start[b].is_none() {
                        fill_start[b] = Some(std::time::Instant::now());
                    }
                    for (d, s) in bufs[b][off..off + len].iter_mut().zip(g.data()) {
                        *d = s * shard_weight;
                    }
                    filled[b] += 1;
                    if filled[b] < fs.bucket_tensors(b) {
                        return;
                    }
                    // Bucket filled: save its input, then launch the fused
                    // allreduce immediately — later layers are still
                    // differentiating (the ready-queue overlap).
                    if let Some(t0) = fill_start[b].take() {
                        telemetry::histogram("elastic.fusion.fill_latency_ns")
                            .record(t0.elapsed().as_nanos() as u64);
                    }
                    collectives::observe_bucket(
                        bufs[b].len() * std::mem::size_of::<f32>(),
                        fs.bucket_tensors(b),
                    );
                    saved[b] = bufs[b].clone();
                    if pending_err.is_none() {
                        match comm.allreduce(&mut bufs[b], ReduceOp::Sum, spec.algo) {
                            Ok(()) => done[b] = true,
                            // Stop launching; the op loop below drives the
                            // recovery from this recorded error.
                            Err(e) => pending_err = Some((b, e)),
                        }
                    }
                });
                (report, bufs, saved)
            } else {
                let report = model.compute_gradients(&shard);
                let grads: Vec<Vec<f32>> = model
                    .grads()
                    .iter()
                    .map(|g| g.data().iter().map(|v| v * shard_weight).collect())
                    .collect();
                let saved = grads.clone();
                (report, grads, saved)
            };
            last_loss = report.loss;
            let step_group: Vec<RankId> = comm.group().to_vec();

            // --- resilient collective phase -------------------------------
            // local_op ∈ [0, n_ops]: gradient allreduces (per bucket or per
            // tensor), then the commit barrier. Ops the eager path already
            // completed are skipped; its recorded error surfaces at the op
            // it struck, feeding the same recovery protocol.
            let mut local_op: i64 = 0;
            let mut redo_from: Option<usize> = None;
            while local_op <= n_ops {
                let lo = local_op as usize;
                let result = if local_op < n_ops && done[lo] {
                    Ok(())
                } else if pending_err.as_ref().is_some_and(|(b, _)| *b == lo) {
                    Err(pending_err.take().expect("just checked").1)
                } else if local_op == n_ops {
                    comm.barrier()
                } else {
                    comm.allreduce(&mut op_bufs[lo], ReduceOp::Sum, spec.algo)
                };
                match result {
                    Ok(()) => local_op += 1,
                    Err(UlfmError::SelfDied) => return WorkerExit::Died,
                    Err(UlfmError::Excluded) => unreachable!("collectives never exclude"),
                    Err(_) => {
                        recoveries += 1;
                        let my_global = global_op(step, n_ops, local_op);
                        let mut episode = RecoveryBreakdown::new(RecoveryKind::Forward, step);
                        let recovered =
                            recover(proc, cfg, &comm, my_global, &mut episode, topology);
                        episode.publish(proc.rank().0);
                        breakdowns.push(breakdowns_last_fix(&mut episode));
                        match recovered {
                            Ok((new_comm, restart)) => {
                                comm = new_comm;
                                let first_of_step = global_op(step, n_ops, 0);
                                if restart >= first_of_step {
                                    // Restart within this step: restore the
                                    // retained inputs and redo from there.
                                    // Ops the eager path completed on the
                                    // old communicator are redone too —
                                    // their `done` marks are void.
                                    let rlocal = (restart - first_of_step) as usize;
                                    assert!(rlocal as i64 <= n_ops);
                                    for (i, s) in saved.iter().enumerate().skip(rlocal) {
                                        op_bufs[i].copy_from_slice(s);
                                    }
                                    for d in done.iter_mut().skip(rlocal) {
                                        *d = false;
                                    }
                                    pending_err = None;
                                    redo_from = Some(redo_from.map_or(rlocal, |r| r.min(rlocal)));
                                    local_op = rlocal as i64;
                                } else {
                                    // This worker raced ahead: the agreed
                                    // restart is the previous step's commit
                                    // barrier. Redo it (with nested recovery)
                                    // and recompute this step from scratch.
                                    assert_eq!(
                                        restart,
                                        first_of_step - 1,
                                        "restart cannot reach into committed work"
                                    );
                                    loop {
                                        match comm.barrier() {
                                            Ok(()) => break,
                                            Err(UlfmError::SelfDied) => return WorkerExit::Died,
                                            Err(_) => {
                                                recoveries += 1;
                                                let mut ep = RecoveryBreakdown::new(
                                                    RecoveryKind::Forward,
                                                    step,
                                                );
                                                let r = recover(
                                                    proc, cfg, &comm, restart, &mut ep, topology,
                                                );
                                                ep.publish(proc.rank().0);
                                                breakdowns.push(breakdowns_last_fix(&mut ep));
                                                match r {
                                                    Ok((c, r2)) => {
                                                        assert_eq!(
                                                            r2, restart,
                                                            "nested restart must stay at the \
                                                             redone barrier"
                                                        );
                                                        comm = c;
                                                    }
                                                    Err(Fatal::Died) => return WorkerExit::Died,
                                                    Err(Fatal::Excluded) => {
                                                        return exclude_exit(
                                                            proc, step, last_loss, recoveries,
                                                            world, &model,
                                                        )
                                                    }
                                                    Err(Fatal::Aborted) => {
                                                        return abort_exit(
                                                            proc, step, last_loss, recoveries,
                                                            world, &model, &opt, breakdowns,
                                                        )
                                                    }
                                                }
                                            }
                                        }
                                    }
                                    continue 'attempt;
                                }
                            }
                            Err(Fatal::Died) => return WorkerExit::Died,
                            Err(Fatal::Excluded) => {
                                return exclude_exit(
                                    proc, step, last_loss, recoveries, world, &model,
                                )
                            }
                            Err(Fatal::Aborted) => {
                                return abort_exit(
                                    proc, step, last_loss, recoveries, world, &model, &opt,
                                    breakdowns,
                                )
                            }
                        }
                    }
                }
            }

            // Degraded-step renormalization: contributions of evicted
            // workers are gone from redone tensors; optionally scale back
            // up. The factor derives from the step's original sharding, so
            // every survivor applies the identical scale.
            if let (Some(rfrom), true) = (redo_from, cfg.renormalize_after_loss) {
                let surviving: f32 = comm
                    .group()
                    .iter()
                    .map(|g| {
                        step_group
                            .iter()
                            .position(|&x| x == *g)
                            .map(|idx| shard_len(idx, step_group.len(), spec.global_batch))
                            .unwrap_or(0) as f32
                    })
                    .sum::<f32>()
                    / spec.global_batch as f32;
                if surviving > 0.0 && surviving < 1.0 {
                    let scale = 1.0 / surviving;
                    let from = rfrom.min(op_bufs.len());
                    for g in op_bufs.iter_mut().skip(from) {
                        for v in g.iter_mut() {
                            *v *= scale;
                        }
                    }
                }
            }
            // Fused buckets scatter back to declaration-order tensors; the
            // unfused payloads already are the per-tensor gradients.
            break 'attempt match &fusion {
                Some(fs) => fs.unpack(&op_bufs),
                None => op_bufs,
            };
        };

        // --- committed: apply the update ---------------------------------
        let cascade = (recoveries - recoveries_before) as u64;
        if cascade > 0 {
            telemetry::histogram("elastic.recovery.cascade_depth").record(cascade);
        }
        model.set_grads(&grads);
        if let Some(policy) = cfg.lr_scaling {
            // Re-anchor the rate whenever the world changed this step.
            let world = comm.size();
            if world != lr_world {
                let target = spec.lr * world as f32 / policy.base_world as f32;
                opt.set_schedule(dnn::LrSchedule::PiecewiseRamp {
                    from: opt.current_lr(),
                    to: target,
                    start: step,
                    ramp: policy.warmup_steps,
                });
                lr_world = world;
            }
        }
        opt.step(&mut model.params_mut());
        step += 1;

        // --- epoch boundary: accept joiners (scenarios II & III) ---------
        if cfg.accept_joiners && (step as usize).is_multiple_of(spec.steps_per_epoch) {
            // Scenario II/III determinism: no epoch boundary passes until
            // every expected joiner has announced itself. The counter is
            // monotone and global, so all members unblock on the same
            // condition regardless of who drains the pending list when.
            // `join_wait` bounds the stall: past the deadline the group
            // gives up and continues shrunk rather than waiting on a joiner
            // that crashed before announcing.
            let wait_deadline = cfg.join_wait.map(|w| std::time::Instant::now() + w);
            while proc.announced_joiners() < cfg.expected_joiners as u64
                && wait_deadline.is_none_or(|d| std::time::Instant::now() < d)
            {
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            // The admission itself is re-entrant: a death mid-handshake
            // (leader included) fails the commit uniformly, the survivors
            // shrink, and the shrunk group's new rank 0 re-proposes the
            // still-pending joiners. The give-up hint below is only the
            // *leader's* input — the decision every member acts on rides in
            // the committed proposal, so deadline clocks cannot diverge the
            // SPMD control flow.
            loop {
                let arrived = proc.announced_joiners() >= cfg.expected_joiners as u64;
                let expired = wait_deadline.is_some_and(|d| std::time::Instant::now() >= d);
                match comm.accept_joiners_directed(arrived || expired) {
                    Ok(JoinOutcome::Merged(mut merged)) => {
                        let mut episode = RecoveryBreakdown::new(RecoveryKind::Join, step);
                        let mut has_state = true;
                        let res = checkpoint_sync(
                            proc,
                            cfg,
                            &mut merged,
                            &mut model,
                            &mut opt,
                            &mut has_state,
                            step,
                            &mut episode,
                            topology,
                            &mut recoveries,
                        );
                        episode.publish(proc.rank().0);
                        breakdowns.push(episode);
                        match res {
                            Ok(_) => {
                                comm = merged;
                                break;
                            }
                            Err(Fatal::Died) => return WorkerExit::Died,
                            Err(Fatal::Excluded) => {
                                return exclude_exit(
                                    proc, step, last_loss, recoveries, lr_world, &model,
                                )
                            }
                            Err(Fatal::Aborted) => {
                                return abort_exit(
                                    proc, step, last_loss, recoveries, lr_world, &model, &opt,
                                    breakdowns,
                                )
                            }
                        }
                    }
                    Ok(JoinOutcome::NoneYet) => {
                        // Leader asked the group to keep waiting: nobody had
                        // announced when it proposed. Poll again shortly.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Ok(JoinOutcome::StopWaiting) => {
                        if expired && !arrived {
                            // Degradation to a shrunk-but-progressing group:
                            // the expected joiner never came and the leader
                            // committed giving up on it.
                            telemetry::counter("elastic.join.wait_timeouts").incr();
                        }
                        break;
                    }
                    Err(UlfmError::SelfDied) => return WorkerExit::Died,
                    Err(_) => {
                        // Failed admission commit (or a death observed on
                        // entry): recover on the *old* communicator — the
                        // pending joiners stayed pending — and retry.
                        recoveries += 1;
                        let mut episode = RecoveryBreakdown::new(RecoveryKind::Forward, step);
                        let r = recover(proc, cfg, &comm, u64::MAX, &mut episode, topology);
                        episode.publish(proc.rank().0);
                        breakdowns.push(breakdowns_last_fix(&mut episode));
                        match r {
                            Ok((c, _)) => comm = c,
                            Err(Fatal::Died) => return WorkerExit::Died,
                            Err(Fatal::Excluded) => {
                                return exclude_exit(
                                    proc, step, last_loss, recoveries, lr_world, &model,
                                )
                            }
                            Err(Fatal::Aborted) => {
                                return abort_exit(
                                    proc, step, last_loss, recoveries, lr_world, &model, &opt,
                                    breakdowns,
                                )
                            }
                        }
                    }
                }
            }
        }
    }

    // Leaving the computation cleanly: mark ourselves gone so that any
    // concurrent recovery among slower workers does not wait for us.
    let stats = WorkerStats {
        steps_done: step,
        final_loss: last_loss,
        recoveries,
        final_world: comm.size(),
        state_fingerprint: state_fingerprint(&model.state_flat()),
        final_lr: opt.current_lr(),
        steps_recomputed: 0,
    };
    proc.retire();
    WorkerExit::Completed(stats)
}

/// Work around borrowck: move the episode out (it was filled in-place).
fn breakdowns_last_fix(episode: &mut RecoveryBreakdown) -> RecoveryBreakdown {
    std::mem::replace(episode, RecoveryBreakdown::new(RecoveryKind::Forward, 0))
}

/// Exit path for a worker evicted by the drop-node policy.
fn exclude_exit(
    proc: &Proc,
    step: u64,
    last_loss: f32,
    recoveries: usize,
    world: usize,
    model: &dnn::Model,
) -> WorkerExit {
    proc.retire();
    WorkerExit::Excluded(WorkerStats {
        steps_done: step,
        final_loss: last_loss,
        recoveries,
        final_world: world,
        state_fingerprint: state_fingerprint(&model.state_flat()),
        final_lr: f32::NAN,
        steps_recomputed: 0,
    })
}

/// Exit path for a graceful below-minimum shutdown: release waiting
/// joiners, record the abort episode, and leave with the progress so far.
#[allow(clippy::too_many_arguments)]
fn abort_exit(
    proc: &Proc,
    step: u64,
    last_loss: f32,
    recoveries: usize,
    world: usize,
    model: &dnn::Model,
    opt: &dnn::Sgd,
    breakdowns: &mut Vec<RecoveryBreakdown>,
) -> WorkerExit {
    telemetry::counter("elastic.abort.below_min").incr();
    let mut episode = RecoveryBreakdown::new(RecoveryKind::Abort, step);
    episode.time("below_min", || {
        // Joiners still blocked on the ticket service would otherwise wait
        // for a computation that no longer exists; dismiss them, then leave
        // so concurrent recoveries observe the departure instead of
        // hanging on our silence.
        proc.abort_joins();
        proc.retire();
    });
    episode.publish(proc.rank().0);
    breakdowns.push(episode);
    WorkerExit::Aborted(WorkerStats {
        steps_done: step,
        final_loss: last_loss,
        recoveries,
        final_world: world,
        state_fingerprint: state_fingerprint(&model.state_flat()),
        final_lr: opt.current_lr(),
        steps_recomputed: 0,
    })
}

fn global_op(step: u64, n_tensors: i64, local_op: i64) -> u64 {
    (step as i64 * (n_tensors + 1) + local_op) as u64
}

fn shard_len(rank: usize, world: usize, global: usize) -> usize {
    (rank + 1) * global / world - rank * global / world
}

/// One recovery episode: revoke → agree(min) → shrink(policy), then the
/// `min_workers` floor check — a group that shrank below the floor aborts
/// uniformly (every survivor of the same shrink sees the same size).
fn recover(
    proc: &Proc,
    cfg: &ForwardConfig,
    comm: &Communicator,
    my_global_op: u64,
    episode: &mut RecoveryBreakdown,
    topology: transport::Topology,
) -> Result<(Communicator, u64), Fatal> {
    telemetry::counter("elastic.recovery.attempts").incr();
    episode.time("revoke", || comm.revoke());

    let agreed = episode.time("agree", || comm.agree(u64::MAX, my_global_op));
    let agreed = match agreed {
        Ok(a) => a,
        Err(UlfmError::SelfDied) => return Err(Fatal::Died),
        Err(e) => unreachable!("agree only fails fatally: {e}"),
    };

    let total_ranks = proc.endpoint().total_ranks();
    let policy = cfg.policy;
    let shrunk = episode.time("shrink", || {
        comm.shrink_with(|failed| policy_evictions(policy, failed, topology, total_ranks))
    });
    match shrunk {
        Ok(ShrinkOutcome::Member(c)) => {
            if c.size() < cfg.spec.min_workers {
                return Err(Fatal::Aborted);
            }
            Ok((c, agreed.min))
        }
        Ok(ShrinkOutcome::Excluded) => Err(Fatal::Excluded),
        Err(UlfmError::SelfDied) => Err(Fatal::Died),
        Err(e) => unreachable!("shrink only fails fatally: {e}"),
    }
}

/// Outcome of one checkpoint-broadcast attempt.
enum SyncAttempt {
    /// The commit agreement accepted the broadcast; payload as delivered.
    Committed(Vec<u8>),
    /// A failure broke the attempt; recover and retry.
    Retry,
    /// No surviving member holds trained state.
    Abort,
    /// This rank died.
    Died,
}

/// Resilient (step ‖ checkpoint) synchronization, shared by the joiner
/// bootstrap and the epoch-boundary admission. Group rank 0 broadcasts its
/// state, then a uniform commit agreement decides whether every member got
/// it; on failure the group recovers (revoke → agree → shrink → floor
/// check) and retries with the shrunk group's rank 0 as the new sender.
///
/// The sender is always a state-holder while one survives: state-holders
/// form a prefix of the merged group (members before joiners, and shrink
/// preserves relative order), so rank 0 lacking state means *no* original
/// member survives — which the commit agreement reports uniformly and
/// every participant aborts instead of restoring garbage.
#[allow(clippy::too_many_arguments)]
fn checkpoint_sync(
    proc: &Proc,
    cfg: &ForwardConfig,
    comm: &mut Communicator,
    model: &mut dnn::Model,
    opt: &mut dnn::Sgd,
    has_state: &mut bool,
    my_step: u64,
    episode: &mut RecoveryBreakdown,
    topology: transport::Topology,
    recoveries: &mut usize,
) -> Result<u64, Fatal> {
    let mut attempt = 0u64;
    loop {
        if attempt > 0 {
            telemetry::counter("elastic.ckpt_sync.retries").incr();
        }
        attempt += 1;
        // Named fault point: scripts can kill the sender (or any receiver)
        // between checkpoint-broadcast attempts.
        if comm.endpoint().fault_point("ckpt.sync").is_err() {
            return Err(Fatal::Died);
        }
        let outcome = episode.time("state_sync", || {
            let root = comm.rank() == 0;
            let mut payload = if root && *has_state {
                let ck = Checkpoint::capture(model, opt);
                let mut bytes = my_step.to_le_bytes().to_vec();
                bytes.extend_from_slice(&ck.bytes);
                bytes
            } else {
                Vec::new()
            };
            // A failed broadcast unwinds reliably (the binomial tree
            // forwards poison frames), so every member reaches the commit
            // agreement without any comm-wide revocation.
            let sent = comm.bcast(0, &mut payload);
            if matches!(sent, Err(UlfmError::SelfDied)) {
                return SyncAttempt::Died;
            }
            // Commit flags: bit0 = my broadcast completed; bit1 = the root
            // holds trained state (non-roots contribute 1 so the AND
            // isolates the root's claim).
            let flags = (sent.is_ok() as u64) | if root { (*has_state as u64) << 1 } else { 0b10 };
            match comm.agree(flags, u64::MAX) {
                Ok(v) if v.flags & 0b10 == 0 => SyncAttempt::Abort,
                Ok(v) if v.flags & 1 == 1 && v.failed.is_empty() => SyncAttempt::Committed(payload),
                Ok(_) => SyncAttempt::Retry,
                Err(UlfmError::SelfDied) => SyncAttempt::Died,
                Err(e) => unreachable!("agree only fails fatally: {e}"),
            }
        });
        match outcome {
            SyncAttempt::Committed(payload) => {
                if !*has_state {
                    let step = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    let ck = Checkpoint {
                        step,
                        bytes: payload[8..].to_vec(),
                    };
                    ck.restore(model, opt);
                    *has_state = true;
                    return Ok(step);
                }
                return Ok(my_step);
            }
            SyncAttempt::Died => return Err(Fatal::Died),
            SyncAttempt::Abort => return Err(Fatal::Aborted),
            SyncAttempt::Retry => {
                *recoveries += 1;
                match recover(proc, cfg, comm, u64::MAX, episode, topology) {
                    Ok((c, _)) => *comm = c,
                    Err(f) => return Err(f),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_op_encoding() {
        // T = 4 tensors → 5 ops per step.
        assert_eq!(global_op(0, 4, 0), 0);
        assert_eq!(global_op(0, 4, 4), 4); // barrier of step 0
        assert_eq!(global_op(1, 4, 0), 5);
        assert_eq!(global_op(1, 4, -1), 4); // redo of step 0's barrier
    }

    #[test]
    fn shard_len_tiles() {
        let total: usize = (0..5).map(|r| shard_len(r, 5, 64)).sum();
        assert_eq!(total, 64);
    }
}
