//! Shared configuration and outcome types for both engines.

use collectives::AllreduceAlgo;
use transport::RankId;

/// What to evict when a worker fails (paper §3.1: "we offer users a runtime
/// command line flag that allows them to choose whether to drop a single
/// process or the entire node").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryPolicy {
    /// Evict only the failed process(es). ULFM-only capability in the
    /// paper's Table 2.
    DropProcess,
    /// Evict every process on a node that hosts a failure (Elastic
    /// Horovod's behaviour; also supported by the ULFM path).
    DropNode,
}

/// The training workload both engines run: a small MLP on the synthetic
/// dataset. Identical across all workers (deterministic seeds).
#[derive(Clone, Debug)]
pub struct TrainSpec {
    /// Input feature dimension.
    pub features: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Model/init/data seed.
    pub seed: u64,
    /// Global mini-batch size (sharded over current workers).
    pub global_batch: usize,
    /// Steps per epoch (joins happen at epoch boundaries).
    pub steps_per_epoch: usize,
    /// Total optimizer steps to run.
    pub total_steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Allreduce algorithm for gradient aggregation.
    pub algo: AllreduceAlgo,
    /// Tensor-fusion byte cap: `Some(cap)` packs gradients into fused
    /// buckets of at most `cap` bytes (Horovod's fusion threshold) and
    /// allreduces each bucket as one collective, launched as soon as the
    /// bucket fills during the backward pass. `None` (the default)
    /// allreduces each tensor individually after the full backward pass —
    /// the pre-fusion protocol.
    pub fusion: Option<usize>,
    /// Minimum world size the run tolerates. When a failure cascade shrinks
    /// the surviving group below this floor, every survivor aborts cleanly
    /// ([`WorkerExit::Aborted`]) instead of training on a degenerate group
    /// (Elastic Horovod's `--min-np`). The default of 1 never aborts —
    /// training continues down to a single worker, the seed behaviour.
    pub min_workers: usize,
    /// Hierarchical (topology-aware) routing for gradient allreduces. Both
    /// engines keep a per-epoch node map — rebuilt after every
    /// shrink/join/promotion — and consult this mode per bucket.
    pub hier: HierMode,
    /// Which uniform-agreement protocol recovery uses to decide the failed
    /// set: the seed flood-set ([`ulfm::AgreeImpl::Flood`], p rounds,
    /// conformance oracle) or the incremental lattice-agreement fast path
    /// ([`ulfm::AgreeImpl::Lattice`], constant rounds failure-free,
    /// mid-protocol deaths absorbed by widening). The engines install this
    /// on every communicator they acquire — initial, joined, shrunk, or
    /// promoted.
    pub agree: ulfm::AgreeImpl,
}

/// How gradient buckets choose between the flat and the hierarchical
/// (intra-node reduce → leader exchange → intra-node bcast) allreduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierMode {
    /// Always flat collectives (the seed behaviour).
    Off,
    /// Per-bucket selection by the two-tier α–β model
    /// ([`crate::cost_model::HierModel`]): hierarchical exactly when the
    /// model predicts a win for this bucket size on this topology. The
    /// decision is a pure function of (bucket bytes, world, node shape),
    /// so every SPMD rank picks the same route without communicating.
    Auto,
    /// Always hierarchical whenever the topology has a multi-rank node
    /// (benchmarks and fault-injection tests that must exercise the
    /// hierarchical path regardless of scale).
    Force,
}

impl HierMode {
    /// Route one bucket: should it take the hierarchical path? `nodes` and
    /// `local` describe the current communicator epoch's node map
    /// (`n_nodes`, `max_node_size`).
    pub fn use_hier(
        self,
        model: &crate::cost_model::HierModel,
        n_bytes: usize,
        p: usize,
        nodes: usize,
        local: usize,
    ) -> bool {
        match self {
            HierMode::Off => false,
            // A hierarchy over one-rank nodes (or a single node spanning
            // the world is fine — it degenerates to a local reduce+bcast)
            // buys nothing when every node is a singleton.
            HierMode::Force => local > 1 && nodes < p,
            HierMode::Auto => model.use_hier(n_bytes as f64, p, nodes, local),
        }
    }
}

impl Default for TrainSpec {
    fn default() -> Self {
        Self {
            features: 16,
            hidden: vec![32],
            classes: 4,
            seed: 42,
            global_batch: 64,
            steps_per_epoch: 4,
            total_steps: 12,
            lr: 0.05,
            momentum: 0.9,
            algo: AllreduceAlgo::Ring,
            fusion: None,
            min_workers: 1,
            hier: HierMode::Off,
            agree: ulfm::AgreeImpl::Flood,
        }
    }
}

impl TrainSpec {
    /// Build the (deterministic, replica-identical) model for this spec.
    pub fn build_model(&self) -> dnn::Model {
        dnn::Model::mlp(self.features, &self.hidden, self.classes, self.seed)
    }

    /// Build the optimizer.
    pub fn build_optimizer(&self) -> dnn::Sgd {
        dnn::Sgd::new(self.lr, self.momentum)
    }

    /// Build the dataset.
    pub fn build_dataset(&self) -> dnn::SyntheticDataset {
        dnn::SyntheticDataset::new(self.features, self.classes, self.seed ^ 0x5EED)
    }
}

/// Per-worker statistics accumulated over a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Optimizer steps this worker participated in.
    pub steps_done: u64,
    /// Loss at the last step this worker saw.
    pub final_loss: f32,
    /// Recovery episodes this worker went through.
    pub recoveries: usize,
    /// World size when the worker finished (or left).
    pub final_world: usize,
    /// Flattened model state hash for cross-worker consistency checks.
    pub state_fingerprint: u64,
    /// Learning rate in effect when the worker finished (elastic LR
    /// scaling makes this world-size dependent).
    pub final_lr: f32,
    /// Optimizer steps this worker re-executed because of checkpoint
    /// rollbacks. Always 0 under pure forward recovery — that is the
    /// point; nonzero only when the policy layer commits a rollback arm
    /// (or a promotion rewinds a raced-ahead worker by one apply).
    pub steps_recomputed: u64,
}

/// How a worker's run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerExit {
    /// Trained to `total_steps`.
    Completed(WorkerStats),
    /// Killed by the fault plan / driver.
    Died,
    /// Evicted by the recovery policy (healthy rank on a failed node).
    Excluded(WorkerStats),
    /// The run shut down because a failure cascade shrank the world below
    /// [`TrainSpec::min_workers`]; this worker exited cleanly with its
    /// progress so far.
    Aborted(WorkerStats),
}

impl WorkerExit {
    /// Stats if the worker finished, was excluded, or aborted.
    pub fn stats(&self) -> Option<&WorkerStats> {
        match self {
            WorkerExit::Completed(s) | WorkerExit::Excluded(s) | WorkerExit::Aborted(s) => Some(s),
            WorkerExit::Died => None,
        }
    }

    /// Did this worker train to the end?
    pub fn completed(&self) -> bool {
        matches!(self, WorkerExit::Completed(_))
    }
}

/// FNV-1a over the model's flattened f32 state: a cheap fingerprint used to
/// assert that all replicas hold bit-identical parameters.
pub fn state_fingerprint(flat: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in flat {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Compute the additional ranks to evict for a policy, given the failed set.
/// Deterministic: every survivor computes the same eviction list locally.
pub fn policy_evictions(
    policy: RecoveryPolicy,
    failed: &[RankId],
    topology: transport::Topology,
    total_ranks: usize,
) -> Vec<RankId> {
    match policy {
        RecoveryPolicy::DropProcess => Vec::new(),
        RecoveryPolicy::DropNode => {
            let mut evicted = Vec::new();
            for &f in failed {
                evicted.extend(topology.node_peers(f, total_ranks));
            }
            evicted.sort_unstable();
            evicted.dedup();
            evicted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transport::Topology;

    #[test]
    fn fingerprint_detects_divergence() {
        let a = state_fingerprint(&[1.0, 2.0, 3.0]);
        let b = state_fingerprint(&[1.0, 2.0, 3.0]);
        let c = state_fingerprint(&[1.0, 2.0, 3.001]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn drop_process_evicts_nothing_extra() {
        let e = policy_evictions(
            RecoveryPolicy::DropProcess,
            &[RankId(4)],
            Topology::new(3),
            9,
        );
        assert!(e.is_empty());
    }

    #[test]
    fn drop_node_evicts_whole_node() {
        let e = policy_evictions(RecoveryPolicy::DropNode, &[RankId(4)], Topology::new(3), 9);
        assert_eq!(e, vec![RankId(3), RankId(4), RankId(5)]);
    }

    #[test]
    fn drop_node_dedups_across_failures() {
        let e = policy_evictions(
            RecoveryPolicy::DropNode,
            &[RankId(3), RankId(5)],
            Topology::new(3),
            9,
        );
        assert_eq!(e, vec![RankId(3), RankId(4), RankId(5)]);
    }

    #[test]
    fn spec_builders_are_deterministic() {
        let spec = TrainSpec::default();
        let a = spec.build_model().state_flat();
        let b = spec.build_model().state_flat();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_exit_accessors() {
        let s = WorkerStats::default();
        assert!(WorkerExit::Completed(s.clone()).completed());
        assert!(!WorkerExit::Died.completed());
        assert!(WorkerExit::Died.stats().is_none());
        assert!(WorkerExit::Excluded(s.clone()).stats().is_some());
        assert!(!WorkerExit::Aborted(s.clone()).completed());
        assert!(WorkerExit::Aborted(s).stats().is_some());
    }

    #[test]
    fn default_min_workers_never_aborts() {
        // The seed behaviour: a default spec tolerates shrinking to one.
        assert_eq!(TrainSpec::default().min_workers, 1);
    }
}
