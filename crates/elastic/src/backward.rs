//! Backward recovery: the Elastic-Horovod-style baseline.
//!
//! Reproduces the recovery pipeline the paper profiles in Fig. 4 (left),
//! phase by phase:
//!
//! 1. **catch exception** — a Gloo collective raises on a dead peer, or a
//!    receive times out (Gloo has no failure detector; silence *is* the
//!    signal);
//! 2. **shutdown** — the context is poisoned; the worker abandons the
//!    configuration and reports to the elastic driver;
//! 3. **re-init elastic mode** — the driver blacklists the failed node (or
//!    just the process — included for symmetric comparison, even though
//!    real Elastic Horovod only supports node granularity, cf. Table 2),
//!    bumps the configuration epoch, and publishes the new member list;
//! 4. **rendezvous** — all members run the global + node-local KV-store
//!    rendezvous for the new epoch;
//! 5. **reinit Gloo** — a fresh full-mesh context;
//! 6. **load checkpoint + recompute** — training state rolls back to the
//!    last per-batch in-memory checkpoint and the lost steps are redone.
//!
//! New workers (replacement/upscale) register with the driver, pay a
//! simulated initialization delay (library loading on real systems), and
//! are adopted at the next reconfiguration or epoch boundary.

use crate::config::{
    state_fingerprint, HierMode, RecoveryPolicy, TrainSpec, WorkerExit, WorkerStats,
};
use crate::cost_model::HierModel;
use crate::profiler::{RecoveryBreakdown, RecoveryKind};
use collectives::{AllreduceAlgo, NodeMap, ReduceOp};
use dnn::{Checkpoint, InMemoryCheckpointStore};
use gloo::{rendezvous, Context, GlooError, KvStore, RendezvousConfig};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use transport::{Endpoint, RankId, Topology};

/// Configuration of the backward-recovery engine.
#[derive(Clone, Debug)]
pub struct BackwardConfig {
    /// The shared training workload.
    pub spec: TrainSpec,
    /// Eviction policy (Elastic Horovod itself only supports
    /// [`RecoveryPolicy::DropNode`]; process granularity is provided for
    /// the comparison matrix).
    pub policy: RecoveryPolicy,
    /// Save an in-memory checkpoint every N steps (the paper's minimum —
    /// and our default — is every step).
    pub checkpoint_every: u64,
    /// Gloo receive timeout (exception-catch latency for silent peers).
    pub op_timeout: Duration,
    /// Rendezvous timeout.
    pub rendezvous_timeout: Duration,
    /// Simulated new-worker initialization delay (library loading etc.).
    pub worker_init_delay: Duration,
    /// How many new workers this run expects over its lifetime. Until that
    /// many have *registered*, workers hold at epoch boundaries so the
    /// leader can adopt them — deterministic admission, mirroring the
    /// forward engine's `expected_joiners`. Zero never waits.
    pub expected_new_workers: usize,
}

impl BackwardConfig {
    /// Defaults mirroring the paper's setup.
    pub fn new(spec: TrainSpec) -> Self {
        Self {
            spec,
            policy: RecoveryPolicy::DropNode,
            checkpoint_every: 1,
            op_timeout: Duration::from_millis(800),
            rendezvous_timeout: Duration::from_secs(20),
            worker_init_delay: Duration::ZERO,
            expected_new_workers: 0,
        }
    }
}

struct DriverState {
    epoch: u64,
    members: BTreeSet<RankId>,
    blacklisted_nodes: BTreeSet<usize>,
    removed: BTreeSet<RankId>,
    pending_new: BTreeSet<RankId>,
    /// Minimum world size; falling below it aborts the run.
    min_workers: usize,
    /// Set once the member count drops below `min_workers`: the run is
    /// over, every surviving worker exits with [`WorkerExit::Aborted`].
    aborted: bool,
}

/// What [`ElasticDriver::wait_for_membership`] resolved for a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Membership {
    /// The worker is a member of configuration `epoch`; rendezvous with
    /// `members`.
    Active {
        /// Configuration epoch to rendezvous under.
        epoch: u64,
        /// Sorted member list of the configuration.
        members: Vec<RankId>,
    },
    /// The worker was evicted (blacklisted node or reported failure) and
    /// must exit.
    Removed,
    /// The run shut down because membership fell below the driver's
    /// minimum world size; every survivor must exit cleanly.
    Aborted,
}

/// The elastic driver: the central coordinator Elastic Horovod runs on the
/// launch host. Tracks membership epochs, blacklists failures, adopts new
/// workers, and owns the shared KV store and checkpoint store.
pub struct ElasticDriver {
    topology: Topology,
    store: Arc<KvStore>,
    ckpts: InMemoryCheckpointStore,
    state: Mutex<DriverState>,
    cv: Condvar,
    /// Monotone count of successful new-worker registrations.
    announced: std::sync::atomic::AtomicU64,
}

impl ElasticDriver {
    /// A driver whose initial membership is `initial` workers.
    pub fn new(topology: Topology, initial: Vec<RankId>) -> Arc<Self> {
        Arc::new(Self {
            topology,
            store: KvStore::shared(),
            ckpts: InMemoryCheckpointStore::new(),
            state: Mutex::new(DriverState {
                epoch: 0,
                members: initial.into_iter().collect(),
                blacklisted_nodes: BTreeSet::new(),
                removed: BTreeSet::new(),
                pending_new: BTreeSet::new(),
                min_workers: 1,
                aborted: false,
            }),
            cv: Condvar::new(),
            announced: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The shared rendezvous store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The shared in-memory checkpoint store.
    pub fn checkpoints(&self) -> &InMemoryCheckpointStore {
        &self.ckpts
    }

    /// Current configuration epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Set the minimum world size (Elastic Horovod's `--min-np`). A
    /// failure report that drops membership below this floor aborts the
    /// run instead of reconfiguring onto a degenerate group. Default 1.
    pub fn set_min_workers(&self, n: usize) {
        self.state.lock().min_workers = n.max(1);
    }

    /// Has the run shut down below its minimum world size?
    pub fn aborted(&self) -> bool {
        self.state.lock().aborted
    }

    /// Current member list (sorted).
    pub fn members(&self) -> Vec<RankId> {
        self.state.lock().members.iter().copied().collect()
    }

    /// A worker reports a failure it observed (or suspected via timeout).
    /// The driver removes the victim — and, under the node policy, its
    /// whole node — and starts a new configuration epoch. Idempotent per
    /// victim, so every member can report the same failure.
    pub fn report_failure(&self, victim: RankId, policy: RecoveryPolicy) {
        self.report_failures(&[victim], policy);
    }

    /// Batched failure report: every victim of a concurrent burst is
    /// evicted under one configuration-epoch bump, so the burst costs one
    /// reconfiguration instead of one per discovery — the backward-engine
    /// counterpart of the lattice view change. Stale victims (already
    /// handled, or never part of the job) are skipped; if none remain the
    /// call is a no-op.
    pub fn report_failures(&self, victims: &[RankId], policy: RecoveryPolicy) {
        let mut st = self.state.lock();
        let fresh: Vec<RankId> = victims
            .iter()
            .copied()
            .filter(|v| {
                !st.removed.contains(v) && (st.members.contains(v) || st.pending_new.contains(v))
            })
            .collect();
        if fresh.is_empty() {
            return;
        }
        telemetry::histogram("elastic.recovery.batch_size").record(fresh.len() as u64);
        for victim in fresh {
            let evicted: Vec<RankId> = match policy {
                RecoveryPolicy::DropProcess => vec![victim],
                RecoveryPolicy::DropNode => {
                    let node = self.topology.node_of(victim);
                    st.blacklisted_nodes.insert(node.0);
                    let max = st
                        .members
                        .iter()
                        .chain(st.pending_new.iter())
                        .map(|r| r.0 + 1)
                        .max()
                        .unwrap_or(0);
                    self.topology.ranks_on_node(node, max)
                }
            };
            for r in evicted {
                st.members.remove(&r);
                st.pending_new.remove(&r);
                st.removed.insert(r);
            }
        }
        st.epoch += 1;
        if st.members.len() < st.min_workers {
            // Below the floor: the run is over. Survivors observe the
            // abort at their next configuration check and exit cleanly.
            st.aborted = true;
        }
        self.cv.notify_all();
    }

    /// A new worker announces itself (after its init delay). It is adopted
    /// at the next epoch boundary / reconfiguration.
    pub fn register_new_worker(&self, rank: RankId) {
        let mut st = self.state.lock();
        let node = self.topology.node_of(rank);
        if st.blacklisted_nodes.contains(&node.0) || st.removed.contains(&rank) {
            return; // blacklisted hosts are not re-admitted
        }
        st.pending_new.insert(rank);
        self.announced
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Total new workers that have ever registered (monotone).
    pub fn announced_new_workers(&self) -> u64 {
        self.announced.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Adopt all pending new workers (called by the leader at epoch
    /// boundaries — Horovod's periodic host-discovery check). Returns true
    /// if membership changed (a new configuration epoch started).
    pub fn adopt_pending(&self) -> bool {
        let mut st = self.state.lock();
        if st.pending_new.is_empty() || st.aborted {
            return false;
        }
        let pending = std::mem::take(&mut st.pending_new);
        st.members.extend(pending);
        st.epoch += 1;
        self.cv.notify_all();
        true
    }

    /// Are any new workers waiting for adoption?
    pub fn has_pending(&self) -> bool {
        !self.state.lock().pending_new.is_empty()
    }

    /// Block until `me`'s fate is decided: a member of the current
    /// configuration ([`Membership::Active`]), evicted
    /// ([`Membership::Removed`]), or the run shut down below its minimum
    /// world size ([`Membership::Aborted`] — also delivered to registered
    /// new workers still waiting for adoption, so nobody blocks forever on
    /// a computation that no longer exists).
    pub fn wait_for_membership(&self, me: RankId) -> Membership {
        let mut st = self.state.lock();
        loop {
            if st.removed.contains(&me) {
                return Membership::Removed;
            }
            if st.aborted {
                return Membership::Aborted;
            }
            if st.members.contains(&me) {
                return Membership::Active {
                    epoch: st.epoch,
                    members: st.members.iter().copied().collect(),
                };
            }
            self.cv.wait(&mut st);
        }
    }
}

/// Gradient-allreduce router for the Gloo baseline: flat (the seed
/// behaviour) or hierarchical, decided per bucket by [`TrainSpec::hier`]
/// against the two-tier Summit model. Mirrors the forward engine's
/// router; the node map is the per-rendezvous-epoch one, so it is always
/// current for `ctx`. With a size-adaptive spec the cross-node exchange
/// resolves against the leader-count crossover.
fn gloo_grad_allreduce(
    ctx: &Context,
    map: &Option<NodeMap>,
    spec: &TrainSpec,
    buf: &mut [f32],
) -> Result<(), GlooError> {
    if let Some(map) = map {
        let model = HierModel::summit();
        let bytes = std::mem::size_of_val(buf);
        if spec.hier.use_hier(
            &model,
            bytes,
            ctx.size(),
            map.n_nodes(),
            map.max_node_size(),
        ) {
            telemetry::counter("elastic.hier.routed_buckets").incr();
            let algo = if matches!(spec.algo, AllreduceAlgo::Auto { .. }) {
                model.cross_auto_algo(map.n_nodes())
            } else {
                spec.algo
            };
            return ctx.hier_allreduce(map, buf, ReduceOp::Sum, algo);
        }
    }
    ctx.allreduce(buf, ReduceOp::Sum, spec.algo)
}

/// Run one worker under backward recovery. Returns its exit plus the
/// per-episode phase breakdowns.
pub fn run_backward_worker(
    ep: &Endpoint,
    cfg: &BackwardConfig,
    driver: &ElasticDriver,
    is_new_worker: bool,
) -> (WorkerExit, Vec<RecoveryBreakdown>) {
    let spec = &cfg.spec;
    let me = ep.rank();
    let mut breakdowns: Vec<RecoveryBreakdown> = Vec::new();

    if is_new_worker {
        // Library loading / framework init on a fresh host.
        std::thread::sleep(cfg.worker_init_delay);
        driver.register_new_worker(me);
    }

    let mut model = spec.build_model();
    let mut opt = spec.build_optimizer();
    let ds = spec.build_dataset();
    // Fusion schedule (architecture-determined, so computed once): fused
    // buckets launch during the backward pass; on failure Gloo's poisoned
    // context aborts the remaining buckets and the normal exception path
    // reconfigures — fused steps need no special recovery handling.
    let fusion = spec
        .fusion
        .map(|cap| crate::fusion::FusionSetup::new(&model, cap));
    let mut step: u64 = 0;
    let mut recoveries = 0usize;
    let mut last_loss = f32::NAN;
    let mut steps_recomputed: u64 = 0;
    // Set when re-entering the configuration loop because of a failure
    // (used to attribute rollback phases to a Backward episode).
    let mut failure_episode: Option<RecoveryBreakdown> = None;

    'config: loop {
        // --- configuration epoch ------------------------------------------
        let (epoch, members) = match driver.wait_for_membership(me) {
            Membership::Active { epoch, members } => (epoch, members),
            Membership::Removed => {
                // Evicted (e.g. healthy worker on a blacklisted node).
                return (
                    WorkerExit::Excluded(WorkerStats {
                        steps_done: step,
                        final_loss: last_loss,
                        recoveries,
                        final_world: 0,
                        state_fingerprint: state_fingerprint(&model.state_flat()),
                        final_lr: opt.current_lr(),
                        steps_recomputed,
                    }),
                    breakdowns,
                );
            }
            Membership::Aborted => {
                // The cascade dropped the world below min_workers: exit
                // cleanly with the progress so far, leaving a traceable
                // abort episode.
                telemetry::counter("elastic.abort.below_min").incr();
                let mut episode = RecoveryBreakdown::new(RecoveryKind::Abort, step);
                episode.time("below_min", || ep.retire());
                episode.publish(me.0);
                breakdowns.push(episode);
                return (
                    WorkerExit::Aborted(WorkerStats {
                        steps_done: step,
                        final_loss: last_loss,
                        recoveries,
                        final_world: 0,
                        state_fingerprint: state_fingerprint(&model.state_flat()),
                        final_lr: opt.current_lr(),
                        steps_recomputed,
                    }),
                    breakdowns,
                );
            }
        };

        let mut episode = failure_episode
            .take()
            .unwrap_or_else(|| RecoveryBreakdown::new(RecoveryKind::Join, step));

        // --- rendezvous (global + node-local) -----------------------------
        let rdv_cfg = RendezvousConfig {
            run_id: "horovod".into(),
            epoch,
            expected: members.len(),
            timeout: cfg.rendezvous_timeout,
        };
        let rdv = episode.time("rendezvous", || {
            rendezvous(driver.store(), &rdv_cfg, me, driver.topology)
        });
        let rdv = match rdv {
            Ok(r) => r,
            Err(_) => {
                // Membership changed under us (another failure during
                // rendezvous): re-read the configuration.
                if driver.epoch() != epoch {
                    failure_episode = Some(episode);
                    continue 'config;
                }
                panic!("rendezvous timed out without a configuration change");
            }
        };

        // --- reinit Gloo (full-mesh context) -------------------------------
        let ctx = episode.time("reinit_gloo", || {
            Context::connect(ep.clone(), epoch, rdv.members.clone(), rdv.my_rank)
                .map(|c| c.with_op_timeout(cfg.op_timeout))
        });
        let ctx = match ctx {
            Ok(c) => c,
            Err(GlooError::SelfDied) => return (WorkerExit::Died, breakdowns),
            Err(_) => {
                // A member died between rendezvous and connect.
                report_any_death(driver, ep, &rdv.members, cfg.policy);
                failure_episode = Some(episode);
                continue 'config;
            }
        };

        // Per-epoch node map for hierarchical routing: rebuilt at every
        // rendezvous epoch (i.e. after every membership change, including
        // adoption of new workers), from the agreed member list and the
        // static topology — local and identical on every member.
        let hier_map: Option<NodeMap> = if spec.hier != HierMode::Off {
            let colors: Vec<u64> = rdv
                .members
                .iter()
                .map(|&g| driver.topology.node_of(g).0 as u64)
                .collect();
            telemetry::counter("elastic.hier.rebuilds").incr();
            Some(NodeMap::from_colors(&colors))
        } else {
            None
        };

        // --- load checkpoint (rollback) ------------------------------------
        let rolled_back = episode.time("load_checkpoint", || {
            if let Some(ck) = driver.checkpoints().load() {
                let lost = step.saturating_sub(ck.step);
                ck.restore(&mut model, &mut opt);
                step = ck.step;
                lost
            } else {
                let lost = step;
                // No checkpoint yet: restart training state from scratch.
                model = spec.build_model();
                opt = spec.build_optimizer();
                step = 0;
                lost
            }
        });
        steps_recomputed += rolled_back;
        episode.publish(me.0);
        breakdowns.push(episode);

        // --- training under this configuration ----------------------------
        let world = ctx.size();
        let my_rank = ctx.rank();
        let mut recompute_marker = true; // first steps after rollback are recompute
        while (step as usize) < spec.total_steps {
            telemetry::counter("elastic.backward.steps").incr();
            let _step_span = telemetry::span("elastic.backward.step_ns");
            // Another failure elsewhere may have bumped the epoch while we
            // were computing; bail out to reconfigure.
            if driver.epoch() != epoch {
                recoveries += 1;
                let mut ep_rec = RecoveryBreakdown::new(RecoveryKind::Backward, step);
                ep_rec.push("catch_exception", Duration::ZERO);
                failure_episode = Some(ep_rec);
                continue 'config;
            }

            let shard = ds.shard(step as usize, spec.global_batch, my_rank, world);
            let shard_weight = shard.labels.len() as f32 / spec.global_batch as f32;
            model.zero_grads();

            let mut failed: Option<GlooError> = None;
            let catch_t0 = std::time::Instant::now();
            let grads: Vec<Vec<f32>> = if let Some(fs) = &fusion {
                // Ready-queue path: scatter gradients into bucket buffers
                // as layers finish their backward pass; launch each fused
                // allreduce the moment its bucket fills.
                let mut bufs = fs.bucket_buffers();
                let mut filled = vec![0usize; fs.n_buckets()];
                let mut fill_start: Vec<Option<std::time::Instant>> = vec![None; fs.n_buckets()];
                let report = model.compute_gradients_with(&shard, |idx, g| {
                    let (b, off, len) = fs.slot(idx);
                    if fill_start[b].is_none() {
                        fill_start[b] = Some(std::time::Instant::now());
                    }
                    for (d, s) in bufs[b][off..off + len].iter_mut().zip(g.data()) {
                        *d = s * shard_weight;
                    }
                    filled[b] += 1;
                    if filled[b] < fs.bucket_tensors(b) {
                        return;
                    }
                    if let Some(t0) = fill_start[b].take() {
                        telemetry::histogram("elastic.fusion.fill_latency_ns")
                            .record(t0.elapsed().as_nanos() as u64);
                    }
                    collectives::observe_bucket(
                        bufs[b].len() * std::mem::size_of::<f32>(),
                        fs.bucket_tensors(b),
                    );
                    if failed.is_none() {
                        if let Err(e) = gloo_grad_allreduce(&ctx, &hier_map, spec, &mut bufs[b]) {
                            failed = Some(e);
                        }
                    }
                });
                last_loss = report.loss;
                fs.unpack(&bufs)
            } else {
                let report = model.compute_gradients(&shard);
                last_loss = report.loss;
                let mut grads: Vec<Vec<f32>> = model
                    .grads()
                    .iter()
                    .map(|g| g.data().iter().map(|v| v * shard_weight).collect())
                    .collect();
                for g in grads.iter_mut() {
                    match gloo_grad_allreduce(&ctx, &hier_map, spec, g) {
                        Ok(()) => {}
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                grads
            };
            if matches!(failed, Some(GlooError::SelfDied)) {
                return (WorkerExit::Died, breakdowns);
            }
            if let Some(err) = failed {
                // --- exception path (paper Fig. 4 phases 1–3) -------------
                recoveries += 1;
                let mut ep_rec = RecoveryBreakdown::new(RecoveryKind::Backward, step);
                ep_rec.push("catch_exception", catch_t0.elapsed());
                ep_rec.time("shutdown", || {
                    debug_assert!(ctx.is_poisoned());
                });
                ep_rec.time("reinit_elastic", || match err {
                    // A timeout only *suspects* the awaited peer; it may be
                    // alive and simply stuck behind the real victim. Confirm
                    // against the runtime's dead list before blacklisting —
                    // as Horovod's driver confirms via host discovery.
                    GlooError::PeerFailure { global }
                        if global.0 < usize::MAX && !ep.is_peer_alive(global) =>
                    {
                        driver.report_failure(global, cfg.policy)
                    }
                    _ => report_any_death(driver, ep, ctx.group(), cfg.policy),
                });
                failure_episode = Some(ep_rec);
                continue 'config;
            }

            model.set_grads(&grads);
            opt.step(&mut model.params_mut());
            step += 1;
            recompute_marker = false;

            // Per-batch in-memory checkpoint (the paper's minimum interval).
            // Every rank passes the named fault point, so schedules can
            // kill the saver (rank 0) right before it checkpoints — the
            // survivors roll back to the previous checkpoint and recompute
            // — or a receiver, exercising the ordinary exception path.
            if step.is_multiple_of(cfg.checkpoint_every) {
                if ep.fault_point("ckpt.sync").is_err() {
                    return (WorkerExit::Died, breakdowns);
                }
                if my_rank == 0 {
                    driver.checkpoints().save(Checkpoint::capture(&model, &opt));
                }
            }

            // Epoch boundary: hold for expected new workers, then the
            // leader adopts them (bumping the configuration epoch; the
            // check at the top of the loop reconfigures everyone).
            if (step as usize).is_multiple_of(spec.steps_per_epoch) {
                while driver.announced_new_workers() < cfg.expected_new_workers as u64
                    && driver.epoch() == epoch
                {
                    std::thread::sleep(Duration::from_micros(300));
                }
                if my_rank == 0 && driver.has_pending() {
                    driver.adopt_pending();
                }
            }
        }
        let _ = recompute_marker;

        return (
            WorkerExit::Completed(WorkerStats {
                steps_done: step,
                final_loss: last_loss,
                recoveries,
                final_world: world,
                state_fingerprint: state_fingerprint(&model.state_flat()),
                final_lr: opt.current_lr(),
                steps_recomputed,
            }),
            breakdowns,
        );
    }
}

/// When the failed peer is unknown (timeout), consult the runtime's dead
/// list — the moral equivalent of Horovod's driver noticing a host went
/// silent.
fn report_any_death(
    driver: &ElasticDriver,
    ep: &Endpoint,
    group: &[RankId],
    policy: RecoveryPolicy,
) {
    // One batched report: a burst that killed several members costs one
    // configuration epoch, not one per dead peer. With a suspicion batch
    // window configured, first wait the burst out so the tail is included.
    ep.settle_suspicions();
    let dead: Vec<RankId> = group
        .iter()
        .copied()
        .filter(|&g| !ep.is_peer_alive(g))
        .collect();
    if !dead.is_empty() {
        driver.report_failures(&dead, policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_drop_process_removes_only_victim() {
        let d = ElasticDriver::new(Topology::new(3), (0..6).map(RankId).collect());
        d.report_failure(RankId(4), RecoveryPolicy::DropProcess);
        assert_eq!(d.epoch(), 1);
        let m = d.members();
        assert_eq!(m.len(), 5);
        assert!(!m.contains(&RankId(4)));
    }

    #[test]
    fn driver_drop_node_blacklists_whole_node() {
        let d = ElasticDriver::new(Topology::new(3), (0..6).map(RankId).collect());
        d.report_failure(RankId(4), RecoveryPolicy::DropNode);
        let m = d.members();
        assert_eq!(m, vec![RankId(0), RankId(1), RankId(2)]);
        // Workers from the blacklisted node cannot re-register.
        d.register_new_worker(RankId(5));
        assert!(!d.has_pending());
    }

    #[test]
    fn report_failure_is_idempotent() {
        let d = ElasticDriver::new(Topology::flat(), (0..4).map(RankId).collect());
        d.report_failure(RankId(1), RecoveryPolicy::DropProcess);
        d.report_failure(RankId(1), RecoveryPolicy::DropProcess);
        assert_eq!(d.epoch(), 1);
    }

    #[test]
    fn adopt_pending_bumps_epoch_once() {
        let d = ElasticDriver::new(Topology::flat(), (0..2).map(RankId).collect());
        assert!(!d.adopt_pending());
        d.register_new_worker(RankId(2));
        d.register_new_worker(RankId(3));
        assert!(d.adopt_pending());
        assert_eq!(d.epoch(), 1);
        assert_eq!(d.members().len(), 4);
        assert!(!d.adopt_pending());
    }

    #[test]
    fn wait_for_membership_reports_removed() {
        let d = ElasticDriver::new(Topology::flat(), (0..2).map(RankId).collect());
        d.report_failure(RankId(1), RecoveryPolicy::DropProcess);
        assert_eq!(d.wait_for_membership(RankId(1)), Membership::Removed);
        match d.wait_for_membership(RankId(0)) {
            Membership::Active { epoch, members } => {
                assert_eq!(epoch, 1);
                assert_eq!(members, vec![RankId(0)]);
            }
            other => panic!("expected Active, got {other:?}"),
        }
    }

    #[test]
    fn wait_for_membership_blocks_until_adopted() {
        let d = ElasticDriver::new(Topology::flat(), vec![RankId(0)]);
        let d2 = Arc::clone(&d);
        let t = std::thread::spawn(move || d2.wait_for_membership(RankId(1)));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished());
        d.register_new_worker(RankId(1));
        d.adopt_pending();
        match t.join().unwrap() {
            Membership::Active { members, .. } => assert!(members.contains(&RankId(1))),
            other => panic!("expected Active, got {other:?}"),
        }
    }

    #[test]
    fn shrink_below_floor_aborts_survivors_and_pending() {
        let d = ElasticDriver::new(Topology::flat(), (0..4).map(RankId).collect());
        d.set_min_workers(3);
        d.report_failure(RankId(3), RecoveryPolicy::DropProcess);
        assert!(!d.aborted(), "3 survivors is still at the floor");
        // A new worker registers, then the cascade continues below floor.
        d.register_new_worker(RankId(9));
        d.report_failure(RankId(2), RecoveryPolicy::DropProcess);
        assert!(d.aborted());
        // Survivors, the evicted, and the never-adopted all resolve.
        assert_eq!(d.wait_for_membership(RankId(0)), Membership::Aborted);
        assert_eq!(d.wait_for_membership(RankId(2)), Membership::Removed);
        assert_eq!(d.wait_for_membership(RankId(9)), Membership::Aborted);
        // No adoption after the shutdown.
        assert!(!d.adopt_pending());
    }
}
