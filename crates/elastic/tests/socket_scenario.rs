//! Scenario runs on the socket backends, in-process edition: every rank
//! is a thread, but bytes travel through real TCP / Unix-domain sockets
//! and failure detection goes through EOF/suspicion instead of the shared
//! alive table. The multi-*process* version of the same story lives in
//! `crates/bench/tests/multiproc.rs`; this test keeps the socket path in
//! the ordinary `cargo test` loop, where it is cheap and debuggable.

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, ScenarioConfig, TrainSpec, WorkerExit};
use transport::BackendKind;

fn socket_cfg(backend: BackendKind, victim_dies: bool) -> ScenarioConfig {
    ScenarioConfig {
        spec: TrainSpec {
            total_steps: 12,
            steps_per_epoch: 4,
            min_workers: 2,
            ..TrainSpec::default()
        },
        workers: 3,
        ranks_per_node: 3,
        victim: 1,
        // A fail_at_op beyond the run's fault-point hits never fires — the
        // standard way to express "nobody dies" in a scenario config.
        fail_at_op: if victim_dies { 5 } else { u64::MAX },
        backend,
        ..ScenarioConfig::quick(Engine::UlfmForward, ScenarioKind::Downscale)
    }
}

#[test]
fn tcp_downscale_survivors_agree_and_finish() {
    let res = run_scenario(&socket_cfg(BackendKind::Tcp, true));
    assert_eq!(res.completed(), 2, "exits: {:?}", res.exits);
    assert!(
        matches!(res.exits[1], WorkerExit::Died),
        "victim must die: {:?}",
        res.exits[1]
    );
    res.assert_consistent_state();
}

#[test]
fn unix_downscale_survivors_agree_and_finish() {
    let res = run_scenario(&socket_cfg(BackendKind::Unix, true));
    assert_eq!(res.completed(), 2, "exits: {:?}", res.exits);
    res.assert_consistent_state();
}

#[test]
fn tcp_upscale_admits_network_joiner() {
    // Scenario III over sockets: a fresh worker binds its own listener,
    // discovers the members through the rendezvous store, dials in, and is
    // admitted at an epoch boundary. All four replicas must converge.
    let cfg = ScenarioConfig {
        kind: ScenarioKind::Upscale,
        joiners: 1,
        ..socket_cfg(BackendKind::Tcp, false)
    };
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), 4, "exits: {:?}", res.exits);
    res.assert_consistent_state();
}

#[test]
fn unix_replace_swaps_dead_worker_for_joiner() {
    // Scenario II over Unix sockets: the victim dies mid-allreduce (EOF on
    // its links), survivors shrink, and a replacement joiner restores the
    // worker count.
    let cfg = ScenarioConfig {
        kind: ScenarioKind::Replace,
        joiners: 1,
        ..socket_cfg(BackendKind::Unix, true)
    };
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), 3, "exits: {:?}", res.exits);
    assert!(
        matches!(res.exits[1], WorkerExit::Died),
        "victim must die: {:?}",
        res.exits[1]
    );
    res.assert_consistent_state();
}

#[test]
fn tcp_clean_run_matches_inproc_fingerprint() {
    // Same seed, same membership, no faults: the model fingerprint must
    // not depend on which transport carried the gradients.
    let sock = run_scenario(&socket_cfg(BackendKind::Tcp, false));
    let inproc = run_scenario(&socket_cfg(BackendKind::InProc, false));
    assert_eq!(sock.completed(), 3, "exits: {:?}", sock.exits);
    assert_eq!(inproc.completed(), 3);
    sock.assert_consistent_state();
    inproc.assert_consistent_state();
    let fp = |r: &elastic::ScenarioResult| {
        r.exits
            .iter()
            .find_map(|e| match e {
                WorkerExit::Completed(s) => Some(s.state_fingerprint),
                _ => None,
            })
            .expect("a completed worker")
    };
    assert_eq!(
        fp(&sock),
        fp(&inproc),
        "transport choice leaked into training state"
    );
}
