//! Empirical Eq. (1): the backward engine's recompute cost grows with the
//! checkpoint interval, while forward recovery recomputes nothing — the
//! trade-off the paper's §2.2 formalizes.

use elastic::{
    run_backward_worker, BackwardConfig, ElasticDriver, RecoveryPolicy, TrainSpec, WorkerExit,
};
use std::sync::Arc;
use std::time::Duration;
use transport::{Endpoint, Fabric, FaultInjector, FaultPlan, RankId, Topology};

fn run_with_interval(checkpoint_every: u64) -> (u64, usize) {
    let spec = TrainSpec {
        total_steps: 10,
        steps_per_epoch: 5,
        ..TrainSpec::default()
    };
    let topology = Topology::flat();
    // Victim dies mid-allreduce somewhere in step 3-4 (after a few
    // checkpoints have or haven't been taken, depending on the interval).
    let plan = FaultPlan::none().kill_at_point(RankId(2), "allreduce.step", 130);
    let fabric = Fabric::new(topology, FaultInjector::new(plan));
    let ranks = fabric.register_ranks(4);
    let driver = ElasticDriver::new(topology, ranks.clone());
    let cfg = BackwardConfig {
        spec,
        policy: RecoveryPolicy::DropProcess,
        checkpoint_every,
        op_timeout: Duration::from_millis(500),
        rendezvous_timeout: Duration::from_secs(20),
        worker_init_delay: Duration::ZERO,
        expected_new_workers: 0,
    };
    let ranks_ref = &ranks;
    let results: Vec<(WorkerExit, _)> = std::thread::scope(|s| {
        let handles: Vec<_> = ranks_ref
            .iter()
            .map(|&rank| {
                let fabric = Arc::clone(&fabric);
                let driver = Arc::clone(&driver);
                let cfg = cfg.clone();
                s.spawn(move || {
                    let ep = Endpoint::new(Arc::clone(&fabric), rank);
                    let out = run_backward_worker(&ep, &cfg, &driver, false);
                    fabric.kill_rank(rank);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut max_recomputed = 0;
    let mut completed = 0;
    for (exit, _) in &results {
        if let WorkerExit::Completed(stats) = exit {
            completed += 1;
            max_recomputed = max_recomputed.max(stats.steps_recomputed);
        }
    }
    (max_recomputed, completed)
}

#[test]
fn recompute_grows_with_checkpoint_interval() {
    let (r1, c1) = run_with_interval(1);
    let (r4, c4) = run_with_interval(4);
    assert_eq!(c1, 3, "survivors complete at interval 1");
    assert_eq!(c4, 3, "survivors complete at interval 4");
    // Per-step checkpoints: at most ~1 step lost. 4-step interval: up to 4.
    assert!(r1 <= 1, "interval 1 recomputed {r1} steps");
    assert!(r4 > r1, "larger interval must recompute more: {r4} vs {r1}");
}

#[test]
fn per_batch_checkpoints_bound_rollback_to_one_step() {
    // The paper's "minimum checkpoint interval of one mini-batch": with
    // per-step checkpoints, no survivor ever recomputes more than the
    // in-flight step.
    for fail_at in [40u64, 90, 160] {
        let spec = TrainSpec {
            total_steps: 8,
            steps_per_epoch: 4,
            ..TrainSpec::default()
        };
        let topology = Topology::flat();
        let plan = FaultPlan::none().kill_at_point(RankId(1), "allreduce.step", fail_at);
        let fabric = Fabric::new(topology, FaultInjector::new(plan));
        let ranks = fabric.register_ranks(4);
        let driver = ElasticDriver::new(topology, ranks.clone());
        let cfg = BackwardConfig {
            spec,
            policy: RecoveryPolicy::DropProcess,
            checkpoint_every: 1,
            op_timeout: Duration::from_millis(500),
            rendezvous_timeout: Duration::from_secs(20),
            worker_init_delay: Duration::ZERO,
            expected_new_workers: 0,
        };
        let ranks_ref = &ranks;
        std::thread::scope(|s| {
            let handles: Vec<_> = ranks_ref
                .iter()
                .map(|&rank| {
                    let fabric = Arc::clone(&fabric);
                    let driver = Arc::clone(&driver);
                    let cfg = cfg.clone();
                    s.spawn(move || {
                        let ep = Endpoint::new(Arc::clone(&fabric), rank);
                        let out = run_backward_worker(&ep, &cfg, &driver, false);
                        fabric.kill_rank(rank);
                        out
                    })
                })
                .collect();
            for h in handles {
                let (exit, _) = h.join().unwrap();
                if let WorkerExit::Completed(stats) = exit {
                    assert!(
                        stats.steps_recomputed <= 1,
                        "fail_at {fail_at}: recomputed {}",
                        stats.steps_recomputed
                    );
                }
            }
        });
    }
}
