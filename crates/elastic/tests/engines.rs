//! End-to-end engine tests: both engines train through the paper's three
//! scenarios, at both recovery levels, and the replicas stay consistent.

use collectives::AllreduceAlgo;
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{
    run_scenario, HierMode, RecoveryKind, RecoveryPolicy, ScenarioConfig, TrainSpec, WorkerExit,
};
use transport::{FaultPlan, RankId};

fn spec() -> TrainSpec {
    TrainSpec {
        total_steps: 10,
        steps_per_epoch: 3,
        ..TrainSpec::default()
    }
}

fn quick(engine: Engine, kind: ScenarioKind) -> ScenarioConfig {
    ScenarioConfig {
        spec: spec(),
        ..ScenarioConfig::quick(engine, kind)
    }
}

// ---------------------------------------------------------------- forward

#[test]
fn forward_downscale_process_level() {
    let cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    let res = run_scenario(&cfg);
    // Victim died; the other five completed.
    assert_eq!(res.completed(), cfg.workers - 1);
    assert_eq!(
        res.exits.iter().filter(|e| **e == WorkerExit::Died).count(),
        1
    );
    res.assert_consistent_state();
    // Survivors trained all steps at the reduced world size.
    for e in res.exits.iter().filter(|e| e.completed()) {
        let s = e.stats().unwrap();
        assert_eq!(s.steps_done, cfg.spec.total_steps as u64);
        assert_eq!(s.final_world, cfg.workers - 1);
        assert!(s.recoveries >= 1, "survivor must have recovered");
    }
    // At least one forward-recovery breakdown with the expected phases.
    let fwd = res
        .mean_breakdown(RecoveryKind::Forward)
        .expect("forward episodes recorded");
    for phase in ["revoke", "agree", "shrink"] {
        assert!(
            fwd.phases.iter().any(|p| p.name == phase),
            "missing phase {phase}"
        );
    }
}

#[test]
fn forward_downscale_node_level_excludes_peers() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.policy = RecoveryPolicy::DropNode;
    cfg.victim = 4; // node 1 hosts ranks 3,4,5 (3 ranks per node)
    let res = run_scenario(&cfg);
    let excluded = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Excluded(_)))
        .count();
    assert_eq!(
        excluded, 2,
        "two healthy node-mates evicted: {:?}",
        res.exits
    );
    assert_eq!(res.completed(), 3);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(e.stats().unwrap().final_world, 3);
    }
}

#[test]
fn forward_replacement_restores_world_size() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Replace);
    cfg.joiners = 1;
    let res = run_scenario(&cfg);
    // 5 survivors + 1 joiner complete.
    assert_eq!(res.completed(), cfg.workers, "{:?}", res.exits);
    res.assert_consistent_state();
    // The joiner must have synced state (Join breakdown present).
    assert!(
        res.breakdowns
            .iter()
            .any(|b| b.kind == RecoveryKind::Join
                && b.phase("state_sync") > std::time::Duration::ZERO)
    );
    // World size recovered to the original count.
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(e.stats().unwrap().final_world, cfg.workers);
    }
}

#[test]
fn forward_upscale_grows_world() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Upscale);
    cfg.joiners = 2;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers + 2);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(e.stats().unwrap().final_world, cfg.workers + 2);
        assert_eq!(e.stats().unwrap().recoveries, 0, "no failure in upscale");
    }
}

#[test]
fn forward_renormalization_keeps_replicas_consistent() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.renormalize = true;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1);
    res.assert_consistent_state();
}

#[test]
fn forward_different_allreduce_algorithms_survive_failures() {
    for algo in [
        AllreduceAlgo::RecursiveDoubling,
        AllreduceAlgo::Rabenseifner,
    ] {
        let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
        cfg.spec.algo = algo;
        let res = run_scenario(&cfg);
        assert_eq!(res.completed(), cfg.workers - 1, "{algo:?}");
        res.assert_consistent_state();
    }
}

#[test]
fn forward_loss_decreases_despite_failure() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.spec.total_steps = 24;
    cfg.spec.steps_per_epoch = 6;
    let res = run_scenario(&cfg);
    let final_loss = res
        .exits
        .iter()
        .find_map(|e| e.stats().filter(|_| e.completed()))
        .unwrap()
        .final_loss;
    // Initial loss ≈ ln(4) ≈ 1.386 for 4 classes; training must clearly
    // beat that even with a mid-run failure.
    assert!(
        final_loss < 1.0,
        "loss did not decrease enough: {final_loss}"
    );
}

// --------------------------------------------------------------- backward

#[test]
fn backward_downscale_node_level() {
    let mut cfg = quick(Engine::GlooBackward, ScenarioKind::Downscale);
    cfg.policy = RecoveryPolicy::DropNode;
    cfg.victim = 4;
    let res = run_scenario(&cfg);
    // Node 1 (ranks 3,4,5): victim died; two node-mates evicted.
    assert_eq!(res.completed(), 3, "{:?}", res.exits);
    res.assert_consistent_state();
    // Backward recovery must include the Fig. 4 phases.
    let all_names: Vec<&str> = res
        .breakdowns
        .iter()
        .flat_map(|b| b.phases.iter().map(|p| p.name))
        .collect();
    for phase in [
        "catch_exception",
        "rendezvous",
        "reinit_gloo",
        "load_checkpoint",
    ] {
        assert!(all_names.contains(&phase), "missing phase {phase}");
    }
}

#[test]
fn backward_downscale_process_level() {
    // Real Elastic Horovod cannot do this (Table 2) — our baseline driver
    // supports it so the comparison matrix can be exercised symmetrically.
    let cfg = quick(Engine::GlooBackward, ScenarioKind::Downscale);
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1, "{:?}", res.exits);
    res.assert_consistent_state();
}

#[test]
fn backward_replacement() {
    let mut cfg = quick(Engine::GlooBackward, ScenarioKind::Replace);
    cfg.joiners = 1;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers, "{:?}", res.exits);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(e.stats().unwrap().final_world, cfg.workers);
    }
}

#[test]
fn backward_upscale() {
    let mut cfg = quick(Engine::GlooBackward, ScenarioKind::Upscale);
    cfg.joiners = 2;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers + 2, "{:?}", res.exits);
    res.assert_consistent_state();
}

// ------------------------------------------------------------ equivalence

/// Fault-free training produces bit-identical models on both engines: they
/// run the same collectives in the same order on the same data.
#[test]
fn engines_agree_bit_exactly_without_faults() {
    let mut f_cfg = quick(Engine::UlfmForward, ScenarioKind::Upscale);
    f_cfg.joiners = 0;
    f_cfg.kind = ScenarioKind::Upscale; // no fault plan, no joiners
    let f_res = run_scenario(&f_cfg);
    let f_fp = f_res.assert_consistent_state();

    let mut b_cfg = quick(Engine::GlooBackward, ScenarioKind::Upscale);
    b_cfg.joiners = 0;
    let b_res = run_scenario(&b_cfg);
    let b_fp = b_res.assert_consistent_state();

    assert_eq!(f_fp, b_fp, "fault-free engines must agree bit-exactly");
}

// ---------------------------------------------------------------- fusion

/// A byte cap that splits the default MLP's four gradient tensors
/// (ready-order sizes 128, 4, 512, 32 f32s = 512, 16, 2048, 128 bytes)
/// into three buckets: {128, 4} fused, the 2048-byte tensor as an
/// oversized singleton, and the 32-element tail — so the fused path
/// exercises multi-tensor packing, the oversized escape hatch, and
/// scatter-back in one run.
const FUSION_CAP: usize = 600;

fn fused_spec() -> TrainSpec {
    TrainSpec {
        fusion: Some(FUSION_CAP),
        ..spec()
    }
}

#[test]
fn forward_fused_downscale_recovers_bit_identically() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.spec = fused_spec();
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1, "{:?}", res.exits);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        let s = e.stats().unwrap();
        assert_eq!(s.steps_done, cfg.spec.total_steps as u64);
        assert_eq!(s.final_world, cfg.workers - 1);
        assert!(s.recoveries >= 1, "survivor must have recovered");
    }
    // The mid-bucket kill must drive the full ULFM protocol.
    let fwd = res
        .mean_breakdown(RecoveryKind::Forward)
        .expect("forward episodes recorded");
    for phase in ["revoke", "agree", "shrink"] {
        assert!(
            fwd.phases.iter().any(|p| p.name == phase),
            "missing phase {phase}"
        );
    }
}

/// Kill at several protocol-step offsets so the failure lands inside
/// different buckets (including the fused multi-tensor bucket and the
/// oversized singleton) and in different training steps.
#[test]
fn forward_fused_survives_kills_in_every_bucket() {
    for fail_at in [1, 4, 9, 14] {
        let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
        cfg.spec = fused_spec();
        cfg.fail_at_op = fail_at;
        let res = run_scenario(&cfg);
        assert_eq!(
            res.completed(),
            cfg.workers - 1,
            "fail_at_op={fail_at}: {:?}",
            res.exits
        );
        res.assert_consistent_state();
    }
}

#[test]
fn forward_fused_auto_algo_survives_failure() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.spec = fused_spec();
    cfg.spec.algo = AllreduceAlgo::auto();
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1, "{:?}", res.exits);
    res.assert_consistent_state();
}

#[test]
fn forward_fused_replacement_restores_world_size() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Replace);
    cfg.spec = fused_spec();
    cfg.joiners = 1;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers, "{:?}", res.exits);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(e.stats().unwrap().final_world, cfg.workers);
    }
}

#[test]
fn backward_fused_downscale() {
    let mut cfg = quick(Engine::GlooBackward, ScenarioKind::Downscale);
    cfg.spec = fused_spec();
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1, "{:?}", res.exits);
    res.assert_consistent_state();
}

#[test]
fn backward_fused_upscale() {
    let mut cfg = quick(Engine::GlooBackward, ScenarioKind::Upscale);
    cfg.spec = fused_spec();
    cfg.joiners = 2;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers + 2, "{:?}", res.exits);
    res.assert_consistent_state();
}

/// Both engines fuse by the same schedule and reduce the same fused
/// buffers with the same algorithm, so fault-free fused training is
/// bit-identical across engines — the fused analogue of
/// [`engines_agree_bit_exactly_without_faults`].
#[test]
fn fused_engines_agree_bit_exactly_without_faults() {
    let mut f_cfg = quick(Engine::UlfmForward, ScenarioKind::Upscale);
    f_cfg.spec = fused_spec();
    f_cfg.joiners = 0;
    let f_fp = run_scenario(&f_cfg).assert_consistent_state();

    let mut b_cfg = quick(Engine::GlooBackward, ScenarioKind::Upscale);
    b_cfg.spec = fused_spec();
    b_cfg.joiners = 0;
    let b_fp = run_scenario(&b_cfg).assert_consistent_state();

    assert_eq!(
        f_fp, b_fp,
        "fault-free fused engines must agree bit-exactly"
    );
}

/// Under recursive doubling the per-element reduction order depends only
/// on the group (pairwise butterfly), not on buffer layout — so packing
/// tensors into fused buckets must not change a single bit of the final
/// model. (Ring/Rabenseifner chunk by offset, so the same equality is not
/// guaranteed there; this pins the layout-independent case.)
#[test]
fn fusion_is_transparent_under_recursive_doubling() {
    let mut unfused = quick(Engine::UlfmForward, ScenarioKind::Upscale);
    unfused.spec.algo = AllreduceAlgo::RecursiveDoubling;
    unfused.joiners = 0;
    let u_fp = run_scenario(&unfused).assert_consistent_state();

    let mut fused = quick(Engine::UlfmForward, ScenarioKind::Upscale);
    fused.spec = fused_spec();
    fused.spec.algo = AllreduceAlgo::RecursiveDoubling;
    fused.joiners = 0;
    let f_fp = run_scenario(&fused).assert_consistent_state();

    assert_eq!(u_fp, f_fp, "fusion changed the trained model bits");
}

// ------------------------------------------------------- forward recovery

/// The paper's Fig. 2 contrast, measured: forward recovery completes the
/// failed step with the survivors' retained contributions instead of
/// rolling back — so the survivor-side model equals a reference run where
/// the dead worker's contribution simply vanishes from the failed tensor
/// onward of that step, and training *continues from there* rather than
/// recomputing the whole mini-batch.
#[test]
fn forward_recovery_uses_retained_contributions() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.spec.total_steps = 6;
    // Fail during the very first step's allreduce sequence so the recovery
    // path dominates the run.
    cfg.fail_at_op = 3;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1);
    let fp = res.assert_consistent_state();
    assert_ne!(fp, 0);
}

// ----------------------------------------------------------- hierarchical

/// Force the two-level collective regardless of the cost model — the quick
/// scenario's 6 workers over 2 nodes are far below the crossover, so Auto
/// would (correctly) stay flat and never exercise the hierarchy.
fn hier_spec() -> TrainSpec {
    TrainSpec {
        hier: HierMode::Force,
        ..spec()
    }
}

/// A node *leader* dying inside the cross-node exchange must feed the same
/// revoke → agree → shrink path as a flat failure, and survivors must
/// rebuild the hierarchy (promoting the node's next rank to leader) before
/// retrying.
#[test]
fn forward_hier_downscale_survives_leader_death() {
    let routed_before = telemetry::counter("elastic.hier.routed_buckets").get();
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.spec = hier_spec();
    cfg.victim = 3; // leader of node 1 (ranks 3,4,5)
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1, "{:?}", res.exits);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        let s = e.stats().unwrap();
        assert_eq!(s.final_world, cfg.workers - 1);
        assert!(s.recoveries >= 1, "survivor must have recovered");
    }
    assert!(
        telemetry::counter("elastic.hier.routed_buckets").get() > routed_before,
        "forced hierarchy must actually route gradient buckets"
    );
}

/// Killing a *non-leader* exercises the other tentpole fault case: the
/// victim dies inside the intra-node reduction, its leader notices in the
/// local phase, and the hierarchy rebuilt after shrink shows a smaller node.
#[test]
fn forward_hier_downscale_survives_non_leader_death() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.spec = hier_spec();
    // Rank 4 never enters the cross ring, so the scenario's scripted
    // "allreduce.step" kill can never fire for it — inject the death at
    // the intra-node reduction instead.
    cfg.victim = 4;
    cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(4), "reduce.step", 7);
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1, "{:?}", res.exits);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(e.stats().unwrap().final_world, cfg.workers - 1);
    }
}

/// Hierarchy must be rebuilt across NetJoin epochs too: a leader dies, a
/// replacement joins, and the final world (and its node map) includes the
/// joiner.
#[test]
fn forward_hier_replacement_restores_world_size() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Replace);
    cfg.spec = hier_spec();
    cfg.victim = 3;
    cfg.joiners = 1;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers, "{:?}", res.exits);
    res.assert_consistent_state();
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(e.stats().unwrap().final_world, cfg.workers);
    }
}

/// Hierarchical routing composes with fusion: each fused bucket is
/// independently routed through the two-level collective, and recovery
/// still works when the leader dies mid-bucket-sequence.
#[test]
fn forward_hier_fused_downscale() {
    let mut cfg = quick(Engine::UlfmForward, ScenarioKind::Downscale);
    cfg.spec = TrainSpec {
        hier: HierMode::Force,
        ..fused_spec()
    };
    cfg.victim = 3;
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), cfg.workers - 1, "{:?}", res.exits);
    res.assert_consistent_state();
}

/// The backward engine rebuilds its node map at every rendezvous; node-level
/// eviction of a leader's node must converge to the 3 survivors on node 0.
#[test]
fn backward_hier_downscale_node_level() {
    let mut cfg = quick(Engine::GlooBackward, ScenarioKind::Downscale);
    cfg.spec = hier_spec();
    cfg.policy = RecoveryPolicy::DropNode;
    cfg.victim = 3; // node 1's leader takes the whole node down
    let res = run_scenario(&cfg);
    assert_eq!(res.completed(), 3, "{:?}", res.exits);
    res.assert_consistent_state();
}

/// Both engines route the identical two-level collective over the identical
/// node map, so fault-free hierarchical training must stay bit-identical
/// across engines — the same guarantee the flat path already pins.
#[test]
fn hier_engines_agree_bit_exactly_without_faults() {
    let mut f_cfg = quick(Engine::UlfmForward, ScenarioKind::Upscale);
    f_cfg.spec = hier_spec();
    f_cfg.joiners = 0;
    let f_fp = run_scenario(&f_cfg).assert_consistent_state();

    let mut b_cfg = quick(Engine::GlooBackward, ScenarioKind::Upscale);
    b_cfg.spec = hier_spec();
    b_cfg.joiners = 0;
    let b_fp = run_scenario(&b_cfg).assert_consistent_state();

    assert_eq!(
        f_fp, b_fp,
        "fault-free hierarchical engines must agree bit-exactly"
    );
}
