//! Elastic learning-rate scaling and multi-failure stress tests for the
//! forward engine, driven directly through the ULFM universe.

use elastic::{run_forward_worker, ForwardConfig, LrScaling, TrainSpec, WorkerExit};
use transport::{FaultPlan, RankId, Topology};
use ulfm::Universe;

fn spec() -> TrainSpec {
    TrainSpec {
        total_steps: 12,
        steps_per_epoch: 4,
        lr: 0.04,
        ..TrainSpec::default()
    }
}

#[test]
fn lr_tracks_world_size_after_downscale() {
    let mut cfg = ForwardConfig::new(spec());
    cfg.accept_joiners = false;
    cfg.lr_scaling = Some(LrScaling {
        base_world: 4,
        warmup_steps: 2,
    });
    // 8 workers → base target lr = 0.04 × 8/4 = 0.08; after losing one,
    // 0.04 × 7/4 = 0.07.
    let plan = FaultPlan::none().kill_at_point(RankId(3), "allreduce.step", 5);
    let u = Universe::new(Topology::flat(), plan);
    let c = cfg.clone();
    let handles = u
        .spawn_batch(8, move |p| run_forward_worker(&p, &c, false))
        .unwrap();
    let mut survivors = 0;
    for h in handles {
        match h.join().exit {
            WorkerExit::Completed(s) => {
                survivors += 1;
                assert_eq!(s.final_world, 7);
                assert!(
                    (s.final_lr - 0.07).abs() < 1e-6,
                    "lr should settle at 0.07, got {}",
                    s.final_lr
                );
            }
            WorkerExit::Died => {}
            other => panic!("unexpected exit {other:?}"),
        }
    }
    assert_eq!(survivors, 7);
}

#[test]
fn lr_constant_without_policy() {
    let mut cfg = ForwardConfig::new(spec());
    cfg.accept_joiners = false;
    let u = Universe::without_faults(Topology::flat());
    let c = cfg.clone();
    let handles = u
        .spawn_batch(4, move |p| run_forward_worker(&p, &c, false))
        .unwrap();
    for h in handles {
        let s = match h.join().exit {
            WorkerExit::Completed(s) => s,
            other => panic!("{other:?}"),
        };
        assert!((s.final_lr - 0.04).abs() < 1e-7);
    }
}

/// Two failures in the same run, at different steps: the engine recovers
/// twice, survivors stay consistent.
#[test]
fn survives_two_sequential_failures() {
    let mut cfg = ForwardConfig::new(spec());
    cfg.accept_joiners = false;
    // Victim 1 dies in the first step's allreduces; victim 5 a couple of
    // hundred protocol steps later (well into a later step).
    let plan = FaultPlan::none()
        .kill_at_point(RankId(1), "allreduce.step", 6)
        .kill_at_point(RankId(5), "allreduce.step", 160);
    let u = Universe::new(Topology::flat(), plan);
    let c = cfg.clone();
    let handles = u
        .spawn_batch(7, move |p| run_forward_worker(&p, &c, false))
        .unwrap();
    let mut fps = Vec::new();
    let mut died = 0;
    for h in handles {
        match h.join().exit {
            WorkerExit::Completed(s) => {
                assert_eq!(s.final_world, 5);
                assert_eq!(s.steps_done, 12);
                assert!(
                    s.recoveries >= 2,
                    "expected ≥2 recoveries, got {}",
                    s.recoveries
                );
                fps.push(s.state_fingerprint);
            }
            WorkerExit::Died => died += 1,
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(died, 2);
    assert_eq!(fps.len(), 5);
    assert!(fps.windows(2).all(|w| w[0] == w[1]), "replicas diverged");
}

/// Failure storm: three victims with overlapping schedules, including one
/// dying during another's recovery window (agreement round).
#[test]
fn survives_overlapping_failure_storm() {
    let mut cfg = ForwardConfig::new(spec());
    cfg.accept_joiners = false;
    let plan = FaultPlan::none()
        .kill_at_point(RankId(0), "allreduce.step", 8)
        .kill_at_point(RankId(2), "agree.round", 2)
        .kill_at_point(RankId(4), "allreduce.step", 90);
    let u = Universe::new(Topology::flat(), plan);
    let c = cfg.clone();
    let handles = u
        .spawn_batch(8, move |p| run_forward_worker(&p, &c, false))
        .unwrap();
    let mut fps = Vec::new();
    for h in handles {
        if let WorkerExit::Completed(s) = h.join().exit {
            assert_eq!(s.steps_done, 12);
            fps.push(s.state_fingerprint);
        }
    }
    assert_eq!(fps.len(), 5, "exactly the three victims die");
    assert!(fps.windows(2).all(|w| w[0] == w[1]));
}

/// Node-level storm: two victims on *different* nodes under drop-node —
/// both nodes evicted, the remaining node finishes alone.
#[test]
fn drop_node_with_two_failed_nodes() {
    let mut cfg = ForwardConfig::new(spec());
    cfg.accept_joiners = false;
    cfg.policy = elastic::RecoveryPolicy::DropNode;
    let plan = FaultPlan::none()
        .kill_at_point(RankId(1), "allreduce.step", 5) // node 0
        .kill_at_point(RankId(7), "allreduce.step", 80); // node 2
    let u = Universe::new(Topology::new(3), plan);
    let c = cfg.clone();
    let handles = u
        .spawn_batch(9, move |p| run_forward_worker(&p, &c, false))
        .unwrap();
    let mut completed = 0;
    let mut excluded = 0;
    let mut died = 0;
    for h in handles {
        match h.join().exit {
            WorkerExit::Completed(s) => {
                completed += 1;
                assert_eq!(s.final_world, 3, "only node 1 remains");
            }
            WorkerExit::Excluded(_) => excluded += 1,
            WorkerExit::Died => died += 1,
            WorkerExit::Aborted(_) => panic!("default min_workers must never abort"),
        }
    }
    assert_eq!((completed, excluded, died), (3, 4, 2));
}
