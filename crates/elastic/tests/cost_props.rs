//! Property tests for the recovery-policy cost model and engine.
//!
//! The policy layer's correctness argument leans on three analytic
//! properties — the scoring is a *pure deterministic* function of its
//! inputs, recovery cost is *monotone* in checkpoint age (rollback pays
//! for staleness) and in group size (reconfiguration pays per rank), and
//! infeasible arms can *never* win. Each property is swept over a
//! SplitMix64-derived input grid so a failure is replayable by case
//! number alone.

use elastic::{PolicyEngine, PolicyInputs, PolicyMode, RecoveryCostModel};
use ulfm::RecoveryArm;

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized-but-deterministic input point, always feasible for every
/// arm (spares and a checkpoint both exist) unless the test strips them.
fn inputs_for(case: u64) -> PolicyInputs {
    let mut s = 0xDEAD_BEEF ^ (case << 3);
    let mut pick = |m: u64| splitmix64(&mut s) % m;
    PolicyInputs {
        world: 2 + pick(62) as usize,
        lost: 1 + pick(3) as usize,
        spares: 1 + pick(4) as usize,
        has_ckpt: true,
        ckpt_age_steps: pick(50),
        remaining_steps: 1 + pick(5000),
        step_time: 1e-4 * (1 + pick(1000)) as f64,
        state_bytes: 1024.0 * (1 + pick(4096)) as f64,
        perturb_rate: pick(100) as f64 / 400.0,
    }
}

const ARMS: [RecoveryArm; 3] = [
    RecoveryArm::Shrink,
    RecoveryArm::PromoteSpares,
    RecoveryArm::Rollback,
];

#[test]
fn rollback_cost_is_monotone_in_checkpoint_age() {
    let m = RecoveryCostModel::default();
    for case in 0..200 {
        let base = inputs_for(case);
        let mut prev = f64::NEG_INFINITY;
        for age in [0u64, 1, 2, 5, 10, 50, 500] {
            let c = m.recovery_cost(
                RecoveryArm::Rollback,
                &PolicyInputs {
                    ckpt_age_steps: age,
                    ..base
                },
            );
            assert!(
                c >= prev,
                "case {case}: rollback got cheaper with a staler checkpoint \
                 (age {age}: {c} < {prev})"
            );
            prev = c;
        }
    }
}

#[test]
fn every_arm_cost_is_monotone_in_group_size() {
    // Reconfiguration (revoke/agree/shrink) and the sync collectives all
    // pay per rank, so each arm's execution cost must grow with the group.
    let m = RecoveryCostModel::default();
    for case in 0..200 {
        let base = inputs_for(case);
        for arm in ARMS {
            let mut prev = f64::NEG_INFINITY;
            for world in [2usize, 4, 8, 16, 64, 256] {
                let c = m.recovery_cost(arm, &PolicyInputs { world, ..base });
                assert!(
                    c >= prev,
                    "case {case}: {arm:?} got cheaper on a bigger group \
                     (world {world}: {c} < {prev})"
                );
                prev = c;
            }
        }
    }
}

#[test]
fn perturbation_inflates_every_communication_bound_arm() {
    // A lossy fabric retransmits: each arm's cost on a perturbed link must
    // be at least its clean-link cost.
    let m = RecoveryCostModel::default();
    for case in 0..200 {
        let clean = PolicyInputs {
            perturb_rate: 0.0,
            ..inputs_for(case)
        };
        let lossy = PolicyInputs {
            perturb_rate: 0.5,
            ..clean
        };
        for arm in ARMS {
            assert!(
                m.recovery_cost(arm, &lossy) >= m.recovery_cost(arm, &clean),
                "case {case}: {arm:?} got cheaper on a lossy link"
            );
        }
    }
}

#[test]
fn choice_is_deterministic() {
    // The engine is a pure function: the same inputs always yield the same
    // arm, across calls and across engine copies. (This is what lets only
    // the leader's hint matter — any replica scoring the same inputs would
    // have picked the same arm.)
    for mode in [
        PolicyMode::Adaptive,
        PolicyMode::Static(RecoveryArm::Rollback),
        PolicyMode::Static(RecoveryArm::PromoteSpares),
    ] {
        for case in 0..300 {
            let inp = inputs_for(case);
            let first = PolicyEngine::new(mode).choose(&inp);
            for _ in 0..3 {
                assert_eq!(
                    PolicyEngine::new(mode).choose(&inp),
                    first,
                    "nondeterministic choice for case {case} under {mode:?}"
                );
            }
        }
    }
}

#[test]
fn infeasible_arms_never_win() {
    for case in 0..300 {
        let no_spares = PolicyInputs {
            spares: 0,
            ..inputs_for(case)
        };
        assert_ne!(
            PolicyEngine::new(PolicyMode::Adaptive).choose(&no_spares),
            RecoveryArm::PromoteSpares,
            "case {case}: promotion chosen with a cold pool"
        );
        let no_ckpt = PolicyInputs {
            has_ckpt: false,
            ..inputs_for(case)
        };
        assert_ne!(
            PolicyEngine::new(PolicyMode::Adaptive).choose(&no_ckpt),
            RecoveryArm::Rollback,
            "case {case}: rollback chosen without a checkpoint"
        );
    }
}

#[test]
fn adaptive_choice_is_the_score_argmin() {
    // `choose` and `scores` must agree — the regret bench trusts `scores`
    // to explain what `choose` did.
    for case in 0..300 {
        let inp = inputs_for(case);
        let e = PolicyEngine::new(PolicyMode::Adaptive);
        let chosen = e.choose(&inp);
        let best =
            e.scores(&inp)
                .iter()
                .fold((RecoveryArm::Shrink, f64::INFINITY), |acc, &(a, s)| {
                    if s < acc.1 {
                        (a, s)
                    } else {
                        acc
                    }
                });
        assert_eq!(chosen, best.0, "case {case}");
    }
}

#[test]
fn feasible_scores_are_finite_and_infeasible_infinite() {
    let m = RecoveryCostModel::default();
    for case in 0..200 {
        let inp = inputs_for(case);
        for arm in ARMS {
            assert!(
                m.score(arm, &inp).is_finite(),
                "case {case}: feasible {arm:?} scored non-finite"
            );
        }
        let bare = PolicyInputs {
            spares: 0,
            has_ckpt: false,
            ..inp
        };
        assert!(m
            .recovery_cost(RecoveryArm::PromoteSpares, &bare)
            .is_infinite());
        assert!(m.recovery_cost(RecoveryArm::Rollback, &bare).is_infinite());
        assert!(
            m.recovery_cost(RecoveryArm::Shrink, &bare).is_finite(),
            "shrink must have no preconditions — it is the fallback backstop"
        );
    }
}

#[test]
fn promotion_alone_forfeits_no_throughput() {
    let m = RecoveryCostModel::default();
    for case in 0..200 {
        let inp = inputs_for(case);
        assert_eq!(m.deficit(RecoveryArm::PromoteSpares, &inp), 0.0);
        assert!(m.deficit(RecoveryArm::Shrink, &inp) > 0.0);
        assert!(m.deficit(RecoveryArm::Rollback, &inp) > 0.0);
    }
}
