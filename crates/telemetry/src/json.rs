//! Minimal JSON writer (no serde): objects, arrays, strings, and unsigned
//! integers — the full value set `telemetry.json` needs. The writer
//! tracks whether a separator comma is due, so callers just emit
//! key/value pairs in order.

/// Streaming JSON document builder.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: bool,
}

impl JsonWriter {
    /// New empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
        self.needs_comma = true;
    }

    /// Open `{`.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma = false;
    }

    /// Close `}`.
    pub fn end_object(&mut self) {
        self.out.push('}');
        self.needs_comma = true;
    }

    /// Open `[`.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma = false;
    }

    /// Close `]`.
    pub fn end_array(&mut self) {
        self.out.push(']');
        self.needs_comma = true;
    }

    /// Emit an object key (the following call emits its value).
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.push_escaped(k);
        self.out.push(':');
        self.needs_comma = false;
    }

    /// Emit a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.push_escaped(s);
    }

    /// Emit an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Consume the writer, returning the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_renders() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.uint(1);
        w.key("b");
        w.begin_array();
        w.uint(2);
        w.string("x");
        w.begin_object();
        w.end_object();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":[2,"x",{}]}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
