//! Dependency-free metrics/tracing runtime for the elastic-ulfm stack.
//!
//! Everything lives in one process-global [`Registry`]:
//!
//! * [`Counter`] — a named monotonic `AtomicU64`; the hot-path cost of an
//!   increment is one relaxed atomic add. Call sites that fire per-message
//!   cache the `Arc<Counter>` instead of re-resolving the name.
//! * [`Histogram`] — 64 fixed log₂ buckets plus count/sum/min/max, all
//!   atomics, no locks on the record path. Durations are recorded in
//!   nanoseconds; byte sizes and round counts record raw values.
//! * [`span`] — an RAII guard that times a scope into the histogram of the
//!   same name (`drop` records). [`time`] is the closure-shaped variant.
//! * [`Episode`] — one recovery episode (forward redo, backward rollback,
//!   or join) with its per-phase durations; mirrors
//!   `elastic::profiler::RecoveryBreakdown` so the two reconcile exactly.
//!
//! [`snapshot`] captures the registry as plain data and renders it as JSON
//! (hand-rolled writer, no serde) for `telemetry.json`. [`reset`] zeroes
//! every metric in place — registered `Arc`s stay live — which is what the
//! determinism tests lean on to compare two runs inside one process.
//!
//! Naming convention: dot-separated `layer.object.metric`, e.g.
//! `transport.msgs_sent`, `coll.allreduce.ring.latency_ns`,
//! `ulfm.agree.rounds`, `gloo.rendezvous.duration_ns`, `elastic.step_ns`.

mod json;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use json::JsonWriter;

/// A named monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

const BUCKETS: usize = 64;

/// Lock-free histogram over `u64` values with fixed log₂ buckets.
///
/// Bucket `i` holds values whose bit length is `i` (bucket 0 holds the
/// value 0), i.e. bucket boundaries are powers of two. That is coarse but
/// stable, cheap, and good enough to separate "microseconds" from
/// "milliseconds" — the resolution the paper's breakdowns need.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one raw value.
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration, in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| BucketCount {
                        floor: if i == 0 { 0 } else { 1u64 << (i - 1) },
                        count: n,
                    })
                })
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// One non-empty histogram bucket: `floor` is the inclusive lower bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket (a power of two, or 0).
    pub floor: u64,
    /// Number of values that fell in the bucket.
    pub count: u64,
}

/// Plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets, ascending by floor.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One phase of a recovery episode (mirrors `profiler::Phase`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpisodePhase {
    /// Phase name, e.g. `revoke`, `agree`, `rendezvous`.
    pub name: &'static str,
    /// Phase duration in nanoseconds.
    pub ns: u64,
}

/// One traced recovery episode: what kind, where, and its cost breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Episode {
    /// Episode kind: `forward`, `backward`, or `join`.
    pub kind: &'static str,
    /// Rank that recorded the episode.
    pub rank: usize,
    /// Training step at which the episode began.
    pub at_step: u64,
    /// Recovery arm committed by the policy layer for this episode
    /// (`"shrink"`, `"spare"`, `"rollback"`, or a fallback chain like
    /// `"spare->shrink"`). `None` when no policy round ran.
    pub policy: Option<&'static str>,
    /// Ordered per-phase costs.
    pub phases: Vec<EpisodePhase>,
}

impl Episode {
    /// Total episode cost in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.ns).sum()
    }
}

/// The process-global metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    episodes: Mutex<Vec<Episode>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Get or create the counter named `name`. Cache the `Arc` on hot paths.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry().counters.lock().expect("telemetry lock");
    if let Some(c) = map.get(name) {
        return Arc::clone(c);
    }
    let c = Arc::new(Counter::default());
    map.insert(name.to_string(), Arc::clone(&c));
    c
}

/// Get or create the histogram named `name`. Cache the `Arc` on hot paths.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().expect("telemetry lock");
    if let Some(h) = map.get(name) {
        return Arc::clone(h);
    }
    let h = Arc::new(Histogram::default());
    map.insert(name.to_string(), Arc::clone(&h));
    h
}

/// Record a completed recovery episode.
pub fn record_episode(episode: Episode) {
    registry()
        .episodes
        .lock()
        .expect("telemetry lock")
        .push(episode);
}

/// RAII scope timer: `drop` records the elapsed time (ns) into the
/// histogram named at construction.
pub struct SpanGuard {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanGuard {
    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Start timing a scope into the histogram `name`.
pub fn span(name: &str) -> SpanGuard {
    SpanGuard {
        hist: histogram(name),
        start: Instant::now(),
    }
}

/// Time a closure into the histogram `name` and return its result.
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let _guard = span(name);
    f()
}

/// Plain-data copy of the whole registry at one instant.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Recovery episodes in record order.
    pub episodes: Vec<Episode>,
}

impl Snapshot {
    /// Sum of `total_ns` over episodes of the given kind.
    pub fn episode_total_ns(&self, kind: &str) -> u64 {
        self.episodes
            .iter()
            .filter(|e| e.kind == kind)
            .map(Episode::total_ns)
            .sum()
    }

    /// Render as a JSON document (see EXPERIMENTS.md for the schema).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("version");
        w.uint(1);
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.uint(*value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.uint(h.count);
            w.key("sum");
            w.uint(h.sum);
            w.key("min");
            w.uint(h.min);
            w.key("max");
            w.uint(h.max);
            w.key("buckets");
            w.begin_array();
            for b in &h.buckets {
                w.begin_array();
                w.uint(b.floor);
                w.uint(b.count);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.key("episodes");
        w.begin_array();
        for e in &self.episodes {
            w.begin_object();
            w.key("kind");
            w.string(e.kind);
            w.key("rank");
            w.uint(e.rank as u64);
            w.key("at_step");
            w.uint(e.at_step);
            if let Some(p) = e.policy {
                w.key("policy");
                w.string(p);
            }
            w.key("total_ns");
            w.uint(e.total_ns());
            w.key("phases");
            w.begin_array();
            for p in &e.phases {
                w.begin_object();
                w.key("name");
                w.string(p.name);
                w.key("ns");
                w.uint(p.ns);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Capture the registry as plain data.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("telemetry lock")
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("telemetry lock")
        .iter()
        .map(|(k, v)| (k.clone(), v.snapshot()))
        .collect();
    let episodes = reg.episodes.lock().expect("telemetry lock").clone();
    Snapshot {
        counters,
        histograms,
        episodes,
    }
}

/// Zero every metric in place and clear the episode log. Previously
/// returned `Arc<Counter>`/`Arc<Histogram>` handles stay registered, so
/// call sites that cached them keep reporting into the same names.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("telemetry lock").values() {
        c.reset();
    }
    for h in reg.histograms.lock().expect("telemetry lock").values() {
        h.reset();
    }
    reg.episodes.lock().expect("telemetry lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this binary share the global registry; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = lock();
        reset();
        let c = counter("test.counter");
        c.incr();
        c.add(4);
        assert_eq!(counter("test.counter").get(), 5);
        reset();
        assert_eq!(c.get(), 0);
        // The cached Arc still reports into the registry after reset.
        c.add(2);
        assert_eq!(snapshot().counters["test.counter"], 2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _g = lock();
        reset();
        let h = histogram("test.hist");
        for v in [0u64, 1, 1, 3, 900, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1905);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0 -> bucket floor 0; 1,1 -> floor 1; 3 -> floor 2; 900,1000 -> floor 512.
        assert_eq!(
            s.buckets,
            vec![
                BucketCount { floor: 0, count: 1 },
                BucketCount { floor: 1, count: 2 },
                BucketCount { floor: 2, count: 1 },
                BucketCount {
                    floor: 512,
                    count: 2
                },
            ]
        );
        assert!((s.mean() - 1905.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn span_records_into_histogram() {
        let _g = lock();
        reset();
        {
            let _s = span("test.span");
            std::thread::sleep(Duration::from_millis(2));
        }
        let got = time("test.span", || 7);
        assert_eq!(got, 7);
        let s = histogram("test.span").snapshot();
        assert_eq!(s.count, 2);
        assert!(
            s.max >= 1_000_000,
            "sleep should register >= 1ms, got {s:?}"
        );
    }

    #[test]
    fn episodes_round_trip_through_snapshot() {
        let _g = lock();
        reset();
        record_episode(Episode {
            kind: "forward",
            rank: 3,
            at_step: 7,
            policy: None,
            phases: vec![
                EpisodePhase {
                    name: "revoke",
                    ns: 10,
                },
                EpisodePhase {
                    name: "agree",
                    ns: 30,
                },
            ],
        });
        let s = snapshot();
        assert_eq!(s.episodes.len(), 1);
        assert_eq!(s.episodes[0].total_ns(), 40);
        assert_eq!(s.episode_total_ns("forward"), 40);
        assert_eq!(s.episode_total_ns("backward"), 0);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let _g = lock();
        reset();
        counter("json.counter").add(3);
        histogram("json.hist").record(5);
        record_episode(Episode {
            kind: "backward",
            rank: 0,
            at_step: 2,
            policy: Some("spare"),
            phases: vec![EpisodePhase {
                name: "rendezvous",
                ns: 99,
            }],
        });
        let doc = snapshot().to_json();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"json.counter\":3"));
        assert!(doc.contains("\"kind\":\"backward\""));
        assert!(doc.contains("\"total_ns\":99"));
        // Balanced braces/brackets (no string in the doc contains them).
        let opens = doc.matches('{').count() + doc.matches('[').count();
        let closes = doc.matches('}').count() + doc.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let _g = lock();
        reset();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let c = counter("test.concurrent");
                    let h = histogram("test.concurrent.h");
                    for i in 0..1000u64 {
                        c.incr();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(counter("test.concurrent").get(), 8000);
        assert_eq!(histogram("test.concurrent.h").count(), 8000);
    }
}
