//! Checkpoint save/restore costs vs model size — the baseline's rollback
//! terms in Eq. (1), and why they grow with the Table 1 models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dnn::{Checkpoint, Model, Sgd, SyntheticDataset};

fn model_of_size(hidden: usize) -> (Model, Sgd) {
    let mut m = Model::mlp(64, &[hidden, hidden], 8, 7);
    let mut o = Sgd::new(0.05, 0.9);
    let ds = SyntheticDataset::new(64, 8, 3);
    // One step so momentum buffers exist (checkpoints carry them).
    m.compute_gradients(&ds.batch(0, 8));
    o.step(&mut m.params_mut());
    (m, o)
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    for &hidden in &[64usize, 256, 1024] {
        let (m, o) = model_of_size(hidden);
        let bytes = Checkpoint::capture(&m, &o).size_bytes() as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::new("capture", hidden), &hidden, |b, _| {
            b.iter(|| Checkpoint::capture(&m, &o).size_bytes());
        });
        let ckpt = Checkpoint::capture(&m, &o);
        group.bench_with_input(BenchmarkId::new("restore", hidden), &hidden, |b, _| {
            let (mut m2, mut o2) = model_of_size(hidden);
            b.iter(|| {
                ckpt.restore(&mut m2, &mut o2);
                o2.step_count()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_checkpoint
}
criterion_main!(benches);
