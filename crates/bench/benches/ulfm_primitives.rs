//! Cost of the ULFM recovery primitives (agree, shrink, revoke+shrink) as
//! a function of group size — the mechanism behind the flat ULFM bars in
//! the paper's figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ulfm::{Proc, Topology, Universe};

fn bench_agree(c: &mut Criterion) {
    let mut group = c.benchmark_group("agree");
    group.sample_size(10);
    for &p in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let u = Universe::without_faults(Topology::flat());
                let handles = u
                    .spawn_batch(p, |proc: Proc| {
                        let comm = proc.init_comm();
                        comm.agree(u64::MAX, proc.rank().0 as u64).unwrap().min
                    })
                    .unwrap();
                handles.into_iter().map(|h| h.join()).sum::<u64>()
            });
        });
    }
    group.finish();
}

fn bench_shrink(c: &mut Criterion) {
    let mut group = c.benchmark_group("revoke_shrink");
    group.sample_size(10);
    for &p in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let u = Universe::without_faults(Topology::flat());
                let handles = u
                    .spawn_batch(p, |proc: Proc| {
                        let comm = proc.init_comm();
                        comm.revoke();
                        let shrunk = comm.shrink().unwrap();
                        shrunk.size()
                    })
                    .unwrap();
                handles.into_iter().map(|h| h.join()).sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_agree, bench_shrink
}
criterion_main!(benches);
