//! The headline comparison on the threaded runtime: end-to-end training
//! through one failure, forward recovery vs backward recovery (the
//! wall-clock analogue of the paper's Figures 5–7 bars).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, RecoveryPolicy, ScenarioConfig, TrainSpec};

fn scenario(engine: Engine, policy: RecoveryPolicy) -> ScenarioConfig {
    ScenarioConfig {
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            ..TrainSpec::default()
        },
        workers: 6,
        ranks_per_node: 3,
        policy,
        victim: 4,
        fail_at_op: 7,
        ..ScenarioConfig::quick(engine, ScenarioKind::Downscale)
    }
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("downscale_recovery");
    group.sample_size(10);
    for (engine, name) in [
        (Engine::UlfmForward, "ulfm_forward"),
        (Engine::GlooBackward, "gloo_backward"),
    ] {
        for (policy, level) in [
            (RecoveryPolicy::DropProcess, "process"),
            (RecoveryPolicy::DropNode, "node"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, level),
                &(engine, policy),
                |b, &(engine, policy)| {
                    b.iter(|| {
                        let res = run_scenario(&scenario(engine, policy));
                        assert!(res.completed() > 0);
                        res.wall
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_recovery
}
criterion_main!(benches);
