//! The crux of the paper's Fig. 4: rebuilding the communication context by
//! KV rendezvous + full-mesh Gloo reconnect vs ULFM's shrink. Measured on
//! the threaded runtime at matching group sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gloo::{rendezvous, Context, KvStore, RendezvousConfig};
use std::sync::Arc;
use std::time::Duration;
use transport::{Endpoint, Fabric, Topology};
use ulfm::{Proc, Universe};

fn bench_gloo_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_rebuild");
    group.sample_size(10);
    for &p in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("gloo_rendezvous", p), &p, |b, &p| {
            b.iter(|| {
                let fabric = Fabric::without_faults(Topology::new(4));
                let ranks = fabric.register_ranks(p);
                let store = KvStore::shared();
                std::thread::scope(|s| {
                    let handles: Vec<_> = ranks
                        .iter()
                        .map(|&r| {
                            let fabric = Arc::clone(&fabric);
                            let store = Arc::clone(&store);
                            let ranks = ranks.clone();
                            s.spawn(move || {
                                let cfg = RendezvousConfig {
                                    run_id: "bench".into(),
                                    epoch: 0,
                                    expected: ranks.len(),
                                    timeout: Duration::from_secs(10),
                                };
                                let rep = rendezvous(&store, &cfg, r, Topology::new(4)).unwrap();
                                let ep = Endpoint::new(fabric, r);
                                let ctx =
                                    Context::connect(ep, 1, rep.members, rep.my_rank).unwrap();
                                ctx.size()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .sum::<usize>()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("ulfm_shrink", p), &p, |b, &p| {
            b.iter(|| {
                let u = Universe::without_faults(Topology::new(4));
                let handles = u
                    .spawn_batch(p, |proc: Proc| {
                        let comm = proc.init_comm();
                        comm.revoke();
                        comm.shrink().unwrap().size()
                    })
                    .unwrap();
                handles.into_iter().map(|h| h.join()).sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_gloo_rebuild
}
criterion_main!(benches);
