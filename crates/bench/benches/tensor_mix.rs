//! Per-step allreduce cost of the Table 1 models' tensor-size mixes
//! (scaled down 1000×): VGG-16's few huge tensors vs NasNetMobile's 1126
//! tiny ones. This is the paper's §4.1 rationale for choosing those
//! models — "their trainable parameter size directly influences the count
//! of Allreduce operations".

use collectives::{AllreduceAlgo, ReduceOp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnn::paper_models;
use ulfm::{Proc, Topology, Universe};

fn bench_tensor_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_allreduce_mix");
    group.sample_size(10);
    for profile in paper_models() {
        let scaled = profile.scaled_down(1000);
        let sizes: Vec<usize> = scaled.tensor_sizes().iter().map(|&s| s as usize).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name),
            &sizes,
            |b, sizes| {
                b.iter(|| {
                    let u = Universe::without_faults(Topology::flat());
                    let sizes = sizes.clone();
                    let handles = u
                        .spawn_batch(4, move |p: Proc| {
                            let comm = p.init_comm();
                            let mut sum = 0.0f32;
                            for &n in &sizes {
                                let mut buf = vec![1.0f32; n];
                                comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring)
                                    .unwrap();
                                sum += buf[0];
                            }
                            sum
                        })
                        .unwrap();
                    handles.into_iter().map(|h| h.join()).sum::<f32>()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_tensor_mix
}
criterion_main!(benches);
