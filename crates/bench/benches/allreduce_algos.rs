//! Ablation: allreduce algorithm choice on the threaded runtime.
//!
//! Reproduces the classic latency/bandwidth crossover that motivates
//! Horovod's (and our engines') algorithm selection: recursive doubling
//! wins for small tensors, ring for large ones.

use collectives::{AllreduceAlgo, ReduceOp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ulfm::{Proc, Topology, Universe};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for &elems in &[256usize, 262_144] {
        for algo in [
            AllreduceAlgo::Ring,
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::Rabenseifner,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), elems),
                &elems,
                |b, &elems| {
                    b.iter(|| {
                        let u = Universe::without_faults(Topology::flat());
                        let handles = u
                            .spawn_batch(8, move |p: Proc| {
                                let comm = p.init_comm();
                                let mut buf = vec![1.0f32; elems];
                                for _ in 0..4 {
                                    comm.allreduce(&mut buf, ReduceOp::Sum, algo).unwrap();
                                }
                                buf[0]
                            })
                            .unwrap();
                        handles.into_iter().map(|h| h.join()).sum::<f32>()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_allreduce
}
criterion_main!(benches);
