//! Flat vs hierarchical allreduce on the threaded runtime — the Horovod
//! optimization for Summit's 6-GPUs-per-node shape.

use collectives::{AllreduceAlgo, ReduceOp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ulfm::{Hierarchy, Proc, Topology, Universe};

fn bench_hierarchical(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_vs_hierarchical");
    group.sample_size(10);
    let elems = 65_536usize;
    for &(workers, rpn) in &[(8usize, 4usize), (12, 4), (12, 6)] {
        group.bench_with_input(
            BenchmarkId::new("flat", format!("{workers}w_{rpn}pn")),
            &(workers, rpn),
            |b, &(workers, rpn)| {
                b.iter(|| {
                    let u = Universe::without_faults(Topology::new(rpn));
                    let handles = u
                        .spawn_batch(workers, move |p: Proc| {
                            let comm = p.init_comm();
                            let mut buf = vec![1.0f32; elems];
                            for _ in 0..3 {
                                comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring)
                                    .unwrap();
                            }
                            buf[0]
                        })
                        .unwrap();
                    handles.into_iter().map(|h| h.join()).sum::<f32>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hierarchical", format!("{workers}w_{rpn}pn")),
            &(workers, rpn),
            |b, &(workers, rpn)| {
                b.iter(|| {
                    let u = Universe::without_faults(Topology::new(rpn));
                    let handles = u
                        .spawn_batch(workers, move |p: Proc| {
                            let comm = p.init_comm();
                            let h = Hierarchy::build(&comm).unwrap();
                            let mut buf = vec![1.0f32; elems];
                            for _ in 0..3 {
                                comm.hier_allreduce(
                                    &h,
                                    &mut buf,
                                    ReduceOp::Sum,
                                    AllreduceAlgo::Ring,
                                )
                                .unwrap();
                            }
                            buf[0]
                        })
                        .unwrap();
                    handles.into_iter().map(|h| h.join()).sum::<f32>()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_hierarchical
}
criterion_main!(benches);
