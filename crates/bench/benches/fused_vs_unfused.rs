//! Fused vs unfused gradient aggregation over the Table 1 model tensor
//! mixes (scaled down 1000×). Unfused launches one ring allreduce per
//! trainable tensor — up to 1126 for NasNetMobile; fused packs the same
//! payload into Horovod-style buckets and launches one size-adaptive
//! `Auto` allreduce per bucket. The gap is the paper-stack's motivation
//! for the fusion pipeline: latency terms dominate for small-tensor
//! models, so collapsing message count wins most where tensors are
//! smallest.

use collectives::{AllreduceAlgo, ReduceOp, DEFAULT_FUSION_BYTES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnn::paper_models;
use ulfm::{Proc, Topology, Universe};

fn run_steps(workers: usize, lens: Vec<usize>, algo: AllreduceAlgo) -> f32 {
    let u = Universe::without_faults(Topology::flat());
    let handles = u
        .spawn_batch(workers, move |p: Proc| {
            let comm = p.init_comm();
            let mut sink = 0.0f32;
            for &n in &lens {
                let mut buf = vec![1.0f32; n];
                comm.allreduce(&mut buf, ReduceOp::Sum, algo).unwrap();
                sink += buf.first().copied().unwrap_or(0.0);
            }
            sink
        })
        .unwrap();
    handles.into_iter().map(|h| h.join()).sum()
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_unfused");
    group.sample_size(10);
    for profile in paper_models() {
        let scaled = profile.scaled_down(1000);
        let (sizes, plan) = bench::fusion_schedule(&scaled, DEFAULT_FUSION_BYTES);
        let bucket_lens: Vec<usize> = plan.iter().map(|r| sizes[r.clone()].iter().sum()).collect();

        group.bench_with_input(
            BenchmarkId::new("unfused_ring", profile.name),
            &sizes,
            |b, sizes| b.iter(|| run_steps(4, sizes.clone(), AllreduceAlgo::Ring)),
        );
        group.bench_with_input(
            BenchmarkId::new("fused_auto", profile.name),
            &bucket_lens,
            |b, lens| b.iter(|| run_steps(4, lens.clone(), AllreduceAlgo::auto())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fused_vs_unfused
}
criterion_main!(benches);
