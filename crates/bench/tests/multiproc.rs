//! Multi-process recovery integration tests.
//!
//! These drive the real `repro launch` / `repro worker` binaries: N
//! separate OS processes form a socket mesh through the network rendezvous
//! store, one (or two) of them are SIGKILLed mid-training by the scripted
//! fault plan, and the survivors must detect the loss through socket
//! EOF/timeout, run revoke → agree → shrink, and finish with bit-identical
//! replicas.
//!
//! The launcher audits the run itself (exit code 0 only when every victim
//! died and every survivor completed with matching fingerprints); the test
//! additionally re-parses the per-rank result files so a launcher bug
//! cannot silently vacuously pass.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Wall-clock bound for one launch, overridable for slow CI machines with
/// the same knob the chaos suites use.
fn watchdog() -> Duration {
    let secs = std::env::var("CHAOS_WATCHDOG_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120u64);
    Duration::from_secs(secs)
}

fn outdir(case: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("multiproc")
        .join(case);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create outdir");
    dir
}

/// Run `repro launch` with a watchdog; return its exit code.
fn launch(args: &[&str], dir: &Path) -> i32 {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("launch")
        .args(args)
        .arg("--outdir")
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro launch");
    let deadline = Instant::now() + watchdog();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => return status.code().unwrap_or(-1),
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!(
                    "repro launch {:?} exceeded the {}s watchdog (override with \
                     CHAOS_WATCHDOG_SECS); worker logs in {}",
                    args,
                    watchdog().as_secs(),
                    dir.display()
                );
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Parse `result-{rank}.txt` files into rank → (exit label, fingerprint).
fn results(dir: &Path, n: usize) -> BTreeMap<usize, (String, Option<String>)> {
    let mut out = BTreeMap::new();
    for rank in 0..n {
        let path = dir.join(format!("result-{rank}.txt"));
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let mut exit = String::new();
        let mut fp = None;
        for tok in text.split_whitespace() {
            if let Some(v) = tok.strip_prefix("exit=") {
                exit = v.to_string();
            } else if let Some(v) = tok.strip_prefix("fp=") {
                fp = Some(v.to_string());
            }
        }
        out.insert(rank, (exit, fp));
    }
    out
}

fn assert_survivors_identical(
    results: &BTreeMap<usize, (String, Option<String>)>,
    victims: &[usize],
    world: usize,
) {
    let mut fingerprints = Vec::new();
    for (&rank, (exit, fp)) in results {
        if victims.contains(&rank) {
            // A victim either reported its own death or was SIGKILLed
            // before reporting (empty file). It must NOT have completed.
            assert_ne!(
                exit, "completed",
                "victim rank {rank} completed — the scripted kill never fired"
            );
        } else {
            assert_eq!(
                exit, "completed",
                "survivor rank {rank} did not complete: {exit:?}"
            );
            fingerprints.push((rank, fp.clone().expect("survivor fingerprint")));
        }
    }
    assert_eq!(
        fingerprints.len(),
        world - victims.len(),
        "every survivor must report"
    );
    let first = &fingerprints[0].1;
    for (rank, fp) in &fingerprints {
        assert_eq!(
            fp, first,
            "rank {rank} replica diverged: {fp} != {first} — replicas must be bit-identical"
        );
    }
}

/// Read one counter back out of a worker's `telemetry-{rank}.json` dump.
/// The hand-rolled schema nests counters under `"counters"` as flat
/// `"name": value` pairs, so a token scan suffices.
fn telemetry_counter(dir: &Path, rank: usize, name: &str) -> u64 {
    let path = dir.join(format!("telemetry-{rank}.json"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let needle = format!("\"{name}\":");
    let Some(at) = text.find(&needle) else {
        return 0;
    };
    text[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Every completed recovery must have resolved in exactly one view change:
/// the shrink-generation counter (`iterations`) equals the completed-shrink
/// counter, and the lattice protocol actually ran.
fn assert_one_view_change_per_recovery(dir: &Path, survivors: &[usize]) {
    for &rank in survivors {
        let iterations = telemetry_counter(dir, rank, "ulfm.shrink.iterations");
        let completions = telemetry_counter(dir, rank, "ulfm.shrink.completions");
        let lattice_rounds = telemetry_counter(dir, rank, "ulfm.lattice.rounds");
        assert!(completions >= 1, "rank {rank} never completed a shrink");
        assert_eq!(
            iterations, completions,
            "rank {rank}: the burst took {iterations} shrink generations across \
             {completions} recoveries — lattice must absorb it in one view change each"
        );
        assert!(
            lattice_rounds > 0,
            "rank {rank}: --agree lattice was requested but no lattice rounds ran"
        );
    }
}

#[test]
fn sigkill_burst_2_of_5_lattice_resolves_in_one_view_change() {
    // Rank 1 is SIGKILLed mid-allreduce; rank 3 is SIGKILLed *inside* the
    // recovery agreement that rank 1's death triggers (its first
    // `lattice.propose` fault point) — a genuine k=2 concurrent burst seen
    // by real processes over real sockets. Under lattice agreement the
    // in-flight proposal widens to cover rank 3, so the survivors install
    // a single view change and finish bit-identical.
    let dir = outdir("burst-2of5-lattice");
    let code = launch(
        &[
            "--n",
            "5",
            "--transport",
            "unix",
            "--steps",
            "12",
            "--min-workers",
            "2",
            "--agree",
            "lattice",
            "--die",
            "1@allreduce.step:5,3@lattice.propose:1",
            "--timeout-secs",
            "90",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 5), &[1, 3], 5);
    assert_one_view_change_per_recovery(&dir, &[0, 2, 4]);
}

#[test]
fn sigkill_burst_3_of_5_lattice_resolves_in_one_view_change() {
    // k=3 of p=5: one death in training, two more mid-agreement. The two
    // survivors must still converge through a single widened view change.
    let dir = outdir("burst-3of5-lattice");
    let code = launch(
        &[
            "--n",
            "5",
            "--transport",
            "tcp",
            "--steps",
            "12",
            "--min-workers",
            "2",
            "--agree",
            "lattice",
            "--die",
            "1@allreduce.step:5,2@lattice.propose:1,3@lattice.propose:1",
            "--timeout-secs",
            "90",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 5), &[1, 2, 3], 5);
    assert_one_view_change_per_recovery(&dir, &[0, 4]);
}

#[test]
fn clean_run_p3_under_lattice_agreement() {
    // The lattice protocol as the *only* agreement implementation across a
    // full multi-process run (including any failure-free commit paths) —
    // survivors must finish exactly as under flood.
    let dir = outdir("clean-p3-lattice");
    let code = launch(
        &[
            "--n",
            "3",
            "--transport",
            "tcp",
            "--steps",
            "12",
            "--min-workers",
            "2",
            "--agree",
            "lattice",
            "--timeout-secs",
            "60",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 3), &[], 3);
}

#[test]
fn sigkill_mid_allreduce_p3_survivors_shrink_and_finish() {
    let dir = outdir("kill-mid-allreduce-p3");
    let code = launch(
        &[
            "--n",
            "3",
            "--transport",
            "unix",
            "--steps",
            "12",
            "--min-workers",
            "2",
            "--die",
            "1@allreduce.step:5",
            "--timeout-secs",
            "60",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 3), &[1], 3);
}

#[test]
fn sigkill_mid_allreduce_and_mid_recovery_p4() {
    // Rank 1 dies in the 5th allreduce; rank 3 dies inside the *recovery*
    // that rank 1's death triggers (the first shrink attempt) — a cascade.
    // The remaining two workers must shrink twice and still agree.
    let dir = outdir("kill-mid-recovery-p4");
    let code = launch(
        &[
            "--n",
            "4",
            "--transport",
            "tcp",
            "--steps",
            "12",
            "--min-workers",
            "2",
            "--die",
            "1@allreduce.step:5,3@shrink.attempt:1",
            "--timeout-secs",
            "60",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 4), &[1, 3], 4);
}

#[test]
fn upscale_spare_joins_p3_and_matches_members() {
    // A warm spare (rank 3) is spawned alongside the three members; it
    // dials in through the store, announces, and is admitted at the first
    // epoch boundary. All four processes must finish bit-identical.
    let dir = outdir("upscale-spare-p3");
    let code = launch(
        &[
            "--n",
            "3",
            "--transport",
            "tcp",
            "--steps",
            "8",
            "--min-workers",
            "2",
            "--spares",
            "1",
            "--timeout-secs",
            "60",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 4), &[], 4);
}

#[test]
fn replace_killed_worker_p3_with_spawned_joiner() {
    // True replacement: rank 1 is SIGKILLed mid-allreduce, the survivors
    // shrink (degrading past one joinerless epoch boundary on the short
    // join deadline), and only then does the launcher's `--spawn 3@6`
    // trigger fire — a fresh OS process that joins the shrunk group at the
    // next boundary and finishes in lockstep with the survivors.
    let dir = outdir("replace-killed-p3");
    let code = launch(
        &[
            "--n",
            "3",
            "--transport",
            "unix",
            "--steps",
            "12",
            "--min-workers",
            "2",
            "--die",
            "1@allreduce.step:5",
            "--spawn",
            "3@6",
            "--join-wait-secs",
            "3",
            "--timeout-secs",
            "90",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 4), &[1], 4);
}

#[test]
fn joiner_sigkilled_at_merge_is_survived() {
    // Two spares announce; one is SIGKILLed at its join.merge fault point —
    // after every member committed the merge, before its first synced step.
    // The members and the surviving joiner must shrink the corpse back out
    // and finish identically.
    let dir = outdir("joiner-killed-at-merge");
    let code = launch(
        &[
            "--n",
            "3",
            "--transport",
            "tcp",
            "--steps",
            "8",
            "--min-workers",
            "2",
            "--spares",
            "2",
            "--die",
            "4@join.merge:1",
            "--timeout-secs",
            "90",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 5), &[4], 5);
}

#[test]
fn join_deadline_expiry_degrades_to_shrunk_group() {
    // The members expect a joiner that never spawns. Each epoch boundary
    // waits out the 1s join deadline, the leader commits giving up, and the
    // group continues shrunk instead of wedging. The launcher's self-audit
    // (exit 0) is the acceptance check: all three members completed.
    let dir = outdir("join-deadline-degrades");
    let code = launch(
        &[
            "--n",
            "3",
            "--transport",
            "tcp",
            "--steps",
            "8",
            "--min-workers",
            "2",
            "--expect-joiners",
            "1",
            "--join-wait-secs",
            "1",
            "--timeout-secs",
            "60",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 3), &[], 3);
}

#[test]
fn clean_run_p3_all_complete_identically() {
    let dir = outdir("clean-p3");
    let code = launch(
        &[
            "--n",
            "3",
            "--transport",
            "tcp",
            "--steps",
            "12",
            "--min-workers",
            "2",
            "--timeout-secs",
            "60",
        ],
        &dir,
    );
    assert_eq!(code, 0, "launcher audit failed; logs in {}", dir.display());
    assert_survivors_identical(&results(&dir, 3), &[], 3);
}
