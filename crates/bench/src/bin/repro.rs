//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run -p bench --bin repro --release -- all
//! cargo run -p bench --bin repro --release -- table1 table2 fig2 fig4 fig5 fig6 fig7 eq1
//! cargo run -p bench --bin repro --release -- --perturb drop=0.01,corrupt=0.001,seed=42
//! ```
//!
//! Tables print in paper layout; figures print as the data series behind
//! the paper's bar charts (one row per bar, one column per cost segment).
//! Table 2 and Fig. 2 are *executed* on the threaded runtime; Figs. 4–7
//! come from the Summit-calibrated simulator (see DESIGN.md §1 for the
//! substitution argument).
//!
//! Every run also dumps the stack-wide telemetry registry (counters,
//! latency histograms, recovery episodes) to `telemetry.json` in the
//! current directory — see EXPERIMENTS.md for the schema.

use bench::{
    demonstrate_cell, fmt_s, paper_capability, parse_perturb_spec, render_table, TABLE2_ROWS,
};
use dnn::paper_models;
use elastic::profiler::RecoveryKind;
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, Eq1Params, ScenarioConfig, TrainSpec};
use simnet::{fig4_rows, figure_rows, ClusterModel, Level, SimScenario};

fn main() {
    // Multi-process subcommands dispatch before any section logic: `launch`
    // drives N `worker` child processes through a socket-backed elastic run
    // (see EXPERIMENTS.md "Multi-process runs").
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("worker") => {
            if let Err(e) = bench::multiproc::worker_main(&argv[1..]) {
                eprintln!("worker: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("launch") => match bench::multiproc::launch_main(&argv[1..]) {
            Ok(code) => std::process::exit(code),
            Err(e) => {
                eprintln!("launch: {e}");
                std::process::exit(2);
            }
        },
        _ => {}
    }

    // Split the flag (and its value) off before the section keys, so
    // `repro --perturb drop=0.01 table2` still selects `table2` and a bare
    // `repro --perturb ...` runs only the perturbed scenarios.
    let mut perturb_spec: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--perturb" {
            perturb_spec = Some(raw.next().unwrap_or_else(|| {
                eprintln!("--perturb requires a rate-spec, e.g. drop=0.01,corrupt=0.001,seed=42");
                std::process::exit(2);
            }));
        } else if let Some(v) = a.strip_prefix("--perturb=") {
            perturb_spec = Some(v.to_string());
        } else {
            args.push(a);
        }
    }
    let wants = |k: &str| {
        (args.is_empty() && perturb_spec.is_none()) || args.iter().any(|a| a == k || a == "all")
    };

    if wants("table1") {
        table1();
    }
    if wants("table2") {
        table2();
    }
    if wants("fig2") {
        fig2();
    }
    if wants("fig4") {
        fig4();
    }
    for (key, idx) in [("fig5", 0usize), ("fig6", 1), ("fig7", 2)] {
        if wants(key) {
            figure(key, idx);
        }
    }
    if wants("eq1") {
        eq1();
    }
    if wants("fusion") {
        fusion();
    }
    if wants("ablate") {
        ablate();
    }
    if wants("scenario3") {
        scenario3();
    }
    if wants("cascade") {
        cascade();
    }
    if wants("policy") {
        policy();
    }
    if wants("hier") {
        hier();
    }
    if wants("members") {
        members();
    }
    if let Some(spec) = &perturb_spec {
        match parse_perturb_spec(spec) {
            Ok(plan) => perturbed(plan),
            Err(e) => {
                eprintln!("--perturb: {e}");
                std::process::exit(2);
            }
        }
    }

    dump_telemetry("telemetry.json");
}

/// Run both engines through a fault + recovery scenario over an
/// adversarially perturbed fabric, and record the recovery-episode and
/// wire-protocol counts into the telemetry dump.
fn perturbed(plan: transport::PerturbPlan) {
    println!(
        "== Perturbed recovery scenarios (seed {}) ==\n",
        plan.seed()
    );
    let mut rows = Vec::new();
    for (engine, label) in [
        (Engine::UlfmForward, "ULFM forward"),
        (Engine::GlooBackward, "Elastic Horovod backward"),
    ] {
        let cfg = ScenarioConfig {
            spec: TrainSpec {
                total_steps: 8,
                steps_per_epoch: 4,
                ..TrainSpec::default()
            },
            perturb: Some(plan.clone()),
            ..ScenarioConfig::quick(engine, ScenarioKind::Downscale)
        };
        let res = run_scenario(&cfg);
        res.assert_consistent_state();
        let episodes = res.breakdowns.len() as u64;
        let key = if engine == Engine::UlfmForward {
            "forward"
        } else {
            "backward"
        };
        telemetry::counter(&format!("repro.perturbed.{key}.recovery_episodes")).add(episodes);
        telemetry::counter(&format!("repro.perturbed.{key}.retransmits"))
            .add(res.fabric_stats.retransmits);
        telemetry::counter(&format!("repro.perturbed.{key}.corrupt_frames"))
            .add(res.fabric_stats.corrupt_frames);
        rows.push(vec![
            label.to_string(),
            format!("{}/{}", res.completed(), cfg.workers),
            episodes.to_string(),
            res.fabric_stats.retransmits.to_string(),
            res.fabric_stats.corrupt_frames.to_string(),
            res.fabric_stats.dup_suppressed.to_string(),
            format!("{:?}", res.wall),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Engine",
                "Completed",
                "Recovery episodes",
                "Retransmits",
                "Corrupt frames",
                "Dups suppressed",
                "Wall",
            ],
            &rows
        )
    );
    println!("Replicas stayed bit-identical under the perturbation schedule; corrupted");
    println!("frames were all caught by the checksum and healed by retransmission.\n");
}

/// Cascading-failure schedules: a second kill landing *inside* the
/// recovery machinery (double-kill, kill-during-join, shrink-to-floor).
/// Runs each schedule on both engines and records the outcome into the
/// telemetry dump so CI archives the abort/cascade episodes.
fn cascade() {
    use elastic::{RecoveryKind, WorkerExit};
    use transport::{FaultPlan, RankId};

    println!("== Cascading failures: second kill inside the recovery machinery ==\n");
    let base = |engine, kind, workers: usize, joiners: usize| ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            ..TrainSpec::default()
        },
        workers,
        ranks_per_node: 1,
        joiners,
        victim: 0,
        fail_at_op: 3,
        ..ScenarioConfig::quick(engine, kind)
    };
    // (schedule, engine, second kill, floor) — ULFM-only fault points are
    // paired with the forward engine; the backward engine's recovery fault
    // point is its checkpoint sync.
    let schedules = [
        (
            "double-kill",
            Engine::UlfmForward,
            RankId(1),
            "agree.round",
            2,
            1,
        ),
        (
            "double-kill",
            Engine::GlooBackward,
            RankId(1),
            "ckpt.sync",
            1,
            1,
        ),
        (
            "kill-during-join",
            Engine::UlfmForward,
            RankId(1),
            "join.merge",
            1,
            1,
        ),
        (
            "shrink-to-floor",
            Engine::UlfmForward,
            RankId(1),
            "shrink.attempt",
            1,
            3,
        ),
        (
            "shrink-to-floor",
            Engine::GlooBackward,
            RankId(1),
            "ckpt.sync",
            1,
            3,
        ),
    ];
    let mut rows = Vec::new();
    for (schedule, engine, second, point, occurrence, floor) in schedules {
        let kind = if schedule == "kill-during-join" {
            ScenarioKind::Replace
        } else {
            ScenarioKind::Downscale
        };
        let joiners = usize::from(kind == ScenarioKind::Replace);
        let mut cfg = base(engine, kind, 4, joiners);
        cfg.spec.min_workers = floor;
        cfg.extra_faults = FaultPlan::none().kill_at_point(second, point, occurrence);
        let res = run_scenario(&cfg);
        let died = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Died))
            .count();
        let aborted = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Aborted(_)))
            .count();
        if res.completed() > 0 {
            res.assert_consistent_state();
        } else {
            assert!(
                res.breakdowns.iter().any(|b| b.kind == RecoveryKind::Abort),
                "{schedule}: below-floor run must trace an abort episode"
            );
        }
        let key = if engine == Engine::UlfmForward {
            "forward"
        } else {
            "backward"
        };
        telemetry::counter(&format!("repro.cascade.{schedule}.{key}.aborted")).add(aborted as u64);
        telemetry::counter(&format!("repro.cascade.{schedule}.{key}.episodes"))
            .add(res.breakdowns.len() as u64);
        rows.push(vec![
            schedule.to_string(),
            key.to_string(),
            format!("{point}#{occurrence}"),
            format!("{}/{}", res.completed(), cfg.workers + joiners),
            died.to_string(),
            aborted.to_string(),
            res.breakdowns.len().to_string(),
            format!("{:?}", res.wall),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Schedule",
                "Engine",
                "Second kill",
                "Completed",
                "Died",
                "Aborted",
                "Episodes",
                "Wall",
            ],
            &rows
        )
    );
    println!("Double kills converge on a uniform shrunk group; a dead join leader's pending");
    println!("joiners are re-ticketed; draining below min_workers aborts every survivor.\n");
}

/// Regret benchmark for the adaptive recovery policy ("Chameleon mode"):
/// replay deterministic failure-schedule families through the oracle, the
/// adaptive engine and the three static engines, scored against per-event
/// ground truth (see `bench::policy_regret`). Writes `BENCH_policy.json`
/// and *asserts* the headline claims — adaptive strictly beats the worst
/// static in aggregate and stays within a sane factor of the oracle —
/// exiting nonzero on violation so CI catches a regressed policy.
fn policy() {
    use bench::policy_regret::{regret_report, Aggregate, STATIC_ARMS};

    const EVENTS: usize = 400;
    const SEED: u64 = 42;
    /// Adaptive may cost at most this multiple of the perfect-knowledge
    /// oracle in aggregate (its only blind spot is the hidden
    /// cascade-spare-death outcome, which bounds the gap).
    const REGRET_RATIO_BOUND: f64 = 1.25;

    println!("== Policy regret: adaptive vs static recovery arms ({EVENTS} events/family) ==\n");
    let rows = regret_report(EVENTS, SEED);
    let agg = Aggregate::of(&rows);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.family.to_string(),
                r.events.to_string(),
                format!("{:.1}", r.oracle_s),
                format!("{:.1}", r.adaptive_s),
                format!("{:.1}", r.static_s[0]),
                format!("{:.1}", r.static_s[1]),
                format!("{:.1}", r.static_s[2]),
                format!("{:.1}", r.adaptive_regret()),
            ]
        })
        .chain(std::iter::once(vec![
            "TOTAL".to_string(),
            (EVENTS * rows.len()).to_string(),
            format!("{:.1}", agg.oracle_s),
            format!("{:.1}", agg.adaptive_s),
            format!("{:.1}", agg.static_s[0]),
            format!("{:.1}", agg.static_s[1]),
            format!("{:.1}", agg.static_s[2]),
            format!("{:.1}", agg.adaptive_s - agg.oracle_s),
        ]))
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Family",
                "Events",
                "Oracle (s)",
                "Adaptive (s)",
                "Shrink (s)",
                "Spare (s)",
                "Rollback (s)",
                "Adaptive regret (s)",
            ],
            &table
        )
    );
    println!(
        "aggregate: adaptive {:.1}s vs statics [best {:.1}s, worst {:.1}s]; \
         oracle {:.1}s (regret ratio {:.3})\n",
        agg.adaptive_s,
        agg.best_static(),
        agg.worst_static(),
        agg.oracle_s,
        agg.regret_ratio()
    );

    telemetry::counter("repro.policy.events").add((EVENTS * rows.len()) as u64);
    telemetry::counter("repro.policy.adaptive_ms").add((agg.adaptive_s * 1e3) as u64);
    telemetry::counter("repro.policy.oracle_ms").add((agg.oracle_s * 1e3) as u64);
    telemetry::counter("repro.policy.worst_static_ms").add((agg.worst_static() * 1e3) as u64);

    let fam_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"family\": \"{}\", \"events\": {}, \"oracle_s\": {:.4}, \
                 \"adaptive_s\": {:.4}, \"static_shrink_s\": {:.4}, \
                 \"static_spare_s\": {:.4}, \"static_rollback_s\": {:.4}, \
                 \"adaptive_regret_s\": {:.4}}}",
                r.family,
                r.events,
                r.oracle_s,
                r.adaptive_s,
                r.static_s[0],
                r.static_s[1],
                r.static_s[2],
                r.adaptive_regret()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"events_per_family\": {EVENTS},\n  \"seed\": {SEED},\n  \
         \"static_arms\": [\"{:?}\", \"{:?}\", \"{:?}\"],\n  \"families\": [\n{}\n  ],\n  \
         \"aggregate\": {{\"oracle_s\": {:.4}, \"adaptive_s\": {:.4}, \
         \"static_s\": [{:.4}, {:.4}, {:.4}], \"worst_static_s\": {:.4}, \
         \"regret_ratio\": {:.4}, \"regret_ratio_bound\": {REGRET_RATIO_BOUND}}}\n}}\n",
        STATIC_ARMS[0],
        STATIC_ARMS[1],
        STATIC_ARMS[2],
        fam_json.join(",\n"),
        agg.oracle_s,
        agg.adaptive_s,
        agg.static_s[0],
        agg.static_s[1],
        agg.static_s[2],
        agg.worst_static(),
        agg.regret_ratio(),
    );
    match std::fs::write("BENCH_policy.json", &json) {
        Ok(()) => println!("policy: wrote BENCH_policy.json"),
        Err(e) => eprintln!("policy: failed to write BENCH_policy.json: {e}"),
    }

    let mut violations = Vec::new();
    if agg.adaptive_s >= agg.worst_static() {
        violations.push(format!(
            "adaptive ({:.1}s) must strictly beat the worst static ({:.1}s) in aggregate",
            agg.adaptive_s,
            agg.worst_static()
        ));
    }
    if agg.adaptive_s >= agg.best_static() {
        violations.push(format!(
            "adaptive ({:.1}s) must strictly beat even the best static ({:.1}s) \
             in aggregate — no single arm wins every family",
            agg.adaptive_s,
            agg.best_static()
        ));
    }
    if agg.regret_ratio() > REGRET_RATIO_BOUND {
        violations.push(format!(
            "adaptive regret ratio {:.3} exceeds the sanity bound {REGRET_RATIO_BOUND}",
            agg.regret_ratio()
        ));
    }
    if agg.oracle_s > agg.adaptive_s + 1e-9 {
        violations.push("oracle must lower-bound every policy".to_string());
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("policy REGRESSION: {v}");
        }
        std::process::exit(1);
    }
    println!("policy: adaptive strictly beats every static arm; regret ratio within bound.\n");
}

/// Flat-vs-hierarchical allreduce scaling sweep (`BENCH_hier.json`): the
/// Summit-calibrated closed forms from 192 workers to O(10k), showing where
/// the flat ring's `2(w−1)·α` latency stops scaling, plus a threaded-runtime
/// smoke that the two-level collective is bit-identical to flat for integer
/// tensors. *Asserts* the headline claims — hierarchy beats every flat
/// algorithm for the largest buckets at ≥6144 workers and never wins the
/// latency-bound 1 KiB row — exiting nonzero on violation so CI catches a
/// regressed cost model or collective.
fn hier() {
    use collectives::{AllreduceAlgo, ReduceOp};
    use simnet::{hier_rows, HIER_GPU_SWEEP};
    use ulfm::{Proc, Topology, Universe};

    println!(
        "== Hierarchical allreduce: flat vs two-level, 192 → 12288 workers (Summit constants) ==\n"
    );
    let rows = hier_rows(&ClusterModel::summit());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.nodes.to_string(),
                format!("{}", r.n_bytes),
                format!("{:.2e}", r.flat_ring),
                format!("{:.2e}", r.flat_rd),
                format!("{:.2e}", r.hier),
                if r.hier_wins() { "hier" } else { "flat" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Workers",
                "Nodes",
                "Bucket (B)",
                "Flat ring (s)",
                "Flat rec-dbl (s)",
                "Hier (s)",
                "winner",
            ],
            &table
        )
    );

    // Per-size crossover: the first sweep scale where the hierarchy wins.
    let crossover = |n_bytes: usize| -> Option<usize> {
        HIER_GPU_SWEEP.iter().copied().find(|&w| {
            rows.iter()
                .any(|r| r.workers == w && r.n_bytes == n_bytes && r.hier_wins())
        })
    };
    let big = 1usize << 28;
    match crossover(big) {
        Some(w) => println!(
            "256 MiB buckets: flat stops winning at {w} workers ({} nodes).",
            w.div_ceil(6)
        ),
        None => println!("256 MiB buckets: flat wins across the whole sweep."),
    }

    // Threaded-runtime smoke: the two-level fused allreduce is bit-identical
    // to the flat fused allreduce for integer tensors on a multi-node shape
    // (3 nodes × 3 ranks). Correctness comes from the real runtime; the
    // *performance* claim above comes from the calibrated model — a laptop's
    // thread scheduler cannot reproduce Summit's fabric.
    let smoke_ok = hier_runtime_smoke();
    println!(
        "runtime smoke (9 ranks, 3/node): hierarchical fused == flat fused … {}",
        if smoke_ok { "ok" } else { "MISMATCH" }
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"nodes\": {}, \"n_bytes\": {}, \
                 \"flat_ring_s\": {:.6e}, \"flat_rd_s\": {:.6e}, \"hier_s\": {:.6e}, \
                 \"hier_wins\": {}}}",
                r.workers,
                r.nodes,
                r.n_bytes,
                r.flat_ring,
                r.flat_rd,
                r.hier,
                r.hier_wins()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"cluster\": \"summit\",\n  \"ranks_per_node\": 6,\n  \
         \"crossover_workers_256mib\": {},\n  \"runtime_smoke_bit_identical\": {},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        crossover(big).map_or("null".to_string(), |w| w.to_string()),
        smoke_ok,
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_hier.json", &json) {
        Ok(()) => println!("hier: wrote BENCH_hier.json"),
        Err(e) => eprintln!("hier: failed to write BENCH_hier.json: {e}"),
    }

    let mut violations = Vec::new();
    for w in [6144usize, 12_288] {
        let r = rows
            .iter()
            .find(|r| r.workers == w && r.n_bytes == big)
            .expect("sweep row");
        if !r.hier_wins() {
            violations.push(format!(
                "hier ({:.3e}s) must beat flat ({:.3e}s) at {w} workers × 256 MiB",
                r.hier,
                r.flat_best()
            ));
        }
    }
    if let Some(r) = rows.iter().find(|r| r.n_bytes == 1 << 10 && r.hier_wins()) {
        violations.push(format!(
            "hier must never win the 1 KiB latency-bound row (workers {})",
            r.workers
        ));
    }
    if !smoke_ok {
        violations.push("runtime hier fused allreduce diverged from flat".to_string());
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("hier REGRESSION: {v}");
        }
        std::process::exit(1);
    }
    telemetry::counter("repro.hier.rows").add(rows.len() as u64);
    println!("hier: two-level beats flat at ≥6144 workers for 256 MiB buckets; runtime smoke bit-identical.\n");

    /// Execute both fused paths on the threaded runtime and compare bits.
    fn hier_runtime_smoke() -> bool {
        fn tensors_for(rank: usize) -> Vec<Vec<i64>> {
            (0..4)
                .map(|t| {
                    (0..50)
                        .map(|i| (rank * 131 + t * 17 + i * 3) as i64 - 64)
                        .collect()
                })
                .collect()
        }
        let u = Universe::without_faults(Topology::new(3));
        let handles = u
            .spawn_batch(9, |p: Proc| {
                let comm = p.init_comm();
                let h = ulfm::Hierarchy::build(&comm).expect("node map");
                let mut hier_t = tensors_for(comm.rank());
                comm.hier_fused_allreduce(
                    &h,
                    &mut hier_t,
                    ReduceOp::Sum,
                    AllreduceAlgo::Ring,
                    1024,
                )
                .expect("hier fused");
                let mut flat_t = tensors_for(comm.rank());
                comm.fused_allreduce(&mut flat_t, ReduceOp::Sum, AllreduceAlgo::Ring, 1024)
                    .expect("flat fused");
                hier_t == flat_t
            })
            .unwrap();
        handles.into_iter().all(|h| h.join())
    }
}

/// Membership fast path (`BENCH_members.json`): flood-set vs lattice
/// agreement. Two layers: the Summit-calibrated closed forms swept over
/// `p ∈ {192…12288}` × burst `k ∈ {1,2,8,32}`, plus a threaded-runtime
/// smoke that injects concurrent deaths *inside* the recovery agreement
/// and measures, from telemetry deltas, how many shrink generations each
/// protocol needs. *Asserts* the headline claims — lattice reduces
/// agreement rounds and modelled latency at p ≥ 1024, and a k=8 burst
/// resolves in exactly one view change under lattice — exiting nonzero on
/// violation so CI catches a regressed protocol.
fn members() {
    use simnet::{members_sweep, BURST_SIZES};
    use ulfm::AgreeImpl;

    println!("== Membership changes: flood-set vs lattice agreement (Summit constants) ==\n");
    let rows = members_sweep(&ClusterModel::summit());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.p.to_string(),
                r.k.to_string(),
                r.flood_rounds.to_string(),
                r.lattice_rounds.to_string(),
                format!("{:.2e}", r.flood_s),
                format!("{:.2e}", r.lattice_s),
                r.flood_view_changes.to_string(),
                r.lattice_view_changes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "p",
                "burst k",
                "Flood rounds",
                "Lattice rounds",
                "Flood (s)",
                "Lattice (s)",
                "Flood views",
                "Lattice views",
            ],
            &table
        )
    );

    // Threaded-runtime smoke: both protocols drive real engine recoveries
    // with deaths scheduled *inside* the agreement, and the telemetry
    // deltas count how many shrink generations resolved the burst.
    println!("runtime smoke (12 ranks, burst killed mid-agreement):");
    let mut smoke = Vec::new();
    for &k in &[1usize, 2, 8] {
        let flood = members_runtime_smoke(AgreeImpl::Flood, k);
        let lattice = members_runtime_smoke(AgreeImpl::Lattice, k);
        println!(
            "  k={k}: flood {} generation(s) / {} rounds; lattice {} generation(s) / {} rounds",
            flood.generations, flood.rounds, lattice.generations, lattice.rounds
        );
        smoke.push((k, flood, lattice));
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"p\": {}, \"k\": {}, \"flood_rounds\": {}, \"lattice_rounds\": {}, \
                 \"flood_s\": {:.6e}, \"lattice_s\": {:.6e}, \
                 \"flood_view_changes\": {}, \"lattice_view_changes\": {}}}",
                r.p,
                r.k,
                r.flood_rounds,
                r.lattice_rounds,
                r.flood_s,
                r.lattice_s,
                r.flood_view_changes,
                r.lattice_view_changes
            )
        })
        .collect();
    let smoke_json: Vec<String> = smoke
        .iter()
        .map(|(k, f, l)| {
            format!(
                "    {{\"k\": {k}, \"workers\": 12, \
                 \"flood\": {{\"generations\": {}, \"rounds\": {}, \"view_changes\": {}}}, \
                 \"lattice\": {{\"generations\": {}, \"rounds\": {}, \"view_changes\": {}}}}}",
                f.generations, f.rounds, f.completions, l.generations, l.rounds, l.completions
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"cluster\": \"summit\",\n  \"burst_sizes\": {BURST_SIZES:?},\n  \
         \"rows\": [\n{}\n  ],\n  \"runtime_smoke\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
        smoke_json.join(",\n")
    );
    match std::fs::write("BENCH_members.json", &json) {
        Ok(()) => println!("members: wrote BENCH_members.json"),
        Err(e) => eprintln!("members: failed to write BENCH_members.json: {e}"),
    }

    let mut violations = Vec::new();
    for r in rows.iter().filter(|r| r.p >= 1024) {
        if r.lattice_rounds >= r.flood_rounds {
            violations.push(format!(
                "lattice rounds ({}) must beat flood ({}) at p={} k={}",
                r.lattice_rounds, r.flood_rounds, r.p, r.k
            ));
        }
        if r.lattice_s >= r.flood_s {
            violations.push(format!(
                "lattice latency ({:.3e}s) must beat flood ({:.3e}s) at p={} k={}",
                r.lattice_s, r.flood_s, r.p, r.k
            ));
        }
    }
    for (k, flood, lattice) in &smoke {
        if lattice.generations != 1 {
            violations.push(format!(
                "lattice must resolve the k={k} burst in exactly one view change \
                 (saw {} generations)",
                lattice.generations
            ));
        }
        if *k > 1 && flood.generations < 2 {
            violations.push(format!(
                "flood baseline lost its known k={k} multi-generation behaviour \
                 ({} generations) — smoke schedule no longer exercises the contrast",
                flood.generations
            ));
        }
        if lattice.rounds >= flood.rounds {
            violations.push(format!(
                "k={k}: lattice agreement rounds ({}) must be fewer than flood's ({})",
                lattice.rounds, flood.rounds
            ));
        }
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("members REGRESSION: {v}");
        }
        std::process::exit(1);
    }
    telemetry::counter("repro.members.rows").add(rows.len() as u64);
    println!(
        "members: lattice beats flood on rounds and latency at p ≥ 1024; \
         k=8 burst resolved in one view change.\n"
    );
}

/// What one runtime smoke run measured, from process-global counter deltas.
struct MembersSmoke {
    /// Primary-agreement rounds executed across all participants.
    rounds: u64,
    /// Completed `shrink_with` calls (one per surviving worker).
    completions: u64,
    /// Shrink generations per completed recovery (iterations/completions).
    generations: u64,
}

/// Drive one in-process recovery under `agree` with a `k`-failure burst:
/// the primary victim dies inside a ring allreduce, and `k-1` more ranks
/// die *inside* the recovery agreement itself (at `agree.round` round 1
/// for flood, `lattice.propose` round 0 for lattice — the inactive
/// protocol's point never fires, so one fault plan serves both). Flood's
/// entry-frozen knowledge deterministically misses the mid-agreement
/// deaths (a rank only reaches round 1 after every survivor froze and
/// sent round 0) and pays an extra shrink generation; lattice widens the
/// in-flight proposal before anyone can decide and resolves the whole
/// burst in one view change.
fn members_runtime_smoke(agree: ulfm::AgreeImpl, k: usize) -> MembersSmoke {
    use collectives::{AllreduceAlgo, ReduceOp};
    use transport::{FaultPlan, RankId};
    use ulfm::{Proc, Topology, UlfmError, Universe};

    const WORKERS: usize = 12;
    assert!(k >= 1 && k + 4 <= WORKERS);
    let mut plan = FaultPlan::none().kill_at_point(RankId(2), "allreduce.step", 2);
    for i in 0..k - 1 {
        plan = plan
            .kill_at_point(RankId(3 + i), "agree.round", 2)
            .kill_at_point(RankId(3 + i), "lattice.propose", 1);
    }

    let rounds_name = match agree {
        ulfm::AgreeImpl::Flood => "ulfm.agree.rounds",
        ulfm::AgreeImpl::Lattice => "ulfm.lattice.rounds",
    };
    let rounds0 = telemetry::counter(rounds_name).get();
    let iters0 = telemetry::counter("ulfm.shrink.iterations").get();
    let compl0 = telemetry::counter("ulfm.shrink.completions").get();

    let u = Universe::new(Topology::flat(), plan);
    let handles = u
        .spawn_batch(WORKERS, move |p: Proc| {
            let comm = p.init_comm();
            comm.set_agree_impl(agree);
            let input =
                |rank: usize| -> Vec<i64> { (0..16).map(|i| (rank * 31 + i * 7) as i64).collect() };
            let mut buf = input(comm.rank());
            match comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                Err(UlfmError::SelfDied) => return None,
                r => {
                    if r.is_ok() {
                        if let Err(UlfmError::SelfDied) = comm.barrier() {
                            return None;
                        }
                    }
                }
            }
            comm.revoke();
            let mut cur = match comm.shrink() {
                Ok(c) => c,
                Err(UlfmError::SelfDied) => return None,
                Err(e) => panic!("members smoke shrink: {e}"),
            };
            loop {
                let mut retry = input(p.rank().0);
                match cur.allreduce(&mut retry, ReduceOp::Sum, AllreduceAlgo::Ring) {
                    Ok(()) => return Some((cur.size(), retry)),
                    Err(UlfmError::SelfDied) => return None,
                    Err(_) => {
                        cur.revoke();
                        cur = match cur.shrink() {
                            Ok(c) => c,
                            Err(UlfmError::SelfDied) => return None,
                            Err(e) => panic!("members smoke re-shrink: {e}"),
                        };
                    }
                }
            }
        })
        .expect("in-process universe spawns");
    let results: Vec<_> = handles.into_iter().filter_map(|h| h.join()).collect();
    assert_eq!(results.len(), WORKERS - k, "unexpected survivor count");
    for (size, sum) in &results {
        assert_eq!(*size, WORKERS - k, "survivor group size");
        assert_eq!(sum, &results[0].1, "survivors diverged after the burst");
    }

    let rounds = telemetry::counter(rounds_name).get() - rounds0;
    let iterations = telemetry::counter("ulfm.shrink.iterations").get() - iters0;
    let completions = telemetry::counter("ulfm.shrink.completions").get() - compl0;
    assert!(completions > 0, "no shrink completed");
    assert_eq!(
        iterations % completions,
        0,
        "survivors disagreed on shrink generations"
    );
    MembersSmoke {
        rounds,
        completions,
        generations: iterations / completions,
    }
}

/// Export the telemetry registry accumulated across everything this
/// invocation executed. The episode records in it reconcile with the
/// profiler breakdowns printed above (same phases, nanosecond precision).
fn dump_telemetry(path: &str) {
    let snap = telemetry::snapshot();
    match std::fs::write(path, snap.to_json()) {
        Ok(()) => println!(
            "telemetry: wrote {path} ({} counters, {} histograms, {} episodes)",
            snap.counters.len(),
            snap.histograms.len(),
            snap.episodes.len()
        ),
        Err(e) => eprintln!("telemetry: failed to write {path}: {e}"),
    }
}

/// Fused-vs-unfused gradient aggregation over the Table 1 model profiles
/// (scaled 1000×): per-tensor ring allreduce against Horovod-style fusion
/// buckets with the size-adaptive `Auto` algorithm. Writes the measured
/// series to `BENCH_fusion.json` (see EXPERIMENTS.md).
fn fusion() {
    use bench::fusion_report;

    println!("== Fusion: per-step gradient aggregation, fused vs unfused (4 workers) ==\n");
    let rows = fusion_report(4, 3);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.tensors.to_string(),
                r.buckets.to_string(),
                format!("{:.0}x", r.reduction),
                format!("{:.2}", r.unfused_ring_s * 1e3),
                format!("{:.2}", r.fused_auto_s * 1e3),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Tensors",
                "Buckets",
                "Msg reduction",
                "Unfused ring (ms/step)",
                "Fused auto (ms/step)",
                "Speedup",
            ],
            &table
        )
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"model\": \"{}\", \"tensors\": {}, \"buckets\": {}, \
                 \"message_reduction\": {:.2}, \"unfused_ring_s\": {:.6}, \
                 \"fused_auto_s\": {:.6}, \"speedup\": {:.2}}}",
                r.model,
                r.tensors,
                r.buckets,
                r.reduction,
                r.unfused_ring_s,
                r.fused_auto_s,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workers\": 4,\n  \"scale_down\": 1000,\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_fusion.json", &json) {
        Ok(()) => println!("fusion: wrote BENCH_fusion.json"),
        Err(e) => eprintln!("fusion: failed to write BENCH_fusion.json: {e}"),
    }
    let nasnet = rows
        .iter()
        .find(|r| r.model.contains("NasNet"))
        .expect("NasNetMobile profile present");
    println!(
        "NasNetMobile: {} tensors fused into {} bucket(s); fused Auto is {:.1}x \
         faster than per-tensor ring.\n",
        nasnet.tensors,
        nasnet.buckets,
        nasnet.speedup()
    );
}

/// Ablations beyond the paper: allreduce-algorithm crossover and
/// detection-latency sensitivity of the two recovery paths.
fn ablate() {
    use simnet::network::{recursive_doubling_allreduce_time, ring_allreduce_time};
    use simnet::{backward_breakdown, forward_breakdown, EpisodeConfig};

    println!("== Ablation A: allreduce algorithm crossover (α–β model, 64 workers) ==\n");
    let c = ClusterModel::summit();
    let rows: Vec<Vec<String>> = [1usize, 16, 256, 4 << 10, 64 << 10, 1 << 20, 16 << 20]
        .iter()
        .map(|&bytes| {
            let ring = ring_allreduce_time(bytes as f64, 64, c.alpha, c.beta);
            let recdbl = recursive_doubling_allreduce_time(bytes as f64, 64, c.alpha, c.beta);
            vec![
                format!("{bytes}"),
                format!("{:.2e}", ring),
                format!("{:.2e}", recdbl),
                if ring < recdbl { "ring" } else { "rec-dbl" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Message (B)", "Ring (s)", "RecDbl (s)", "winner"], &rows)
    );

    println!("== Ablation B: detection-latency sensitivity (ResNet-50, 96 GPUs, node drop) ==\n");
    let rows: Vec<Vec<String>> = [0.005f64, 0.05, 0.5, 2.0]
        .iter()
        .map(|&detect| {
            let mut cluster = ClusterModel::summit();
            cluster.ulfm_detect = detect;
            cluster.catch_exception = detect.max(0.6); // Gloo can't go below its timeout
            let cfg = EpisodeConfig {
                cluster,
                model: dnn::ModelProfile::resnet50v2(),
                workers_before: 96,
                scenario: SimScenario::Down,
                level: Level::Node,
            };
            vec![
                format!("{detect}"),
                format!("{:.3}", forward_breakdown(&cfg).total()),
                format!("{:.3}", backward_breakdown(&cfg).total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Detect latency (s)", "ULFM total (s)", "EH total (s)"],
            &rows
        )
    );
    println!("ULFM's recovery cost is dominated by detection latency itself — the protocol");
    println!("work is milliseconds — while the baseline keeps its teardown/rebuild floor.\n");
}

/// Scenario III economics (paper §3.3.3): start-with-available vs
/// wait-for-all under stochastic worker arrivals.
fn scenario3() {
    use simnet::arrivals::scenario3_sweep;
    println!(
        "== Scenario III: start-with-available vs wait-for-all (24 workers, 1 h horizon) ==\n"
    );
    let rows: Vec<Vec<String>> = scenario3_sweep(
        24,
        3600.0,
        &ClusterModel::summit(),
        dnn::ModelProfile::resnet50v2().state_bytes() as f64,
    )
    .into_iter()
    .map(|(spread, o)| {
        vec![
            format!("{:.0}", spread),
            format!("{:.0}", o.last_arrival),
            format!("{}", o.joins),
            format!("{:.0}", o.elastic_work),
            format!("{:.0}", o.wait_work),
            format!("{:.2}x", o.advantage()),
        ]
    })
    .collect();
    println!(
        "{}",
        render_table(
            &[
                "Arrival spread (s)",
                "Last arrival (s)",
                "Join events",
                "Elastic work (w·s)",
                "Wait-for-all (w·s)",
                "Advantage",
            ],
            &rows
        )
    );
    println!("Starting with available workers strictly dominates; the advantage grows with");
    println!("arrival spread — the paper's rationale for automated upscaling.");
}

/// Table 1: Keras benchmark applications.
fn table1() {
    println!("== Table 1: Keras benchmark applications ==\n");
    let rows: Vec<Vec<String>> = paper_models()
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.trainable_tensors.to_string(),
                m.depth.to_string(),
                format!("{:.1}M", m.total_params as f64 / 1e6),
                format!("{:.0}", m.size_mb),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Trainable",
                "Depth",
                "Total Parameters",
                "Size (MB)"
            ],
            &rows
        )
    );
}

/// Table 2: recovery capabilities — each supported cell is *executed* on
/// the threaded runtime, not just asserted.
fn table2() {
    println!("== Table 2: recovery capabilities of different communication libraries ==");
    println!("   (✓* = capability demonstrated by actually running the scenario)\n");
    let mut rows = Vec::new();
    for (i, label) in TABLE2_ROWS.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for ulfm in [false, true] {
            let claimed = paper_capability(i, ulfm);
            let cell = if !claimed {
                "×".to_string()
            } else if demonstrate_cell(i, ulfm) {
                "✓*".to_string()
            } else {
                "✓ (claimed; demo FAILED)".to_string()
            };
            row.push(cell);
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["Dynamic training scenarios", "Elastic Horovod", "ULFM MPI"],
            &rows
        )
    );
}

/// Fig. 2: recovery granularity — backward rollback vs forward
/// collective-level retry, measured on the threaded runtime.
fn fig2() {
    println!("== Fig. 2: backward vs forward recovery granularity (executed) ==\n");
    let spec = TrainSpec {
        total_steps: 8,
        steps_per_epoch: 4,
        ..TrainSpec::default()
    };
    let mk = |engine| ScenarioConfig {
        spec: spec.clone(),
        ..ScenarioConfig::quick(engine, ScenarioKind::Downscale)
    };

    let fwd = run_scenario(&mk(Engine::UlfmForward));
    let bwd = run_scenario(&mk(Engine::GlooBackward));

    let fwd_redo = fwd
        .breakdowns
        .iter()
        .filter(|b| b.kind == RecoveryKind::Forward)
        .count();
    println!("ULFM forward recovery:");
    println!("  rollback                  : none (no checkpoint taken)");
    println!("  re-executed               : the failed collective(s) only");
    println!("  recovery episodes recorded: {fwd_redo}");
    println!("  survivors completed       : {}/{}", fwd.completed(), 6);

    let rolled: Vec<String> = bwd
        .breakdowns
        .iter()
        .filter(|b| b.kind == RecoveryKind::Backward)
        .map(|b| format!("step {}", b.at_step))
        .collect();
    println!("\nElastic-Horovod backward recovery:");
    println!("  rollback                  : to last per-batch checkpoint");
    println!("  re-executed               : the whole mini-batch (exceptions at {rolled:?})");
    println!("  survivors completed       : {}/{}", bwd.completed(), 6);
    println!(
        "\nwall-clock for the whole run: forward {:?} vs backward {:?}\n",
        fwd.wall, bwd.wall
    );
}

/// Fig. 4: detailed cost breakdown, Scenario I, ResNet-50, 24 GPUs.
fn fig4() {
    println!("== Fig. 4: Scenario I cost breakdown, ResNet-50 on 24 GPUs (simulated, Summit constants) ==\n");
    for (label, b) in fig4_rows(&ClusterModel::summit()) {
        println!("{label}:");
        println!("{b}\n");
    }
}

/// Figs. 5–7: recovery/reconfiguration costs per model, all scenarios,
/// 12 → 192 GPUs.
fn figure(key: &str, model_idx: usize) {
    let model = &paper_models()[model_idx];
    println!(
        "== {}: recovery/reconfiguration costs (s), {} — simulated, Summit constants ==\n",
        key.replace("fig", "Fig. "),
        model.name
    );
    let rows = figure_rows(model, &ClusterModel::summit());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                match r.scenario {
                    SimScenario::Down => "Down",
                    SimScenario::Same => "Same",
                    SimScenario::Up => "Up",
                }
                .to_string(),
                match r.level {
                    Level::Process => "process",
                    Level::Node => "node",
                }
                .to_string(),
                if r.ulfm {
                    "ULFM MPI"
                } else {
                    "Elastic Horovod"
                }
                .to_string(),
                r.gpus.to_string(),
                fmt_s(r.comm_reconstruction),
                fmt_s(r.state_reinit),
                fmt_s(r.recompute),
                fmt_s(r.total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Scenario",
                "Level",
                "Library",
                "GPUs",
                "CommReconstr+Rdv",
                "StateReinit",
                "Recompute",
                "Total",
            ],
            &table
        )
    );
}

/// Eq. 1: the checkpoint-recovery cost model, swept over the checkpoint
/// interval.
fn eq1() {
    println!("== Eq. (1): checkpoint-based fault-recovery cost model ==\n");
    println!("window: 1000 steps of 0.25 s; 2 faults; save 0.05 s; load 0.5 s; reconfig 3 s\n");
    let rows: Vec<Vec<String>> = [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0]
        .iter()
        .map(|&interval| {
            let p = Eq1Params::with_interval(1000.0, interval, 0.25, 0.05, 2.0, 0.5, 3.0, 0.0);
            vec![
                format!("{interval}"),
                format!("{:.1}", p.ckpt_save * p.saving_freq),
                format!("{:.1}", p.fault_count * p.recompute),
                format!("{:.1}", p.total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Ckpt interval (steps)",
                "Saving cost (s)",
                "Recompute cost (s)",
                "Eq.1 total (s)"
            ],
            &rows
        )
    );
    println!("Forward recovery eliminates the saving, loading and recompute terms entirely;");
    println!("its per-fault cost is the shrink + one redone collective (see fig4).");
}
