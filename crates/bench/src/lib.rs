//! Shared helpers for the `repro` binary and the Criterion benches:
//! plain-text table rendering and the capability matrix derived from the
//! paper's Table 2.

#![warn(missing_docs)]

pub mod multiproc;
pub mod policy_regret;

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, RecoveryPolicy, ScenarioConfig, TrainSpec, WorkerExit};
use transport::{LinkPerturb, PerturbPlan};

/// Parse a `--perturb` rate-spec into a [`PerturbPlan`] applied to every
/// link. The spec is comma-separated `key=value` pairs:
///
/// ```text
/// drop=0.01,corrupt=0.001,dup=0.005,reorder=0.01,delay=0.05,seed=42
/// ```
///
/// All rate keys are optional probabilities in `[0, 1]`; `seed` (default 0)
/// fixes the deterministic schedule. `delay` holds frames for 50–500 µs.
pub fn parse_perturb_spec(spec: &str) -> Result<PerturbPlan, String> {
    let mut link = LinkPerturb::clean();
    let mut seed = 0u64;
    for pair in spec.split(',').filter(|s| !s.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("perturb spec `{pair}` is not key=value"))?;
        let rate = || -> Result<f64, String> {
            let v: f64 = value
                .parse()
                .map_err(|_| format!("perturb rate `{value}` is not a number"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("perturb rate `{key}={v}` outside [0, 1]"));
            }
            Ok(v)
        };
        match key {
            "drop" => link = link.drop(rate()?),
            "dup" | "duplicate" => link = link.duplicate(rate()?),
            "corrupt" => link = link.corrupt(rate()?),
            "reorder" => link = link.reorder(rate()?),
            "delay" => {
                link = link.delay(
                    rate()?,
                    std::time::Duration::from_micros(50),
                    std::time::Duration::from_micros(500),
                )
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("perturb seed `{value}` is not a u64"))?
            }
            _ => return Err(format!("unknown perturb key `{key}`")),
        }
    }
    Ok(PerturbPlan::seeded(seed).all_links(link))
}

/// Render an aligned text table: `header` then `rows`.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// One cell of the paper's Table 2: is the combination supported by the
/// *real* system, and did our reproduction demonstrate it?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapabilityCell {
    /// What the paper's Table 2 claims for the real system.
    pub paper_supported: bool,
    /// Whether executing the scenario on our reproduction succeeded
    /// (`None` if not executed because the real system does not support it).
    pub demonstrated: Option<bool>,
}

/// Row labels of Table 2, in paper order.
pub const TABLE2_ROWS: [&str; 4] = [
    "Recovery by process",
    "Recovery by node",
    "Autoscaling by process",
    "Autoscaling by node",
];

/// What the paper's Table 2 claims: Elastic Horovod = node-level only.
pub fn paper_capability(row: usize, ulfm: bool) -> bool {
    ulfm || row == 1 || row == 3
}

/// Execute one Table 2 cell on the threaded runtime and report whether the
/// scenario completed as expected.
pub fn demonstrate_cell(row: usize, ulfm: bool) -> bool {
    let engine = if ulfm {
        Engine::UlfmForward
    } else {
        Engine::GlooBackward
    };
    let (kind, policy) = match row {
        0 => (ScenarioKind::Downscale, RecoveryPolicy::DropProcess),
        1 => (ScenarioKind::Downscale, RecoveryPolicy::DropNode),
        2 => (ScenarioKind::Upscale, RecoveryPolicy::DropProcess),
        3 => (ScenarioKind::Upscale, RecoveryPolicy::DropNode),
        _ => unreachable!("Table 2 has four rows"),
    };
    let joiners = match row {
        2 => 1, // grow by one process
        3 => 3, // grow by one (3-rank) node
        _ => 0,
    };
    let cfg = ScenarioConfig {
        spec: TrainSpec {
            total_steps: 8,
            steps_per_epoch: 4,
            ..TrainSpec::default()
        },
        engine,
        workers: 6,
        ranks_per_node: 3,
        policy,
        kind,
        victim: 4,
        fail_at_op: 7,
        joiners,
        renormalize: false,
        perturb: None,
        suspicion_timeout: None,
        extra_faults: transport::FaultPlan::none(),
        backend: transport::BackendKind::InProc,
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    };
    let res = run_scenario(&cfg);
    let expected_completed = match (kind, policy) {
        (ScenarioKind::Downscale, RecoveryPolicy::DropProcess) => cfg.workers - 1,
        (ScenarioKind::Downscale, RecoveryPolicy::DropNode) => cfg.workers - cfg.ranks_per_node,
        (ScenarioKind::Upscale, _) => cfg.workers + joiners,
        _ => unreachable!(),
    };
    let ok = res.completed() == expected_completed
        && res
            .exits
            .iter()
            .filter(|e| e.completed())
            .all(|e| matches!(e, WorkerExit::Completed(_)));
    if ok {
        res.assert_consistent_state();
    }
    ok
}

/// One row of the fused-vs-unfused comparison emitted by `repro fusion`
/// into `BENCH_fusion.json`.
#[derive(Clone, Debug)]
pub struct FusionRow {
    /// Model profile name (paper Table 1).
    pub model: &'static str,
    /// Trainable tensors = allreduce launches per step, unfused.
    pub tensors: usize,
    /// Fused buckets = allreduce launches per step, fused.
    pub buckets: usize,
    /// Message-reduction ratio `tensors / buckets`.
    pub reduction: f64,
    /// Mean per-step wall time, per-tensor ring allreduce (seconds).
    pub unfused_ring_s: f64,
    /// Mean per-step wall time, fused buckets with `AllreduceAlgo::Auto`
    /// (seconds).
    pub fused_auto_s: f64,
}

impl FusionRow {
    /// Unfused-over-fused speedup factor.
    pub fn speedup(&self) -> f64 {
        self.unfused_ring_s / self.fused_auto_s
    }
}

/// The deterministic part of the fused-vs-unfused comparison: the tensor
/// mix of a (scaled-down) model profile and its bucket plan under the
/// fusion byte cap. Shared by the timed report, the Criterion bench, and
/// the count-based shape smoke test.
pub fn fusion_schedule(
    profile: &dnn::ModelProfile,
    cap_bytes: usize,
) -> (Vec<usize>, Vec<std::ops::Range<usize>>) {
    let sizes: Vec<usize> = profile.tensor_sizes().iter().map(|&s| s as usize).collect();
    let plan = collectives::plan_buckets(&sizes, std::mem::size_of::<f32>(), cap_bytes);
    (sizes, plan)
}

/// Run one timed configuration: `workers` ranks allreduce the given buffer
/// lengths once per step for `steps` steps. Returns mean per-step seconds.
fn timed_allreduce_steps(
    workers: usize,
    steps: usize,
    lens: &[usize],
    algo: collectives::AllreduceAlgo,
) -> f64 {
    use collectives::ReduceOp;
    use ulfm::{Proc, Topology, Universe};

    let u = Universe::without_faults(Topology::flat());
    let lens: Vec<usize> = lens.to_vec();
    let t0 = std::time::Instant::now();
    let handles = u.spawn_batch(workers, move |p: Proc| {
        let comm = p.init_comm();
        let mut sink = 0.0f32;
        for _ in 0..steps {
            for &n in &lens {
                let mut buf = vec![1.0f32; n];
                comm.allreduce(&mut buf, ReduceOp::Sum, algo).unwrap();
                sink += buf.first().copied().unwrap_or(0.0);
            }
        }
        sink
    });
    let handles = handles.expect("in-process universe");
    let _: f32 = handles.into_iter().map(|h| h.join()).sum();
    t0.elapsed().as_secs_f64() / steps as f64
}

/// Measure fused-vs-unfused per-step allreduce cost for the paper's three
/// model profiles (scaled down 1000× so the threaded runtime stays fast).
/// Unfused = one ring allreduce per tensor; fused = one `Auto`-algorithm
/// allreduce per bucket under [`collectives::DEFAULT_FUSION_BYTES`].
pub fn fusion_report(workers: usize, steps: usize) -> Vec<FusionRow> {
    // Warm up the threaded runtime (thread spawning, allocator, fabric
    // init) so the first measured profile isn't charged the cold start.
    let _ = timed_allreduce_steps(workers, 1, &[1024], collectives::AllreduceAlgo::Ring);
    dnn::paper_models()
        .iter()
        .map(|profile| {
            let scaled = profile.scaled_down(1000);
            let (sizes, plan) = fusion_schedule(&scaled, collectives::DEFAULT_FUSION_BYTES);
            let bucket_lens: Vec<usize> =
                plan.iter().map(|r| sizes[r.clone()].iter().sum()).collect();
            let unfused_ring_s =
                timed_allreduce_steps(workers, steps, &sizes, collectives::AllreduceAlgo::Ring);
            let fused_auto_s = timed_allreduce_steps(
                workers,
                steps,
                &bucket_lens,
                collectives::AllreduceAlgo::auto(),
            );
            FusionRow {
                model: profile.name,
                tensors: sizes.len(),
                buckets: bucket_lens.len(),
                reduction: sizes.len() as f64 / bucket_lens.len() as f64,
                unfused_ring_s,
                fused_auto_s,
            }
        })
        .collect()
}

/// Format seconds compactly for the figure tables.
pub fn fmt_s(v: f64) -> String {
    if v == 0.0 {
        "-".to_string()
    } else if v < 0.01 {
        format!("{:.4}", v)
    } else {
        format!("{:.2}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a       bbbb"));
    }

    #[test]
    fn paper_capability_matches_table2() {
        // Elastic Horovod: only node-level rows.
        assert!(!paper_capability(0, false));
        assert!(paper_capability(1, false));
        assert!(!paper_capability(2, false));
        assert!(paper_capability(3, false));
        // ULFM: everything.
        for row in 0..4 {
            assert!(paper_capability(row, true));
        }
    }

    #[test]
    fn fmt_s_handles_ranges() {
        assert_eq!(fmt_s(0.0), "-");
        assert_eq!(fmt_s(0.001), "0.0010");
        assert_eq!(fmt_s(12.345), "12.35");
    }

    #[test]
    fn perturb_spec_parses_all_keys() {
        let plan =
            parse_perturb_spec("drop=0.01,corrupt=0.001,dup=0.005,reorder=0.01,delay=0.05,seed=42")
                .unwrap();
        assert_eq!(plan.seed(), 42);
        assert!(!plan.is_inert());
    }

    #[test]
    fn perturb_spec_rejects_garbage() {
        assert!(parse_perturb_spec("drop").is_err());
        assert!(parse_perturb_spec("drop=2.0").is_err());
        assert!(parse_perturb_spec("warp=0.1").is_err());
        assert!(parse_perturb_spec("seed=abc").is_err());
    }

    #[test]
    fn empty_perturb_spec_is_inert() {
        assert!(parse_perturb_spec("").unwrap().is_inert());
    }

    /// The expected shape of the fused-vs-unfused comparison, asserted
    /// count-based (deterministic — no timing): fusion collapses every
    /// profile's tensors into fewer buckets, and the message-reduction
    /// ratio is greatest for NasNetMobile, whose 1126 tiny tensors are
    /// exactly the workload Horovod's fusion threshold was built for.
    #[test]
    fn fusion_helps_small_tensor_models_most() {
        let mut reductions = Vec::new();
        for profile in dnn::paper_models() {
            let scaled = profile.scaled_down(1000);
            let (sizes, plan) = fusion_schedule(&scaled, collectives::DEFAULT_FUSION_BYTES);
            assert_eq!(sizes.len(), profile.trainable_tensors);
            assert!(
                plan.len() < sizes.len(),
                "{}: fusion must batch",
                profile.name
            );
            reductions.push((profile.name, sizes.len() as f64 / plan.len() as f64));
        }
        let nasnet = reductions
            .iter()
            .find(|(n, _)| n.contains("NasNet"))
            .expect("NasNetMobile in paper models");
        for (name, r) in &reductions {
            assert!(
                nasnet.1 >= *r,
                "NasNet reduction {} must dominate {name}'s {r}",
                nasnet.1
            );
        }
        assert!(nasnet.1 > 100.0, "NasNet fuses >100 tensors per message");
    }
}
