//! Multi-process elastic training: the `repro worker` / `repro launch`
//! subcommands.
//!
//! `repro launch` is a minimal Horovod-style driver: it hosts the
//! rendezvous [`StoreServer`], spawns `n` *real* worker processes (each
//! running `repro worker`), and audits their result files afterwards. Each
//! worker binds a socket listener, publishes its address in the store,
//! discovers its peers, establishes the full mesh, and trains under
//! forward recovery on its own [`Universe`].
//!
//! Scripted deaths are real deaths: when a worker's fault plan fires, a
//! watcher thread SIGKILLs the worker's own process, so the surviving
//! processes observe a genuine kernel-level connection reset (EOF) — not a
//! simulated flag — and recover via revoke → agree → shrink.

use elastic::{run_forward_worker, ForwardConfig, RecoveryPolicy, TrainSpec, WorkerExit};
use gloo::{KvStore, NetStore, Store, StoreServer};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use transport::{Backend, BackendKind, Endpoint, FaultInjector, FaultPlan, RankId, Topology};
use ulfm::Universe;

/// How long address exchange and process waits may take before giving up.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(60);

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        if let Some((k, v)) = name.split_once('=') {
            flags.insert(k.to_string(), v.to_string());
        } else {
            let v = it
                .next()
                .ok_or_else(|| format!("--{name} requires a value"))?;
            flags.insert(name.to_string(), v.clone());
        }
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

fn backend_kind(transport: &str) -> Result<BackendKind, String> {
    match transport {
        "tcp" => Ok(BackendKind::Tcp),
        "unix" => Ok(BackendKind::Unix),
        other => Err(format!("--transport must be tcp or unix, got `{other}`")),
    }
}

fn agree_impl(name: &str) -> Result<ulfm::AgreeImpl, String> {
    match name {
        "flood" => Ok(ulfm::AgreeImpl::Flood),
        "lattice" => Ok(ulfm::AgreeImpl::Lattice),
        other => Err(format!("--agree must be flood or lattice, got `{other}`")),
    }
}

/// Parse a death schedule: comma-separated `rank@point:occurrence`, e.g.
/// `1@allreduce.step:5,2@shrink.attempt:1`.
fn parse_die_spec(spec: &str) -> Result<Vec<(usize, String, u64)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',').filter(|s| !s.is_empty()) {
        let (rank, rest) = entry
            .split_once('@')
            .ok_or_else(|| format!("die entry `{entry}` is not rank@point:occurrence"))?;
        let (point, occ) = rest
            .split_once(':')
            .ok_or_else(|| format!("die entry `{entry}` is not rank@point:occurrence"))?;
        out.push((
            rank.parse()
                .map_err(|_| format!("die rank `{rank}` is not a number"))?,
            point.to_string(),
            occ.parse()
                .map_err(|_| format!("die occurrence `{occ}` is not a number"))?,
        ));
    }
    Ok(out)
}

/// Parse a joiner-spawn schedule: comma-separated `rank@step`, e.g.
/// `3@2,4@5` — spawn a joiner process with rank 3 once any worker reports
/// step 2, and rank 4 at step 5.
fn parse_spawn_spec(spec: &str) -> Result<Vec<(usize, u64)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',').filter(|s| !s.is_empty()) {
        let (rank, step) = entry
            .split_once('@')
            .ok_or_else(|| format!("spawn entry `{entry}` is not rank@step"))?;
        out.push((
            rank.parse()
                .map_err(|_| format!("spawn rank `{rank}` is not a number"))?,
            step.parse()
                .map_err(|_| format!("spawn step `{step}` is not a number"))?,
        ));
    }
    Ok(out)
}

fn fault_plan_from(die: &[(usize, String, u64)]) -> FaultPlan {
    die.iter()
        .fold(FaultPlan::none(), |plan, (rank, point, occ)| {
            plan.kill_at_point(RankId(*rank), point.clone(), *occ)
        })
}

/// Retry a transiently-failing store operation until it succeeds or the
/// deadline passes (the rendezvous server may not have finished binding
/// when the first worker dials it).
fn store_retry<T>(
    deadline: Instant,
    what: &str,
    mut op: impl FnMut() -> Result<T, gloo::StoreUnavailable>,
) -> Result<T, String> {
    let mut backoff = Duration::from_millis(1);
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
            Err(_) => return Err(format!("store unavailable past deadline during {what}")),
        }
    }
}

/// `repro worker` — one rank of a multi-process run. Not intended to be
/// invoked by hand; `repro launch` passes every flag.
pub fn worker_main(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let rank: usize = flag(&flags, "rank", usize::MAX)?;
    let world: usize = flag(&flags, "world", 0)?;
    let is_joiner = flag::<usize>(&flags, "joiner", 0)? != 0;
    if !is_joiner && rank >= world {
        return Err(format!("--rank {rank} outside --world {world}"));
    }
    if is_joiner && rank < world {
        return Err(format!(
            "joiner --rank {rank} collides with initial world {world}"
        ));
    }
    let store_addr = flags
        .get("store")
        .ok_or("--store <host:port> is required")?
        .clone();
    let run_id = flags.get("run-id").cloned().unwrap_or_default();
    let outdir = flags.get("outdir").cloned().unwrap_or_else(|| ".".into());
    let kind = backend_kind(flags.get("transport").map_or("tcp", |s| s.as_str()))?;
    let steps: usize = flag(&flags, "steps", 16)?;
    let min_workers: usize = flag(&flags, "min-workers", 1)?;
    let suspicion_ms: u64 = flag(&flags, "suspicion-ms", 2000)?;
    let expect_joiners: usize = flag(&flags, "expect-joiners", 0)?;
    let join_wait_secs: u64 = flag(&flags, "join-wait-secs", 30)?;
    let agree = agree_impl(flags.get("agree").map_or("flood", |s| s.as_str()))?;
    let die = parse_die_spec(flags.get("die").map_or("", |s| s.as_str()))?;

    // Address exchange through the rendezvous store: members publish their
    // listener address, then everyone (members and late joiners alike)
    // polls until all of ranks `0..world` are present. The check is
    // *scan*-based, not count-based: joiner announce keys and spare
    // processes publish under the same run prefix, so a raw key count can
    // reach `world` while an initial member is still missing.
    let store = NetStore::connect(store_addr);
    let listener = transport::SocketBackend::bind(kind).map_err(|e| format!("bind: {e}"))?;
    let contact = listener.addr().to_string();
    let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
    let prefix = format!("{run_id}/addr/");
    if !is_joiner {
        store_retry(deadline, "address publish", || {
            store.try_set(&format!("{prefix}{rank:08}"), contact.as_bytes().to_vec())
        })?;
    }
    let peer_addrs: Vec<String> = loop {
        let pairs = store_retry(deadline, "address scan", || store.try_scan_prefix(&prefix))?;
        let mut addrs: Vec<Option<String>> = vec![None; world];
        for (key, value) in pairs {
            if let Ok(peer) = key[prefix.len()..].parse::<usize>() {
                if peer < world {
                    addrs[peer] = Some(
                        String::from_utf8(value)
                            .map_err(|_| format!("non-utf8 address under `{key}`"))?,
                    );
                }
            }
        }
        let present = addrs.iter().filter(|a| a.is_some()).count();
        if present >= world {
            break addrs.into_iter().map(|a| a.expect("checked")).collect();
        }
        if Instant::now() >= deadline {
            return Err(format!("only {present}/{world} workers arrived"));
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    let injector = FaultInjector::new(fault_plan_from(&die));
    let backend = if is_joiner {
        // A joiner dials every initial member that still answers; members
        // that died before we spawned fail the dial instantly (their
        // listener is gone) and are marked dead rather than retried.
        let member_addrs: Vec<(RankId, String)> = peer_addrs
            .iter()
            .enumerate()
            .map(|(p, a)| (RankId(p), a.clone()))
            .collect();
        transport::SocketBackend::establish_joiner(
            RankId(rank),
            Topology::flat(),
            listener,
            &member_addrs,
            injector,
            Duration::from_secs(10),
        )
        .map_err(|e| format!("joiner establish: {e}"))?
    } else {
        transport::SocketBackend::establish(
            RankId(rank),
            Topology::flat(),
            listener,
            &peer_addrs,
            injector,
            Duration::from_secs(20),
        )
        .map_err(|e| format!("mesh establish: {e}"))?
    };
    backend.set_suspicion_timeout(Some(Duration::from_millis(suspicion_ms)));

    // Scripted deaths must be real: the moment the fault plan kills this
    // rank abruptly, SIGKILL our own process so peers see a kernel-closed
    // socket, exactly like an OOM kill or node loss would produce. Only
    // *abrupt* deaths count — a voluntary retirement at the end of training
    // also drops the alive flag, and the process must survive it to report.
    let watcher = Arc::clone(&backend);
    std::thread::Builder::new()
        .name("hard-death".into())
        .spawn(move || loop {
            if watcher.hard_died() {
                let pid = std::process::id().to_string();
                let killed = std::process::Command::new("kill")
                    .args(["-9", &pid])
                    .status()
                    .or_else(|_| {
                        std::process::Command::new("/usr/bin/kill")
                            .args(["-9", &pid])
                            .status()
                    });
                // If no `kill` binary exists, abort is the closest thing.
                if killed.is_err() {
                    std::process::abort();
                }
                std::thread::sleep(Duration::from_secs(5));
                std::process::abort(); // the SIGKILL should have landed
            }
            std::thread::sleep(Duration::from_micros(200));
        })
        .map_err(|e| format!("spawn watcher: {e}"))?;

    // Progress beacon for the launcher: the current step count, republished
    // under `{run}/step/{rank}` so `--spawn RANK@STEP` triggers can fire
    // when the group reaches a scripted step. Best-effort — a missed write
    // only delays a trigger by one poll.
    let step_store = store.clone();
    let step_key = format!("{run_id}/step/{rank:08}");
    std::thread::Builder::new()
        .name("step-pub".into())
        .spawn(move || loop {
            let s = telemetry::counter("elastic.forward.steps").get();
            let _ = step_store.try_set(&step_key, s.to_le_bytes().to_vec());
            std::thread::sleep(Duration::from_millis(25));
        })
        .map_err(|e| format!("spawn step publisher: {e}"))?;

    // Cross-process join rendezvous: the same store carries announce/ticket
    // keys; member addresses are already under `{run}/addr/` from the
    // rendezvous above, which is exactly where `NetJoin::contact` looks.
    let join = ulfm::NetJoin::new(store.clone(), format!("{run_id}/")).with_contact(contact);
    let ep = Endpoint::from_backend(Arc::clone(&backend) as Arc<dyn Backend>);
    let (_universe, proc) = if is_joiner {
        Universe::joiner_for_backend(ep, Arc::new(join))
    } else {
        let group: Vec<RankId> = (0..world).map(RankId).collect();
        Universe::for_backend_with_join(ep, group, Arc::new(join))
    };
    let fwd = ForwardConfig {
        spec: TrainSpec {
            total_steps: steps,
            min_workers,
            agree,
            ..TrainSpec::default()
        },
        policy: RecoveryPolicy::DropProcess,
        accept_joiners: expect_joiners > 0,
        expected_joiners: expect_joiners,
        renormalize_after_loss: false,
        lr_scaling: None,
        // Bounded waits everywhere: a joiner that never gets its ticket
        // exits instead of hanging, and members give up on a joiner that
        // never announces instead of stalling the epoch boundary.
        join_wait: Some(Duration::from_secs(join_wait_secs)),
        policy_mode: elastic::PolicyMode::default(),
        expected_spares: 0,
        ckpt_every: 0,
    };
    let out = run_forward_worker(&proc, &fwd, is_joiner);

    let (label, stats) = match &out.exit {
        WorkerExit::Completed(s) => ("completed", Some(s)),
        WorkerExit::Excluded(s) => ("excluded", Some(s)),
        WorkerExit::Aborted(s) => ("aborted", Some(s)),
        WorkerExit::Died => ("died", None),
    };
    let line = match stats {
        Some(s) => format!(
            "exit={label} fp={:016x} steps={} world={} recoveries={}\n",
            s.state_fingerprint, s.steps_done, s.final_world, s.recoveries
        ),
        None => format!("exit={label}\n"),
    };
    std::fs::create_dir_all(&outdir).map_err(|e| format!("create {outdir}: {e}"))?;
    std::fs::write(format!("{outdir}/result-{rank}.txt"), line)
        .map_err(|e| format!("write result: {e}"))?;
    std::fs::write(
        format!("{outdir}/telemetry-{rank}.json"),
        telemetry::snapshot().to_json(),
    )
    .map_err(|e| format!("write telemetry: {e}"))?;
    backend.shutdown();
    Ok(())
}

/// One worker's audited outcome, parsed back from its result file.
struct WorkerReport {
    exit: String,
    fingerprint: Option<u64>,
    detail: String,
}

fn read_report(outdir: &str, rank: usize) -> WorkerReport {
    let path = format!("{outdir}/result-{rank}.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return WorkerReport {
            exit: "no-result".into(),
            fingerprint: None,
            detail: "(process never reported — killed)".into(),
        };
    };
    let mut exit = "unparsed".to_string();
    let mut fingerprint = None;
    for token in text.split_whitespace() {
        if let Some(v) = token.strip_prefix("exit=") {
            exit = v.to_string();
        } else if let Some(v) = token.strip_prefix("fp=") {
            fingerprint = u64::from_str_radix(v, 16).ok();
        }
    }
    WorkerReport {
        exit,
        fingerprint,
        detail: text.trim().to_string(),
    }
}

/// `repro launch` — spawn and audit a multi-process elastic run. Returns
/// the process exit code.
pub fn launch_main(args: &[String]) -> Result<i32, String> {
    let flags = parse_flags(args)?;
    let world: usize = flag(&flags, "n", 3)?;
    let transport = flags
        .get("transport")
        .cloned()
        .unwrap_or_else(|| "tcp".into());
    backend_kind(&transport)?; // validate before spawning anything
    let steps: usize = flag(&flags, "steps", 16)?;
    let min_workers: usize = flag(&flags, "min-workers", 1)?;
    let suspicion_ms: u64 = flag(&flags, "suspicion-ms", 2000)?;
    let agree_name = flags
        .get("agree")
        .cloned()
        .unwrap_or_else(|| "flood".into());
    agree_impl(&agree_name)?; // validate before spawning anything
    let timeout_secs: u64 = flag(&flags, "timeout-secs", 120)?;
    let die_spec = flags.get("die").cloned().unwrap_or_default();
    let die = parse_die_spec(&die_spec)?;
    let spares: usize = flag(&flags, "spares", 0)?;
    let spawn_spec = flags.get("spawn").cloned().unwrap_or_default();
    let spawns = parse_spawn_spec(&spawn_spec)?;
    // Spares take ranks `world..world+spares`; `--spawn` ranks are explicit
    // and must not collide with either range.
    for (r, _) in &spawns {
        if *r < world + spares {
            return Err(format!(
                "--spawn rank {r} collides with initial world {world} + {spares} spare(s)"
            ));
        }
    }
    let expect_joiners: usize = flag(&flags, "expect-joiners", spares + spawns.len())?;
    let join_wait_secs: u64 = flag(&flags, "join-wait-secs", 30)?;
    let outdir = flags
        .get("outdir")
        .cloned()
        .unwrap_or_else(|| "multiproc-out".into());
    std::fs::create_dir_all(&outdir).map_err(|e| format!("create {outdir}: {e}"))?;

    let server = StoreServer::spawn(KvStore::shared()).map_err(|e| format!("store server: {e}"))?;
    let run_id = format!("mp-{}", std::process::id());
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    println!(
        "launch: {world} workers over {transport}, store at {}, run id {run_id}",
        server.addr()
    );
    if !die.is_empty() {
        println!("launch: scripted deaths: {die_spec}");
    }

    let spawn_worker = |rank: usize, joiner: bool| -> Result<std::process::Child, String> {
        let log = std::fs::File::create(format!("{outdir}/worker-{rank}.log"))
            .map_err(|e| format!("create worker log: {e}"))?;
        std::process::Command::new(&exe)
            .args([
                "worker",
                "--store",
                server.addr(),
                "--rank",
                &rank.to_string(),
                "--world",
                &world.to_string(),
                "--joiner",
                if joiner { "1" } else { "0" },
                "--transport",
                &transport,
                "--run-id",
                &run_id,
                "--steps",
                &steps.to_string(),
                "--min-workers",
                &min_workers.to_string(),
                "--suspicion-ms",
                &suspicion_ms.to_string(),
                "--expect-joiners",
                &expect_joiners.to_string(),
                "--join-wait-secs",
                &join_wait_secs.to_string(),
                "--agree",
                &agree_name,
                "--die",
                &die_spec,
                "--outdir",
                &outdir,
            ])
            .stdout(std::process::Stdio::from(
                log.try_clone().map_err(|e| e.to_string())?,
            ))
            .stderr(std::process::Stdio::from(log))
            .spawn()
            .map_err(|e| format!("spawn worker {rank}: {e}"))
    };

    let mut children = Vec::new();
    let mut joiner_ranks = Vec::new();
    for rank in 0..world {
        children.push((rank, spawn_worker(rank, false)?));
    }
    // Warm spares join immediately: they announce, then wait for the
    // group's next epoch boundary to admit them.
    for i in 0..spares {
        let rank = world + i;
        println!("launch: spawning spare joiner {rank}");
        children.push((rank, spawn_worker(rank, true)?));
        joiner_ranks.push(rank);
    }

    // Wait for every worker, firing scripted `--spawn` joiners when the
    // progress beacons reach their step, and SIGKILLing stragglers at the
    // deadline.
    let deadline = Instant::now() + Duration::from_secs(timeout_secs);
    let step_prefix = format!("{run_id}/step/");
    let mut pending = spawns;
    let mut timed_out = Vec::new();
    while !children.is_empty() || !pending.is_empty() {
        if !pending.is_empty() {
            // The launcher owns the store, so it reads the beacons directly.
            let step_now = server
                .store()
                .scan_prefix(&step_prefix)
                .iter()
                .filter_map(|(_, v)| Some(u64::from_le_bytes(v.as_slice().try_into().ok()?)))
                .max()
                .unwrap_or(0);
            let mut rest = Vec::new();
            for (rank, at_step) in pending {
                if step_now >= at_step {
                    println!("launch: step {step_now} reached — spawning joiner {rank}");
                    children.push((rank, spawn_worker(rank, true)?));
                    joiner_ranks.push(rank);
                } else {
                    rest.push((rank, at_step));
                }
            }
            pending = rest;
        }
        children.retain_mut(|(rank, child)| match child.try_wait() {
            Ok(Some(status)) => {
                println!("launch: worker {rank} exited: {status}");
                false
            }
            Ok(None) => true,
            Err(e) => {
                eprintln!("launch: wait on worker {rank}: {e}");
                false
            }
        });
        if children.is_empty() && !pending.is_empty() {
            for (rank, at_step) in &pending {
                eprintln!("launch: joiner {rank} never spawned (step {at_step} not reached)");
            }
            break;
        }
        if children.is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            for (rank, child) in &mut children {
                eprintln!("launch: worker {rank} timed out, killing");
                let _ = child.kill();
                let _ = child.wait();
                timed_out.push(*rank);
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();

    // Audit: every non-victim — initial member or admitted joiner — must
    // complete with the same model fingerprint; every scripted victim must
    // *not* have completed. Joiners that were never spawned (their trigger
    // step was not reached) are not audited.
    let victims: Vec<usize> = die.iter().map(|(r, _, _)| *r).collect();
    let mut ok = timed_out.is_empty();
    let mut fingerprints = Vec::new();
    println!("\n rank | outcome");
    println!("------+---------");
    for rank in (0..world).chain(joiner_ranks) {
        let report = read_report(&outdir, rank);
        println!(" {rank:>4} | {}", report.detail);
        if victims.contains(&rank) {
            if report.exit == "completed" {
                eprintln!("launch: victim {rank} completed — fault never fired");
                ok = false;
            }
        } else if report.exit == "completed" {
            fingerprints.push((rank, report.fingerprint));
        } else {
            eprintln!("launch: survivor {rank} did not complete ({})", report.exit);
            ok = false;
        }
    }
    for pair in fingerprints.windows(2) {
        if pair[0].1 != pair[1].1 {
            eprintln!(
                "launch: replicas diverged: rank {} vs rank {}",
                pair[0].0, pair[1].0
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "\nlaunch: OK — {} survivors hold identical replicas (telemetry in {outdir}/)",
            fingerprints.len()
        );
        Ok(0)
    } else {
        eprintln!("\nlaunch: FAILED — see {outdir}/worker-*.log");
        Ok(1)
    }
}
