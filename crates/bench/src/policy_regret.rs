//! Regret benchmark for the adaptive recovery policy ("Chameleon mode").
//!
//! The question the policy layer answers is *which recovery arm survives a
//! given failure cheapest*. This module scores that decision offline: a
//! deterministic stream of failure events is drawn from several
//! failure-schedule *families* (spare-rich clusters, late failures with a
//! cold pool, runs with badly stale checkpoints, cascades that kill the
//! promoted spare mid-recovery), each event carries a *ground-truth* cost
//! per arm — computed from per-event true parameters the engine cannot
//! see — and four policies replay the same stream:
//!
//! * **oracle** — argmin of the ground truth (perfect knowledge, the
//!   regret baseline);
//! * **adaptive** — [`PolicyEngine`] in Chameleon mode, scoring only the
//!   observable [`PolicyInputs`] with the default calibrated model;
//! * **three statics** — the paper's fixed-engine behaviour, one per arm
//!   (infeasible picks degrade to shrink, exactly as the runtime commits).
//!
//! The headline claim mirrored from Chameleon-style systems: *no static
//! arm wins everywhere*, so the adaptive policy's aggregate cost must sit
//! strictly below the worst static's — and close to the oracle. `repro
//! policy` asserts both and writes the series to `BENCH_policy.json`.

use elastic::{PolicyEngine, PolicyInputs, PolicyMode, RecoveryCostModel};
use ulfm::RecoveryArm;

/// One simulated failure with its hidden ground truth.
#[derive(Clone, Debug)]
pub struct FailureEvent {
    /// What the policy engine observes at the failure site.
    pub inputs: PolicyInputs,
    /// The *true* per-arm cost model for this event — detection latency,
    /// checkpoint-storage speed and spare re-init time jittered around the
    /// calibrated defaults (the engine only knows the defaults).
    pub truth: RecoveryCostModel,
    /// Hidden outcome: a committed promotion dies mid-recovery (the spare
    /// is lost before the state sync lands) and falls down the chain,
    /// paying the failed attempt *plus* the shrink it lands on.
    pub promotion_fails: bool,
}

impl FailureEvent {
    /// Ground-truth cost of resolving this failure with `arm`, including
    /// the runtime's degradations: an infeasible arm commits shrink, and a
    /// failed promotion pays the chain (attempt + shrink + shrink's
    /// deficit).
    pub fn true_cost(&self, arm: RecoveryArm) -> f64 {
        let t = &self.truth;
        let shrink = t.score(RecoveryArm::Shrink, &self.inputs);
        match arm {
            RecoveryArm::Shrink => shrink,
            RecoveryArm::PromoteSpares => {
                if self.inputs.spares == 0 {
                    // The commit round downgrades a cold pool to shrink.
                    shrink
                } else if self.promotion_fails {
                    // spare → shrink fallback edge: the attempt is sunk.
                    t.recovery_cost(RecoveryArm::PromoteSpares, &self.inputs) + shrink
                } else {
                    t.score(RecoveryArm::PromoteSpares, &self.inputs)
                }
            }
            RecoveryArm::Rollback => {
                if self.inputs.has_ckpt {
                    t.score(RecoveryArm::Rollback, &self.inputs)
                } else {
                    // Static(Rollback) without a checkpoint degrades too.
                    shrink
                }
            }
        }
    }

    /// The arm a perfect-knowledge oracle executes, and its cost.
    pub fn oracle(&self) -> (RecoveryArm, f64) {
        [
            RecoveryArm::Shrink,
            RecoveryArm::PromoteSpares,
            RecoveryArm::Rollback,
        ]
        .into_iter()
        .map(|a| (a, self.true_cost(a)))
        .fold((RecoveryArm::Shrink, f64::INFINITY), |acc, (a, c)| {
            if c < acc.1 {
                (a, c)
            } else {
                acc
            }
        })
    }
}

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[lo, hi)`, from the deterministic stream.
fn uniform(s: &mut u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * (splitmix64(s) >> 11) as f64 / (1u64 << 53) as f64
}

/// A true cost model jittered around the calibrated defaults: storage,
/// network and re-init speeds the engine's fixed model can only
/// approximate.
fn jittered_truth(s: &mut u64) -> RecoveryCostModel {
    let mut t = RecoveryCostModel::default();
    t.ckpt_load *= uniform(s, 0.5, 2.0);
    t.spare_init *= uniform(s, 0.5, 2.0);
    t.comm.alpha *= uniform(s, 0.5, 2.0);
    t.comm.beta *= uniform(s, 0.5, 2.0);
    t
}

/// The benchmarked failure-schedule families. Each stresses a different
/// arm's blind spot, so no static policy can win all of them.
pub const FAMILIES: [&str; 5] = [
    "spare-rich",
    "late-failure-cold-pool",
    "stale-checkpoint",
    "finish-line-with-spares",
    "cascade-spare-death",
];

/// Draw the deterministic event stream for one family.
pub fn family_events(family: &str, events: usize, seed: u64) -> Vec<FailureEvent> {
    let mut s = seed ^ 0xF00D_0000_0000_0000;
    for b in family.bytes() {
        s = s.wrapping_mul(0x100_0000_01B3) ^ b as u64;
    }
    (0..events)
        .map(|_| {
            let world = 4 + (splitmix64(&mut s) % 60) as usize;
            let lost = 1 + (splitmix64(&mut s) % 2) as usize;
            let base = PolicyInputs {
                world,
                lost,
                spares: 0,
                has_ckpt: false,
                ckpt_age_steps: 0,
                remaining_steps: 0,
                step_time: uniform(&mut s, 0.05, 0.5),
                state_bytes: uniform(&mut s, 1e6, 4e8),
                perturb_rate: uniform(&mut s, 0.0, 0.05),
            };
            let (inputs, promotion_fails) = match family {
                // Warm spares standing by, plenty of training ahead:
                // promotion is usually the true winner, and a shrink-only
                // policy bleeds throughput for the rest of the run.
                "spare-rich" => (
                    PolicyInputs {
                        spares: 1 + (splitmix64(&mut s) % 3) as usize,
                        has_ckpt: splitmix64(&mut s).is_multiple_of(2),
                        ckpt_age_steps: 5 + splitmix64(&mut s) % 45,
                        remaining_steps: 1000 + splitmix64(&mut s) % 4000,
                        ..base
                    },
                    false,
                ),
                // The failure lands near the end of the run with an empty
                // pool: there is almost no deficit window left, shrink is
                // nearly free, and rollback's reload is pure overhead.
                "late-failure-cold-pool" => (
                    PolicyInputs {
                        has_ckpt: true,
                        ckpt_age_steps: splitmix64(&mut s) % 20,
                        remaining_steps: 1 + splitmix64(&mut s) % 50,
                        ..base
                    },
                    false,
                ),
                // A checkpoint exists but is hundreds of steps stale:
                // rolling back recomputes a fortune. Statically pinning the
                // rollback engine is the blind spot here.
                "stale-checkpoint" => (
                    PolicyInputs {
                        has_ckpt: true,
                        ckpt_age_steps: 500 + splitmix64(&mut s) % 4500,
                        remaining_steps: 500 + splitmix64(&mut s) % 2000,
                        spares: (splitmix64(&mut s) % 2) as usize,
                        ..base
                    },
                    false,
                ),
                // Warm spares are standing by, but the run is steps from
                // done: there is no deficit window left for promotion to
                // recoup its init cost, so shrinking to the finish line is
                // the true winner. A statically pinned spare policy wastes
                // a full promotion per failure here.
                "finish-line-with-spares" => (
                    PolicyInputs {
                        spares: 1 + (splitmix64(&mut s) % 2) as usize,
                        has_ckpt: true,
                        ckpt_age_steps: splitmix64(&mut s) % 10,
                        remaining_steps: splitmix64(&mut s) % 3,
                        step_time: uniform(&mut s, 0.01, 0.1),
                        ..base
                    },
                    false,
                ),
                // The pool looks warm but the cascade kills the promoted
                // spare mid-recovery: every committed promotion pays the
                // fallback chain. Adaptive cannot see this coming — this
                // family is where its (bounded) regret comes from.
                "cascade-spare-death" => (
                    PolicyInputs {
                        spares: 1 + (splitmix64(&mut s) % 2) as usize,
                        has_ckpt: true,
                        ckpt_age_steps: splitmix64(&mut s) % 50,
                        remaining_steps: 500 + splitmix64(&mut s) % 2000,
                        ..base
                    },
                    true,
                ),
                other => unreachable!("unknown family {other}"),
            };
            FailureEvent {
                inputs,
                truth: jittered_truth(&mut s),
                promotion_fails,
            }
        })
        .collect()
}

/// Aggregate cost of one policy over one family's event stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyCost {
    /// Summed ground-truth seconds.
    pub total_s: f64,
}

/// Per-family benchmark row.
#[derive(Clone, Debug)]
pub struct FamilyReport {
    /// Family key (see [`FAMILIES`]).
    pub family: &'static str,
    /// Events replayed.
    pub events: usize,
    /// Perfect-knowledge baseline.
    pub oracle_s: f64,
    /// Chameleon mode.
    pub adaptive_s: f64,
    /// `Static(Shrink)`, `Static(PromoteSpares)`, `Static(Rollback)` in
    /// [`STATIC_ARMS`] order.
    pub static_s: [f64; 3],
}

/// The static policies benchmarked against, in report order.
pub const STATIC_ARMS: [RecoveryArm; 3] = [
    RecoveryArm::Shrink,
    RecoveryArm::PromoteSpares,
    RecoveryArm::Rollback,
];

impl FamilyReport {
    /// Regret of the adaptive policy vs the oracle on this family.
    pub fn adaptive_regret(&self) -> f64 {
        self.adaptive_s - self.oracle_s
    }

    /// Cost of the worst static policy on this family.
    pub fn worst_static(&self) -> f64 {
        self.static_s
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }
}

/// Replay `events` failures per family and score every policy.
pub fn regret_report(events: usize, seed: u64) -> Vec<FamilyReport> {
    FAMILIES
        .iter()
        .map(|family| {
            let stream = family_events(family, events, seed);
            let mut oracle_s = 0.0;
            let mut adaptive_s = 0.0;
            let mut static_s = [0.0f64; 3];
            for ev in &stream {
                oracle_s += ev.oracle().1;
                let pick = PolicyEngine::new(PolicyMode::Adaptive).choose(&ev.inputs);
                adaptive_s += ev.true_cost(pick);
                for (i, &arm) in STATIC_ARMS.iter().enumerate() {
                    let pick = PolicyEngine::new(PolicyMode::Static(arm)).choose(&ev.inputs);
                    static_s[i] += ev.true_cost(pick);
                }
            }
            FamilyReport {
                family,
                events: stream.len(),
                oracle_s,
                adaptive_s,
                static_s,
            }
        })
        .collect()
}

/// Aggregate over every family (the headline numbers `repro policy`
/// asserts on).
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggregate {
    /// Oracle total, seconds.
    pub oracle_s: f64,
    /// Adaptive total, seconds.
    pub adaptive_s: f64,
    /// Static totals in [`STATIC_ARMS`] order.
    pub static_s: [f64; 3],
}

impl Aggregate {
    /// Fold the per-family rows.
    pub fn of(rows: &[FamilyReport]) -> Self {
        let mut a = Aggregate::default();
        for r in rows {
            a.oracle_s += r.oracle_s;
            a.adaptive_s += r.adaptive_s;
            for i in 0..3 {
                a.static_s[i] += r.static_s[i];
            }
        }
        a
    }

    /// The worst static policy's aggregate cost.
    pub fn worst_static(&self) -> f64 {
        self.static_s
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }

    /// The best static policy's aggregate cost.
    pub fn best_static(&self) -> f64 {
        self.static_s.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    }

    /// Adaptive cost as a multiple of the oracle (1.0 = perfect).
    pub fn regret_ratio(&self) -> f64 {
        self.adaptive_s / self.oracle_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_streams_are_deterministic() {
        let a = family_events("spare-rich", 50, 7);
        let b = family_events("spare-rich", 50, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.inputs, y.inputs);
            assert_eq!(x.truth, y.truth);
        }
        // Different seeds draw different streams.
        let c = family_events("spare-rich", 50, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.inputs != y.inputs));
    }

    #[test]
    fn oracle_is_a_lower_bound_everywhere() {
        for family in FAMILIES {
            for ev in family_events(family, 100, 1) {
                let (_, best) = ev.oracle();
                for arm in STATIC_ARMS {
                    assert!(
                        ev.true_cost(arm) >= best,
                        "{family}: oracle beaten by {arm:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_beats_the_worst_static_in_aggregate() {
        // The bench's headline claim, checked at test scale too.
        let agg = Aggregate::of(&regret_report(100, 42));
        assert!(
            agg.adaptive_s < agg.worst_static(),
            "adaptive {} vs worst static {}",
            agg.adaptive_s,
            agg.worst_static()
        );
        assert!(
            agg.adaptive_s < agg.best_static(),
            "adaptive {} vs best static {} — no single arm wins every family",
            agg.adaptive_s,
            agg.best_static()
        );
        assert!(agg.oracle_s <= agg.adaptive_s, "nobody beats the oracle");
    }

    #[test]
    fn failed_promotions_cost_more_than_shrink() {
        for ev in family_events("cascade-spare-death", 50, 3) {
            assert!(ev.promotion_fails);
            assert!(
                ev.true_cost(RecoveryArm::PromoteSpares) > ev.true_cost(RecoveryArm::Shrink),
                "a failed promotion pays the attempt plus the shrink"
            );
        }
    }
}
