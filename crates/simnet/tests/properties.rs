//! Property tests for the simulator: DES vs closed form, monotonicity of
//! the cost models, and straggler bounds.

use proptest::prelude::*;
use simnet::network::{ring_allreduce_time, simulate_ring_allreduce};
use simnet::{
    backward_breakdown, forward_breakdown, ClusterModel, EpisodeConfig, Level, SimScenario,
};

const A: f64 = 1.5e-6;
const B: f64 = 1.0 / 23.0e9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The discrete-event ring equals the closed form for homogeneous
    /// starts, for any group size and message size.
    #[test]
    fn des_equals_closed_form(w in 1usize..24, kb in 1u32..4096) {
        let n = kb as f64 * 1024.0;
        let des = simulate_ring_allreduce(&vec![0.0; w], n, A, B);
        let formula = ring_allreduce_time(n, w, A, B);
        prop_assert!((des - formula).abs() <= formula * 1e-9 + 1e-12,
            "w={}, n={}: {} vs {}", w, n, des, formula);
    }

    /// With arbitrary non-negative start skews, completion is bounded below
    /// by (max skew) and above by (max skew + closed form): the ring can
    /// hide some skew in the pipeline but never beats the slowest entrant.
    #[test]
    fn straggler_bounds(
        skews in proptest::collection::vec(0.0f64..0.5, 2..16),
        kb in 1u32..512,
    ) {
        let n = kb as f64 * 1024.0;
        let w = skews.len();
        let t = simulate_ring_allreduce(&skews, n, A, B);
        let max_skew = skews.iter().cloned().fold(0.0, f64::max);
        let formula = ring_allreduce_time(n, w, A, B);
        prop_assert!(t >= max_skew - 1e-12);
        prop_assert!(t <= max_skew + formula + 1e-9,
            "t={} exceeds max_skew {} + formula {}", t, max_skew, formula);
    }

    /// Cost-model monotonicity: more workers never make the baseline's
    /// communication reconstruction cheaper, for any model and scenario.
    #[test]
    fn baseline_comm_cost_monotone_in_workers(
        model_idx in 0usize..3,
        scenario_idx in 0usize..3,
        w1 in 2usize..64,
        extra in 1usize..64,
    ) {
        let model = dnn::paper_models()[model_idx].clone();
        let scenario = [SimScenario::Down, SimScenario::Same, SimScenario::Up][scenario_idx];
        let mk = |w: usize| EpisodeConfig {
            cluster: ClusterModel::summit(),
            model: model.clone(),
            workers_before: w.max(7), // keep node-drop feasible
            scenario,
            level: Level::Node,
        };
        let small = backward_breakdown(&mk(w1)).get("rendezvous")
            + backward_breakdown(&mk(w1)).get("reinit_gloo");
        let big_w = w1 + extra;
        let big = backward_breakdown(&mk(big_w)).get("rendezvous")
            + backward_breakdown(&mk(big_w)).get("reinit_gloo");
        prop_assert!(big >= small - 1e-9, "w {} -> {}: {} -> {}", w1, big_w, small, big);
    }

    /// Forward recovery's failure-path cost never exceeds a second, at any
    /// scale up to 1024 workers, for any model.
    #[test]
    fn forward_failure_path_bounded(model_idx in 0usize..3, w in 7usize..1024) {
        let cfg = EpisodeConfig {
            cluster: ClusterModel::summit(),
            model: dnn::paper_models()[model_idx].clone(),
            workers_before: w,
            scenario: SimScenario::Down,
            level: Level::Node,
        };
        let total = forward_breakdown(&cfg).total();
        prop_assert!(total < 1.0, "w={}: {}", w, total);
    }

    /// Breakdowns are internally consistent: the three-way aggregation
    /// always partitions the total exactly.
    #[test]
    fn aggregation_partitions_total(
        model_idx in 0usize..3,
        scenario_idx in 0usize..3,
        level_node in any::<bool>(),
        w in 7usize..256,
    ) {
        use simnet::recovery::{COMM_SEGMENTS, STATE_SEGMENTS};
        let cfg = EpisodeConfig {
            cluster: ClusterModel::summit(),
            model: dnn::paper_models()[model_idx].clone(),
            workers_before: w,
            scenario: [SimScenario::Down, SimScenario::Same, SimScenario::Up][scenario_idx],
            level: if level_node { Level::Node } else { Level::Process },
        };
        for b in [forward_breakdown(&cfg), backward_breakdown(&cfg)] {
            let (c, s, r) = b.aggregate(COMM_SEGMENTS, STATE_SEGMENTS);
            prop_assert!((c + s + r - b.total()).abs() < 1e-9);
        }
    }
}
