//! A small discrete-event simulation core.
//!
//! Events are closures scheduled at virtual times; the simulator pops them
//! in time order (FIFO among equal times) and runs them, letting handlers
//! schedule further events. State shared between events lives in the
//! user's `World` type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds.
pub type SimTime = f64;

type Action<W> = Box<dyn FnOnce(&mut Simulator<W>, &mut W)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with seq as
        // the FIFO tiebreaker.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue + clock.
pub struct Simulator<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    events_run: u64,
}

impl<W> Default for Simulator<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Simulator<W> {
    /// An empty simulation at time zero.
    pub fn new() -> Self {
        Self {
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            events_run: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events executed so far.
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// Schedule `action` to run `delay` seconds from now.
    ///
    /// # Panics
    /// Panics on negative or non-finite delays.
    pub fn schedule(
        &mut self,
        delay: SimTime,
        action: impl FnOnce(&mut Simulator<W>, &mut W) + 'static,
    ) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "invalid event delay {delay}"
        );
        self.seq += 1;
        self.queue.push(Scheduled {
            time: self.now + delay,
            seq: self.seq,
            action: Box::new(action),
        });
    }

    /// Run until the queue drains; returns the final virtual time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_run += 1;
            (ev.action)(self, world);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulator::<Vec<u32>>::new();
        let mut world = Vec::new();
        sim.schedule(3.0, |_, w| w.push(3));
        sim.schedule(1.0, |_, w| w.push(1));
        sim.schedule(2.0, |_, w| w.push(2));
        let end = sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(end, 3.0);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut sim = Simulator::<Vec<u32>>::new();
        let mut world = Vec::new();
        for i in 0..5 {
            sim.schedule(1.0, move |_, w| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulator::<Vec<f64>>::new();
        let mut world = Vec::new();
        fn tick(sim: &mut Simulator<Vec<f64>>, w: &mut Vec<f64>) {
            w.push(sim.now());
            if w.len() < 4 {
                sim.schedule(0.5, tick);
            }
        }
        sim.schedule(0.0, tick);
        let end = sim.run(&mut world);
        assert_eq!(world, vec![0.0, 0.5, 1.0, 1.5]);
        assert_eq!(end, 1.5);
        assert_eq!(sim.events_run(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid event delay")]
    fn negative_delay_rejected() {
        let mut sim = Simulator::<()>::new();
        sim.schedule(-1.0, |_, _| {});
    }
}
