//! Discrete-event simulation of the KV-store rendezvous.
//!
//! Horovod's rendezvous server is a single HTTP endpoint: every `set`,
//! `poll`, and `scan` from every worker serializes through it. That serial
//! bottleneck is why the baseline's "resume rendezvous" phase grows
//! *linearly* with worker count in the paper's figures, while ULFM's
//! recovery (no rendezvous at all) does not.

use crate::des::Simulator;

/// Parameters of a simulated rendezvous round.
#[derive(Clone, Copy, Debug)]
pub struct RendezvousSim {
    /// Number of workers arriving.
    pub workers: usize,
    /// Server service time per request (≈ one KV RTT).
    pub service: f64,
    /// Worker poll back-off between "are we all here?" checks.
    pub poll_interval: f64,
    /// Number of node-local rendezvous rounds piggy-backed after the
    /// global one (1 in Horovod: local discovery).
    pub local_rounds: usize,
}

struct World {
    server_free_at: f64,
    arrived: usize,
    workers: usize,
    finished: usize,
    finish_time: f64,
}

/// Simulate one global + local rendezvous; returns the time the last
/// worker finishes.
pub fn simulate_rendezvous(cfg: &RendezvousSim) -> f64 {
    let w = cfg.workers;
    if w == 0 {
        return 0.0;
    }
    let mut world = World {
        server_free_at: 0.0,
        arrived: 0,
        workers: w,
        finished: 0,
        finish_time: 0.0,
    };
    let mut sim = Simulator::<World>::new();
    let service = cfg.service;
    let poll = cfg.poll_interval;
    let local_reqs = cfg.local_rounds as f64 * 3.0; // set + poll + scan per round

    // Each worker: publish (set), then poll until all arrived, then scan,
    // then the local round(s). Worker arrival is staggered by a tiny skew
    // so the event order is deterministic.
    for i in 0..w {
        let skew = i as f64 * 1e-6;
        sim.schedule(skew, move |sim, world| {
            // SET request through the serial server.
            let t = request(sim.now(), world, service);
            world.arrived += 1;
            let delay = t - sim.now();
            sim.schedule(delay, move |sim, world| {
                poll_loop(sim, world, service, poll, local_reqs)
            });
        });
    }
    sim.run(&mut world);
    world.finish_time
}

/// Serialize one request through the server; returns its completion time.
fn request(now: f64, world: &mut World, service: f64) -> f64 {
    let start = world.server_free_at.max(now);
    world.server_free_at = start + service;
    world.server_free_at
}

fn poll_loop(sim: &mut Simulator<World>, world: &mut World, service: f64, poll: f64, local: f64) {
    // One poll request.
    let t = request(sim.now(), world, service);
    let all_here = world.arrived == world.workers;
    let delay = t - sim.now();
    if all_here {
        // Scan + local round(s): (1 + local) further serialized requests.
        sim.schedule(delay, move |sim, world| {
            let mut done = sim.now();
            for _ in 0..(1 + local as usize) {
                done = request(done, world, service);
            }
            let d2 = done - sim.now();
            sim.schedule(d2, |sim, world| {
                world.finished += 1;
                world.finish_time = world.finish_time.max(sim.now());
            });
        });
    } else {
        sim.schedule(delay + poll, move |sim, world| {
            poll_loop(sim, world, service, poll, local)
        });
    }
}

/// Closed-form lower bound: every worker issues at least `5 + 3·local`
/// requests through a serial server.
pub fn rendezvous_lower_bound(cfg: &RendezvousSim) -> f64 {
    (cfg.workers as f64) * cfg.service * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize) -> RendezvousSim {
        RendezvousSim {
            workers,
            service: 1e-3,
            poll_interval: 10e-3,
            local_rounds: 1,
        }
    }

    #[test]
    fn empty_rendezvous_is_free() {
        assert_eq!(simulate_rendezvous(&cfg(0)), 0.0);
    }

    #[test]
    fn single_worker_is_fast() {
        let t = simulate_rendezvous(&cfg(1));
        // set + poll + scan + local(3) = 6 requests.
        assert!(t >= 6.0e-3 - 1e-9, "t = {t}");
        assert!(t < 20e-3);
    }

    #[test]
    fn cost_grows_superlinearly_with_workers() {
        let t12 = simulate_rendezvous(&cfg(12));
        let t96 = simulate_rendezvous(&cfg(96));
        assert!(t96 > t12 * 4.0, "t12={t12}, t96={t96}");
        assert!(t96 >= rendezvous_lower_bound(&cfg(96)));
    }

    #[test]
    fn deterministic() {
        assert_eq!(simulate_rendezvous(&cfg(24)), simulate_rendezvous(&cfg(24)));
    }

    #[test]
    fn faster_server_means_faster_rendezvous() {
        let slow = simulate_rendezvous(&cfg(24));
        let fast = simulate_rendezvous(&RendezvousSim {
            service: 1e-4,
            ..cfg(24)
        });
        assert!(fast < slow);
    }
}
