//! α–β collective cost models, closed-form and discrete-event.
//!
//! Closed forms are the standard LogP-style expressions used to reason
//! about collective algorithms; the DES variants execute the same protocol
//! event by event and are cross-checked against the closed forms in tests
//! (equal in the homogeneous case, and strictly more informative with
//! per-rank start skews, e.g. stragglers re-entering after recovery).

use crate::des::Simulator;

/// Ring allreduce time: `2(w-1)·α + 2·((w-1)/w)·n·β` (reduce-scatter +
/// allgather, bandwidth-optimal).
pub fn ring_allreduce_time(n_bytes: f64, w: usize, alpha: f64, beta: f64) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    let w_f = w as f64;
    2.0 * (w_f - 1.0) * alpha + 2.0 * ((w_f - 1.0) / w_f) * n_bytes * beta
}

/// Recursive-doubling allreduce time: `⌈log₂ w⌉·(α + n·β)`.
pub fn recursive_doubling_allreduce_time(n_bytes: f64, w: usize, alpha: f64, beta: f64) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    let rounds = (w as f64).log2().ceil();
    rounds * (alpha + n_bytes * beta)
}

/// Binomial broadcast time: `⌈log₂ w⌉·(α + n·β)`.
pub fn bcast_time(n_bytes: f64, w: usize, alpha: f64, beta: f64) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    (w as f64).log2().ceil() * (alpha + n_bytes * beta)
}

/// Best flat allreduce time: the runtime's `AllreduceAlgo::Auto` picks
/// whichever of ring / recursive doubling is cheaper, so the flat baseline
/// in any comparison is the min of the two closed forms.
pub fn flat_allreduce_best_time(n_bytes: f64, w: usize, alpha: f64, beta: f64) -> f64 {
    ring_allreduce_time(n_bytes, w, alpha, beta)
        .min(recursive_doubling_allreduce_time(n_bytes, w, alpha, beta))
}

/// Two-level (hierarchical) allreduce time, mirroring
/// `collectives::hier_allreduce`: a binomial reduce to the node leader over
/// the intra-node fabric, the best flat allreduce among the `nodes` leaders
/// over the cross-node fabric, then a binomial broadcast back down. The
/// intra phases each cost `⌈log₂ local⌉·(α_i + n·β_i)` with
/// `local = ⌈w/nodes⌉` (the largest node gates the phase).
///
/// This is the same expression as `elastic::cost_model::HierModel` — the
/// runtime's selection model and the simulator's sweep must agree on what
/// "hierarchical" costs.
pub fn hier_allreduce_time(
    n_bytes: f64,
    w: usize,
    nodes: usize,
    alpha_intra: f64,
    beta_intra: f64,
    alpha_cross: f64,
    beta_cross: f64,
) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    let nodes = nodes.clamp(1, w);
    let local = w.div_ceil(nodes);
    let intra_rounds = if local > 1 {
        (local as f64).log2().ceil()
    } else {
        0.0
    };
    let intra = 2.0 * intra_rounds * (alpha_intra + n_bytes * beta_intra);
    intra + flat_allreduce_best_time(n_bytes, nodes, alpha_cross, beta_cross)
}

/// ERA-style agreement time: two sweeps of a binary tree, i.e.
/// `2·⌈log₂ w⌉` rounds of `round_cost`.
pub fn era_agree_time(w: usize, round_cost: f64) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    2.0 * (w as f64).log2().ceil() * round_cost
}

/// Flood-set agreement time: the runtime's conformance-oracle protocol
/// floods the merged state for `w` all-to-all rounds (one per member, so
/// at most `w-1` crashes still leave one failure-free round).
pub fn flood_agree_time(w: usize, round_cost: f64) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    w as f64 * round_cost
}

/// Lattice-agreement view-change time: failure-free the protocol decides in
/// two exchange rounds plus the decide echo, **independent of `w`**; every
/// concurrent death widens the in-flight proposal and costs at most one
/// extra exchange wave (`waves`), instead of restarting the agreement.
pub fn lattice_agree_time(w: usize, waves: usize, round_cost: f64) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    (3.0 + waves as f64) * round_cost
}

#[derive(Clone)]
struct RingWorld {
    /// completion[r][s]: when rank r finished protocol step s.
    completion: Vec<Vec<Option<f64>>>,
    /// delivery[r][s]: when the step-s message from the left neighbour
    /// arrived at rank r.
    delivery: Vec<Vec<Option<f64>>>,
    steps: usize,
    msg_time: f64,
    finish: f64,
}

/// Discrete-event simulation of a ring allreduce with per-rank start times
/// (skews model stragglers — e.g. a rank that spent longer in recovery).
/// Returns the time the *last* rank completes.
pub fn simulate_ring_allreduce(starts: &[f64], n_bytes: f64, alpha: f64, beta: f64) -> f64 {
    let w = starts.len();
    if w <= 1 {
        return starts.first().copied().unwrap_or(0.0);
    }
    let steps = 2 * (w - 1);
    let chunk = n_bytes / w as f64;
    let msg_time = alpha + chunk * beta;

    let mut world = RingWorld {
        completion: vec![vec![None; steps + 1]; w],
        delivery: vec![vec![None; steps + 1]; w],
        steps,
        msg_time,
        finish: 0.0,
    };
    let mut sim = Simulator::<RingWorld>::new();

    // "Step 0 completion" = the rank is ready to start (has its input).
    for (r, &t) in starts.iter().enumerate() {
        sim.schedule(t, move |sim, w| complete_step(sim, w, r, 0));
    }
    sim.run(&mut world);
    world.finish
}

fn complete_step(sim: &mut Simulator<RingWorld>, world: &mut RingWorld, rank: usize, step: usize) {
    let now = sim.now();
    world.completion[rank][step] = Some(now);
    if step == world.steps {
        world.finish = world.finish.max(now);
        return;
    }
    // Send this step's chunk to the right neighbour; it arrives msg_time
    // later and enables the neighbour's step+1.
    let w = world.completion.len();
    let right = (rank + 1) % w;
    let msg_time = world.msg_time;
    sim.schedule(msg_time, move |sim, world| {
        world.delivery[right][step + 1] = Some(sim.now());
        try_advance(sim, world, right, step + 1);
    });
    // Also check whether our own next step is already enabled (the message
    // from the left may have arrived while we were still busy).
    try_advance(sim, world, rank, step + 1);
}

fn try_advance(sim: &mut Simulator<RingWorld>, world: &mut RingWorld, rank: usize, step: usize) {
    if world.completion[rank][step].is_some() {
        return;
    }
    let self_ready = world.completion[rank][step - 1];
    let msg_ready = world.delivery[rank][step];
    if let (Some(a), Some(b)) = (self_ready, msg_ready) {
        let at = a.max(b);
        let delay = at - sim.now();
        sim.schedule(delay.max(0.0), move |sim, w| {
            complete_step(sim, w, rank, step)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: f64 = 1.5e-6;
    const B: f64 = 1.0 / 23.0e9;

    #[test]
    fn ring_closed_form_basics() {
        assert_eq!(ring_allreduce_time(1e6, 1, A, B), 0.0);
        let t4 = ring_allreduce_time(1e6, 4, A, B);
        let t8 = ring_allreduce_time(1e6, 8, A, B);
        // Bandwidth term saturates at 2nβ: t8 grows sublinearly vs t4.
        assert!(t8 > t4);
        assert!(t8 < t4 * 1.5);
    }

    #[test]
    fn ring_bandwidth_term_dominates_large_messages() {
        let n = 575e6; // VGG-16 gradients
        let t = ring_allreduce_time(n, 24, A, B);
        let pure_bw = 2.0 * n * B;
        assert!(t > 0.9 * pure_bw && t < 1.2 * pure_bw, "t = {t}");
    }

    #[test]
    fn recursive_doubling_beats_ring_for_tiny_messages() {
        let n = 1024.0;
        let w = 64;
        assert!(recursive_doubling_allreduce_time(n, w, A, B) < ring_allreduce_time(n, w, A, B));
    }

    #[test]
    fn ring_beats_recursive_doubling_for_huge_messages() {
        let n = 100e6;
        let w = 64;
        assert!(ring_allreduce_time(n, w, A, B) < recursive_doubling_allreduce_time(n, w, A, B));
    }

    #[test]
    fn des_matches_closed_form_homogeneous() {
        for &w in &[2usize, 3, 4, 8, 13] {
            let n = 4.0e6;
            let des = simulate_ring_allreduce(&vec![0.0; w], n, A, B);
            let formula = ring_allreduce_time(n, w, A, B);
            assert!(
                (des - formula).abs() < 1e-12 + formula * 1e-9,
                "w={w}: des {des} vs formula {formula}"
            );
        }
    }

    #[test]
    fn des_straggler_delays_completion() {
        let n = 4.0e6;
        let mut starts = vec![0.0; 8];
        let base = simulate_ring_allreduce(&starts, n, A, B);
        starts[3] = 0.5; // one rank enters half a second late
        let delayed = simulate_ring_allreduce(&starts, n, A, B);
        assert!(delayed >= 0.5 + base * 0.5, "straggler must gate the ring");
        assert!(delayed <= 0.5 + base + 1e-9);
    }

    #[test]
    fn des_single_rank_trivial() {
        assert_eq!(simulate_ring_allreduce(&[7.0], 1e6, A, B), 7.0);
    }

    const AI: f64 = 1.0e-6;
    const BI: f64 = 1.0 / 150.0e9;

    #[test]
    fn hier_beats_flat_at_scale_with_large_messages() {
        // 2048 nodes × 6 GPUs, 256 MB bucket: the flat ring's 2(w-1)α
        // latency term alone is ~37 ms; the hierarchy pays two cheap NVLink
        // phases and runs the ring over 2048 leaders instead.
        let n = 256.0 * 1024.0 * 1024.0;
        let w = 12_288;
        let hier = hier_allreduce_time(n, w, w / 6, AI, BI, A, B);
        let flat = flat_allreduce_best_time(n, w, A, B);
        assert!(hier < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn flat_wins_at_paper_scale_in_the_bandwidth_bound_regime() {
        // At the paper's 192 GPUs the flat ring's latency term is
        // negligible, so for large bandwidth-bound buckets the hierarchy
        // only adds intra-node rounds on the same β-bound data. (Mid-size
        // latency-bound buckets can still flip even at 192 — the sweep
        // covers that — but the training-dominant large buckets do not.)
        for &n in &[1024.0, 256.0e6] {
            let hier = hier_allreduce_time(n, 192, 32, AI, BI, A, B);
            let flat = flat_allreduce_best_time(n, 192, A, B);
            assert!(flat <= hier, "n={n}: flat {flat} vs hier {hier}");
        }
    }

    #[test]
    fn flat_recursive_doubling_wins_tiny_messages_everywhere() {
        let n = 1024.0;
        for &w in &[192usize, 12_288] {
            let hier = hier_allreduce_time(n, w, w / 6, AI, BI, A, B);
            let flat = flat_allreduce_best_time(n, w, A, B);
            assert!(flat <= hier, "w={w}");
        }
    }

    #[test]
    fn hier_degenerates_to_flat_when_nodes_are_singletons() {
        let n = 4.0e6;
        let w = 64;
        assert_eq!(
            hier_allreduce_time(n, w, w, AI, BI, A, B),
            flat_allreduce_best_time(n, w, A, B)
        );
        assert_eq!(hier_allreduce_time(n, 1, 1, AI, BI, A, B), 0.0);
    }

    #[test]
    fn simnet_and_runtime_cost_models_agree() {
        // The elastic crate's HierModel gates the hot-path selection; the
        // simnet closed form drives the sweep. They must be the same curve.
        let m = elastic::HierModel::summit();
        for &(w, nodes) in &[(192usize, 32usize), (1536, 256), (12_288, 2048)] {
            for &n in &[1024.0, 1.0e6, 256.0e6] {
                let local = w.div_ceil(nodes);
                let sim = hier_allreduce_time(n, w, nodes, AI, BI, A, B);
                let rt = m.hier_time(n, nodes, local);
                assert!(
                    (sim - rt).abs() <= 1e-12 + rt * 1e-9,
                    "w={w} n={n}: simnet {sim} vs runtime {rt}"
                );
            }
        }
    }

    #[test]
    fn era_time_is_logarithmic() {
        let t24 = era_agree_time(24, 5e-4);
        let t192 = era_agree_time(192, 5e-4);
        assert!(t192 < t24 * 2.0, "agreement must scale logarithmically");
        assert!(t192 > t24);
    }

    #[test]
    fn lattice_beats_flood_and_is_scale_free() {
        let rc = 5e-4;
        for &w in &[192usize, 1536, 12_288] {
            // Failure-free: 3 rounds vs w rounds.
            assert!(lattice_agree_time(w, 0, rc) < flood_agree_time(w, rc));
            // Even a 32-death burst (≤32 widening waves) stays far below
            // one flood pass at scale.
            assert!(lattice_agree_time(w, 32, rc) < flood_agree_time(w, rc));
        }
        // Lattice cost is independent of w; flood grows linearly.
        assert_eq!(
            lattice_agree_time(192, 2, rc),
            lattice_agree_time(12_288, 2, rc)
        );
        assert!(flood_agree_time(12_288, rc) > flood_agree_time(192, rc) * 60.0);
        // Degenerate group: nothing to agree on.
        assert_eq!(flood_agree_time(1, rc), 0.0);
        assert_eq!(lattice_agree_time(1, 5, rc), 0.0);
    }

    #[test]
    fn bcast_time_scales_log() {
        let n = 100e6;
        let t12 = bcast_time(n, 12, A, B);
        let t192 = bcast_time(n, 192, A, B);
        assert!(t192 / t12 < 2.1);
    }
}
