//! Scale sweeps: the data series behind the paper's Figures 4–7.

use crate::breakdown::Breakdown;
use crate::constants::ClusterModel;
use crate::network::{hier_allreduce_time, recursive_doubling_allreduce_time, ring_allreduce_time};
use crate::recovery::{
    backward_breakdown, forward_breakdown, EpisodeConfig, Level, SimScenario, COMM_SEGMENTS,
    STATE_SEGMENTS,
};
use dnn::ModelProfile;

/// One data point of Figs. 5–7: cost of a recovery/reconfiguration episode
/// split into the paper's three aggregate segments.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Model name.
    pub model: &'static str,
    /// Scenario label as in the paper ("Down"/"Same"/"Up").
    pub scenario: SimScenario,
    /// Process- or node-level event.
    pub level: Level,
    /// Engine: `true` = ULFM forward recovery, `false` = Elastic Horovod.
    pub ulfm: bool,
    /// Worker (GPU) count before the event.
    pub gpus: usize,
    /// "Reconstructing the communicator and resuming rendezvous" (s).
    pub comm_reconstruction: f64,
    /// "Reinitializing the training state for the new workers" (s).
    pub state_reinit: f64,
    /// "Re-computation" (s).
    pub recompute: f64,
}

impl FigureRow {
    /// Total episode cost.
    pub fn total(&self) -> f64 {
        self.comm_reconstruction + self.state_reinit + self.recompute
    }
}

/// The paper's GPU-count sweep: 12 up to 192 GPUs (§4, Figs. 5–7).
pub const GPU_SWEEP: &[usize] = &[12, 24, 48, 96, 192];

/// Generate every row of one figure (one model, all scenarios × levels ×
/// engines × scales). `fig5 = VGG-16`, `fig6 = ResNet50V2`,
/// `fig7 = NasNetMobile`.
pub fn figure_rows(model: &ModelProfile, cluster: &ClusterModel) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for &gpus in GPU_SWEEP {
        for scenario in [SimScenario::Down, SimScenario::Same, SimScenario::Up] {
            for level in [Level::Process, Level::Node] {
                for ulfm in [true, false] {
                    // Table 2: Elastic Horovod only supports node-level
                    // recovery/autoscaling; process-level rows exist only
                    // for ULFM.
                    if !ulfm && level == Level::Process {
                        continue;
                    }
                    let cfg = EpisodeConfig {
                        cluster: *cluster,
                        model: model.clone(),
                        workers_before: gpus,
                        scenario,
                        level,
                    };
                    let b = if ulfm {
                        forward_breakdown(&cfg)
                    } else {
                        backward_breakdown(&cfg)
                    };
                    let (comm, state, rest) = b.aggregate(COMM_SEGMENTS, STATE_SEGMENTS);
                    rows.push(FigureRow {
                        model: model.name,
                        scenario,
                        level,
                        ulfm,
                        gpus,
                        comm_reconstruction: comm,
                        state_reinit: state,
                        recompute: rest,
                    });
                }
            }
        }
    }
    rows
}

/// Fig. 4: detailed phase breakdowns for Scenario I, ResNet-50 on 24 GPUs
/// (24 → 18 after a node drop / 24 → 23 after a process drop), for both
/// engines and both levels. Returns `(label, breakdown)` pairs.
pub fn fig4_rows(cluster: &ClusterModel) -> Vec<(String, Breakdown)> {
    let model = ModelProfile::resnet50v2();
    let mut out = Vec::new();
    for level in [Level::Process, Level::Node] {
        for ulfm in [true, false] {
            if !ulfm && level == Level::Process {
                continue; // Elastic Horovod cannot drop a single process
            }
            let cfg = EpisodeConfig {
                cluster: *cluster,
                model: model.clone(),
                workers_before: 24,
                scenario: SimScenario::Down,
                level,
            };
            let b = if ulfm {
                forward_breakdown(&cfg)
            } else {
                backward_breakdown(&cfg)
            };
            let engine = if ulfm { "ULFM MPI" } else { "Elastic Horovod" };
            out.push((format!("{engine}, drop {level:?}"), b));
        }
    }
    out
}

// ------------------------------------------------------------ hierarchical

/// One data point of the flat-vs-hierarchical scaling sweep
/// (`repro hier` → BENCH_hier.json): one worker count × one bucket size,
/// with the closed-form time of each allreduce strategy.
#[derive(Clone, Debug)]
pub struct HierRow {
    /// Worker (GPU) count.
    pub workers: usize,
    /// Node count (`⌈workers / ranks_per_node⌉`).
    pub nodes: usize,
    /// Allreduce payload in bytes.
    pub n_bytes: usize,
    /// Flat ring time (s).
    pub flat_ring: f64,
    /// Flat recursive-doubling time (s).
    pub flat_rd: f64,
    /// Two-level hierarchical time (s).
    pub hier: f64,
}

impl HierRow {
    /// The best flat time — what `AllreduceAlgo::Auto` would pick without
    /// a hierarchy.
    pub fn flat_best(&self) -> f64 {
        self.flat_ring.min(self.flat_rd)
    }

    /// Does the two-level collective beat every flat algorithm at this
    /// (scale, size) point?
    pub fn hier_wins(&self) -> bool {
        self.hier < self.flat_best()
    }
}

/// The hierarchical scaling sweep's worker counts: from the paper's top
/// scale (192) to O(10k), doubling — the range where the flat ring's
/// `2(w-1)·α` latency term goes from negligible to dominant.
pub const HIER_GPU_SWEEP: &[usize] = &[192, 384, 768, 1536, 3072, 6144, 12_288];

/// Bucket sizes swept per scale: 1 KiB (latency-bound) to 256 MiB
/// (bandwidth-bound, 4× Horovod's default fusion buffer).
pub const HIER_SIZES: &[usize] = &[1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 28];

/// Generate every row of the flat-vs-hierarchical sweep for one cluster.
pub fn hier_rows(cluster: &ClusterModel) -> Vec<HierRow> {
    let mut rows = Vec::new();
    for &workers in HIER_GPU_SWEEP {
        let nodes = cluster.nodes_for(workers);
        for &n_bytes in HIER_SIZES {
            let n = n_bytes as f64;
            rows.push(HierRow {
                workers,
                nodes,
                n_bytes,
                flat_ring: ring_allreduce_time(n, workers, cluster.alpha, cluster.beta),
                flat_rd: recursive_doubling_allreduce_time(n, workers, cluster.alpha, cluster.beta),
                hier: hier_allreduce_time(
                    n,
                    workers,
                    nodes,
                    cluster.alpha_intra,
                    cluster.beta_intra,
                    cluster.alpha,
                    cluster.beta,
                ),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hier_sweep_shape() {
        let rows = hier_rows(&ClusterModel::summit());
        assert_eq!(rows.len(), HIER_GPU_SWEEP.len() * HIER_SIZES.len());
        for r in &rows {
            assert_eq!(r.nodes, r.workers.div_ceil(6));
            assert!(r.flat_ring > 0.0 && r.flat_rd > 0.0 && r.hier > 0.0);
        }
    }

    #[test]
    fn flat_stops_scaling_where_the_issue_says() {
        let rows = hier_rows(&ClusterModel::summit());
        let at = |w: usize, n: usize| {
            rows.iter()
                .find(|r| r.workers == w && r.n_bytes == n)
                .unwrap()
        };
        let big = 1 << 28;
        // Training wall-clock is dominated by the large bandwidth-bound
        // buckets. At the paper's 192 GPUs flat still wins those …
        assert!(
            !at(192, big).hier_wins(),
            "hierarchy must not pay off for big buckets at paper scale"
        );
        // … but the flat ring's 2(w−1)·α latency grows linearly with the
        // world, and by O(10k) workers the hierarchy wins the big buckets.
        for w in [6144usize, 12_288] {
            let r = at(w, big);
            assert!(
                r.hier_wins(),
                "hier {} vs flat {} at {w}×256MiB",
                r.hier,
                r.flat_best()
            );
        }
        // Tiny buckets stay with flat recursive doubling at every scale:
        // ⌈log₂ w⌉ rounds beat paying the intra phases on top of the
        // leaders' own log-rounds.
        assert!(rows
            .iter()
            .filter(|r| r.n_bytes == 1 << 10)
            .all(|r| !r.hier_wins()));
        // Once the hierarchy wins a (size, scale) point, it keeps winning
        // that size at every larger scale — the crossover is monotone.
        for &n in HIER_SIZES {
            let wins: Vec<bool> = HIER_GPU_SWEEP
                .iter()
                .map(|&w| at(w, n).hier_wins())
                .collect();
            let first = wins.iter().position(|&b| b);
            if let Some(i) = first {
                assert!(
                    wins[i..].iter().all(|&b| b),
                    "crossover must be monotone in scale for n={n}: {wins:?}"
                );
            }
        }
    }

    #[test]
    fn hier_row_times_match_network_closed_forms() {
        use crate::network::flat_allreduce_best_time;
        let c = ClusterModel::summit();
        let rows = hier_rows(&c);
        let r = rows
            .iter()
            .find(|r| r.workers == 1536 && r.n_bytes == 1 << 22)
            .unwrap();
        assert_eq!(
            r.flat_best(),
            flat_allreduce_best_time(1.0 * (1 << 22) as f64, 1536, c.alpha, c.beta)
        );
    }

    #[test]
    fn row_counts_match_capability_matrix() {
        let rows = figure_rows(&ModelProfile::vgg16(), &ClusterModel::summit());
        // 5 scales × 3 scenarios × (ULFM: 2 levels + EH: 1 level) = 45.
        assert_eq!(rows.len(), 5 * 3 * 3);
        // No Elastic-Horovod process-level rows (Table 2).
        assert!(rows.iter().all(|r| r.ulfm || r.level == Level::Node));
    }

    #[test]
    fn ulfm_wins_every_comparable_row() {
        for model in dnn::paper_models() {
            let rows = figure_rows(&model, &ClusterModel::summit());
            for r in rows.iter().filter(|r| !r.ulfm) {
                let twin = rows
                    .iter()
                    .find(|x| {
                        x.ulfm && x.gpus == r.gpus && x.scenario == r.scenario && x.level == r.level
                    })
                    .expect("matching ULFM row");
                // Communication-context reconstruction: the paper's claim.
                assert!(
                    twin.comm_reconstruction < r.comm_reconstruction,
                    "{} {:?} {:?} @{}: ULFM comm {:.3}s vs EH {:.3}s",
                    model.name,
                    r.scenario,
                    r.level,
                    r.gpus,
                    twin.comm_reconstruction,
                    r.comm_reconstruction
                );
                // Failure scenarios: the total wins too (Up totals are
                // dominated by the shared worker-init cost on both sides).
                if r.scenario != SimScenario::Up {
                    assert!(
                        twin.total() < r.total(),
                        "{} {:?} {:?} @{}: ULFM {:.3}s vs EH {:.3}s",
                        model.name,
                        r.scenario,
                        r.level,
                        r.gpus,
                        twin.total(),
                        r.total()
                    );
                }
            }
        }
    }

    #[test]
    fn downscale_has_no_state_reinit() {
        let rows = figure_rows(&ModelProfile::resnet50v2(), &ClusterModel::summit());
        for r in rows.iter().filter(|r| r.scenario == SimScenario::Down) {
            assert_eq!(r.state_reinit, 0.0, "{r:?}");
        }
    }

    #[test]
    fn fig4_has_three_bars() {
        let rows = fig4_rows(&ClusterModel::summit());
        assert_eq!(rows.len(), 3); // ULFM×{proc,node} + EH×node
        for (label, b) in &rows {
            assert!(b.total() > 0.0, "{label}: empty breakdown");
        }
        // EH's bar dwarfs ULFM's.
        let eh = rows.iter().find(|(l, _)| l.contains("Horovod")).unwrap();
        let ulfm_node = rows
            .iter()
            .find(|(l, _)| l.contains("ULFM") && l.contains("Node"))
            .unwrap();
        assert!(eh.1.total() > 5.0 * ulfm_node.1.total());
    }

    #[test]
    fn baseline_rendezvous_grows_with_gpus() {
        let rows = figure_rows(&ModelProfile::nasnet_mobile(), &ClusterModel::summit());
        let eh_down: Vec<&FigureRow> = rows
            .iter()
            .filter(|r| !r.ulfm && r.scenario == SimScenario::Down)
            .collect();
        for w in eh_down.windows(2) {
            assert!(
                w[1].comm_reconstruction > w[0].comm_reconstruction,
                "EH comm reconstruction must grow with scale"
            );
        }
    }
}
