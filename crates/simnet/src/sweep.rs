//! Scale sweeps: the data series behind the paper's Figures 4–7.

use crate::breakdown::Breakdown;
use crate::constants::ClusterModel;
use crate::recovery::{
    backward_breakdown, forward_breakdown, EpisodeConfig, Level, SimScenario, COMM_SEGMENTS,
    STATE_SEGMENTS,
};
use dnn::ModelProfile;

/// One data point of Figs. 5–7: cost of a recovery/reconfiguration episode
/// split into the paper's three aggregate segments.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Model name.
    pub model: &'static str,
    /// Scenario label as in the paper ("Down"/"Same"/"Up").
    pub scenario: SimScenario,
    /// Process- or node-level event.
    pub level: Level,
    /// Engine: `true` = ULFM forward recovery, `false` = Elastic Horovod.
    pub ulfm: bool,
    /// Worker (GPU) count before the event.
    pub gpus: usize,
    /// "Reconstructing the communicator and resuming rendezvous" (s).
    pub comm_reconstruction: f64,
    /// "Reinitializing the training state for the new workers" (s).
    pub state_reinit: f64,
    /// "Re-computation" (s).
    pub recompute: f64,
}

impl FigureRow {
    /// Total episode cost.
    pub fn total(&self) -> f64 {
        self.comm_reconstruction + self.state_reinit + self.recompute
    }
}

/// The paper's GPU-count sweep: 12 up to 192 GPUs (§4, Figs. 5–7).
pub const GPU_SWEEP: &[usize] = &[12, 24, 48, 96, 192];

/// Generate every row of one figure (one model, all scenarios × levels ×
/// engines × scales). `fig5 = VGG-16`, `fig6 = ResNet50V2`,
/// `fig7 = NasNetMobile`.
pub fn figure_rows(model: &ModelProfile, cluster: &ClusterModel) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for &gpus in GPU_SWEEP {
        for scenario in [SimScenario::Down, SimScenario::Same, SimScenario::Up] {
            for level in [Level::Process, Level::Node] {
                for ulfm in [true, false] {
                    // Table 2: Elastic Horovod only supports node-level
                    // recovery/autoscaling; process-level rows exist only
                    // for ULFM.
                    if !ulfm && level == Level::Process {
                        continue;
                    }
                    let cfg = EpisodeConfig {
                        cluster: *cluster,
                        model: model.clone(),
                        workers_before: gpus,
                        scenario,
                        level,
                    };
                    let b = if ulfm {
                        forward_breakdown(&cfg)
                    } else {
                        backward_breakdown(&cfg)
                    };
                    let (comm, state, rest) = b.aggregate(COMM_SEGMENTS, STATE_SEGMENTS);
                    rows.push(FigureRow {
                        model: model.name,
                        scenario,
                        level,
                        ulfm,
                        gpus,
                        comm_reconstruction: comm,
                        state_reinit: state,
                        recompute: rest,
                    });
                }
            }
        }
    }
    rows
}

/// Fig. 4: detailed phase breakdowns for Scenario I, ResNet-50 on 24 GPUs
/// (24 → 18 after a node drop / 24 → 23 after a process drop), for both
/// engines and both levels. Returns `(label, breakdown)` pairs.
pub fn fig4_rows(cluster: &ClusterModel) -> Vec<(String, Breakdown)> {
    let model = ModelProfile::resnet50v2();
    let mut out = Vec::new();
    for level in [Level::Process, Level::Node] {
        for ulfm in [true, false] {
            if !ulfm && level == Level::Process {
                continue; // Elastic Horovod cannot drop a single process
            }
            let cfg = EpisodeConfig {
                cluster: *cluster,
                model: model.clone(),
                workers_before: 24,
                scenario: SimScenario::Down,
                level,
            };
            let b = if ulfm {
                forward_breakdown(&cfg)
            } else {
                backward_breakdown(&cfg)
            };
            let engine = if ulfm { "ULFM MPI" } else { "Elastic Horovod" };
            out.push((format!("{engine}, drop {level:?}"), b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_match_capability_matrix() {
        let rows = figure_rows(&ModelProfile::vgg16(), &ClusterModel::summit());
        // 5 scales × 3 scenarios × (ULFM: 2 levels + EH: 1 level) = 45.
        assert_eq!(rows.len(), 5 * 3 * 3);
        // No Elastic-Horovod process-level rows (Table 2).
        assert!(rows.iter().all(|r| r.ulfm || r.level == Level::Node));
    }

    #[test]
    fn ulfm_wins_every_comparable_row() {
        for model in dnn::paper_models() {
            let rows = figure_rows(&model, &ClusterModel::summit());
            for r in rows.iter().filter(|r| !r.ulfm) {
                let twin = rows
                    .iter()
                    .find(|x| {
                        x.ulfm && x.gpus == r.gpus && x.scenario == r.scenario && x.level == r.level
                    })
                    .expect("matching ULFM row");
                // Communication-context reconstruction: the paper's claim.
                assert!(
                    twin.comm_reconstruction < r.comm_reconstruction,
                    "{} {:?} {:?} @{}: ULFM comm {:.3}s vs EH {:.3}s",
                    model.name,
                    r.scenario,
                    r.level,
                    r.gpus,
                    twin.comm_reconstruction,
                    r.comm_reconstruction
                );
                // Failure scenarios: the total wins too (Up totals are
                // dominated by the shared worker-init cost on both sides).
                if r.scenario != SimScenario::Up {
                    assert!(
                        twin.total() < r.total(),
                        "{} {:?} {:?} @{}: ULFM {:.3}s vs EH {:.3}s",
                        model.name,
                        r.scenario,
                        r.level,
                        r.gpus,
                        twin.total(),
                        r.total()
                    );
                }
            }
        }
    }

    #[test]
    fn downscale_has_no_state_reinit() {
        let rows = figure_rows(&ModelProfile::resnet50v2(), &ClusterModel::summit());
        for r in rows.iter().filter(|r| r.scenario == SimScenario::Down) {
            assert_eq!(r.state_reinit, 0.0, "{r:?}");
        }
    }

    #[test]
    fn fig4_has_three_bars() {
        let rows = fig4_rows(&ClusterModel::summit());
        assert_eq!(rows.len(), 3); // ULFM×{proc,node} + EH×node
        for (label, b) in &rows {
            assert!(b.total() > 0.0, "{label}: empty breakdown");
        }
        // EH's bar dwarfs ULFM's.
        let eh = rows.iter().find(|(l, _)| l.contains("Horovod")).unwrap();
        let ulfm_node = rows
            .iter()
            .find(|(l, _)| l.contains("ULFM") && l.contains("Node"))
            .unwrap();
        assert!(eh.1.total() > 5.0 * ulfm_node.1.total());
    }

    #[test]
    fn baseline_rendezvous_grows_with_gpus() {
        let rows = figure_rows(&ModelProfile::nasnet_mobile(), &ClusterModel::summit());
        let eh_down: Vec<&FigureRow> = rows
            .iter()
            .filter(|r| !r.ulfm && r.scenario == SimScenario::Down)
            .collect();
        for w in eh_down.windows(2) {
            assert!(
                w[1].comm_reconstruction > w[0].comm_reconstruction,
                "EH comm reconstruction must grow with scale"
            );
        }
    }
}
