//! Per-episode recovery cost breakdowns at Summit scale — the simulated
//! counterparts of the two engines in the `elastic` crate.

use crate::breakdown::Breakdown;
use crate::constants::{minibatch_compute_s, ClusterModel};
use crate::network::{bcast_time, era_agree_time, ring_allreduce_time};
use crate::rendezvous::{simulate_rendezvous, RendezvousSim};
use dnn::ModelProfile;

/// Failure/eviction granularity (the paper's process vs node levels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// One worker process fails / is replaced.
    Process,
    /// A whole node (6 workers on Summit) fails / is replaced.
    Node,
}

/// The paper's three dynamic-training scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimScenario {
    /// Scenario I — "Down": continue with survivors only.
    Down,
    /// Scenario II — "Same": failed capacity is replaced by new workers.
    Same,
    /// Scenario III — "Up": no failure; worker count doubles.
    Up,
}

/// One episode to cost out.
#[derive(Clone, Debug)]
pub struct EpisodeConfig {
    /// Cluster constants.
    pub cluster: ClusterModel,
    /// The model being trained.
    pub model: ModelProfile,
    /// Worker count before the event.
    pub workers_before: usize,
    /// Scenario.
    pub scenario: SimScenario,
    /// Granularity.
    pub level: Level,
}

impl EpisodeConfig {
    /// Workers lost to the failure (0 for Up).
    pub fn lost(&self) -> usize {
        match (self.scenario, self.level) {
            (SimScenario::Up, _) => 0,
            (_, Level::Process) => 1,
            (_, Level::Node) => self.cluster.ranks_per_node,
        }
    }

    /// Workers joining during the episode.
    pub fn joining(&self) -> usize {
        match self.scenario {
            SimScenario::Down => 0,
            SimScenario::Same => self.lost(),
            SimScenario::Up => self.workers_before, // paper: doubling
        }
    }

    /// Worker count after reconfiguration.
    pub fn workers_after(&self) -> usize {
        self.workers_before - self.lost() + self.joining()
    }
}

/// Segment names belonging to the paper's "reconstructing the communicator
/// and resuming rendezvous" aggregate.
pub const COMM_SEGMENTS: &[&str] = &[
    "catch_exception",
    "shutdown",
    "reinit_elastic",
    "rendezvous",
    "reinit_gloo",
    "detect",
    "revoke",
    "agree",
    "shrink",
];

/// Segment names belonging to "reinitializing the training state for the
/// new workers".
pub const STATE_SEGMENTS: &[&str] = &["worker_init", "spawn", "state_bcast", "load_checkpoint_new"];

/// Elastic-Horovod-style backward recovery (paper Fig. 4 left; the taller
/// bars of Figs. 5–7).
pub fn backward_breakdown(cfg: &EpisodeConfig) -> Breakdown {
    let c = &cfg.cluster;
    let w_after = cfg.workers_after();
    let state_bytes = cfg.model.state_bytes() as f64;
    let mut b = Breakdown::new();

    if cfg.scenario != SimScenario::Up {
        // Failure path: the exception must be caught and everything torn
        // down before anything can be rebuilt.
        b.push("catch_exception", c.catch_exception);
        b.push("shutdown", c.shutdown);
    }
    b.push("reinit_elastic", c.reinit_elastic);

    // Rendezvous: every member of the *new* configuration re-runs global +
    // local discovery through the serial KV server.
    b.push(
        "rendezvous",
        simulate_rendezvous(&RendezvousSim {
            workers: w_after,
            service: c.kv_rtt,
            poll_interval: 10.0 * c.kv_rtt,
            local_rounds: 1,
        }),
    );

    // Gloo context: full mesh; each worker sets up w-1 connections
    // (serialized per worker, concurrent across workers).
    b.push(
        "reinit_gloo",
        c.conn_setup * (w_after.saturating_sub(1)) as f64,
    );

    if cfg.scenario != SimScenario::Up {
        // Rollback: deserialize parameters + optimizer state from the
        // in-memory checkpoint (2× state: params + momenta).
        b.push("load_checkpoint", 2.0 * 2.0 * state_bytes / c.mem_bw);
        // Recompute the mini-batch lost since the per-batch checkpoint:
        // compute + its gradient allreduce on the new configuration.
        b.push(
            "recompute",
            minibatch_compute_s(&cfg.model)
                + ring_allreduce_time(state_bytes, w_after, c.alpha, c.beta),
        );
    }

    if cfg.joining() > 0 {
        // New workers: library loading (parallel across joiners → one
        // lib_init), then they too load the checkpoint to start.
        b.push("worker_init", c.lib_init);
        b.push("load_checkpoint_new", 2.0 * 2.0 * state_bytes / c.mem_bw);
    }
    b
}

/// ULFM forward recovery (paper Fig. 4 right; the short bars of Figs. 5–7).
pub fn forward_breakdown(cfg: &EpisodeConfig) -> Breakdown {
    let c = &cfg.cluster;
    let w_before = cfg.workers_before;
    let survivors = w_before - cfg.lost();
    let w_after = cfg.workers_after();
    let state_bytes = cfg.model.state_bytes() as f64;
    let mut b = Breakdown::new();

    if cfg.scenario != SimScenario::Up {
        // Failure path: detector, revoke flood, agreement, shrink.
        b.push("detect", c.ulfm_detect);
        b.push(
            "revoke",
            (w_before as f64).log2().ceil().max(1.0) * c.revoke_hop,
        );
        b.push("agree", era_agree_time(w_before, c.agree_round));
        // Shrink = one more agreement on the candidate + communicator dup.
        b.push(
            "shrink",
            era_agree_time(survivors.max(1), c.agree_round) + c.comm_dup,
        );
        // Forward recovery's "recompute": re-execute only the in-flight
        // fused allreduce on the survivor communicator — the paper's
        // collective-granularity retry.
        b.push(
            "redo_collective",
            ring_allreduce_time(
                c.fusion_buffer.min(state_bytes),
                survivors.max(1),
                c.alpha,
                c.beta,
            ),
        );
    }

    if cfg.joining() > 0 {
        // Replacement/upscale: spawn + connect-accept (no rendezvous), the
        // same library-loading cost the baseline pays, and a broadcast of
        // (model + optimizer) state over the merged communicator.
        b.push("spawn", c.mpi_spawn);
        b.push("worker_init", c.lib_init);
        b.push(
            "state_bcast",
            bcast_time(2.0 * state_bytes, w_after, c.alpha, c.beta),
        );
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(scenario: SimScenario, level: Level, w: usize, model: ModelProfile) -> EpisodeConfig {
        EpisodeConfig {
            cluster: ClusterModel::summit(),
            model,
            workers_before: w,
            scenario,
            level,
        }
    }

    #[test]
    fn membership_arithmetic() {
        let down_node = cfg(
            SimScenario::Down,
            Level::Node,
            24,
            ModelProfile::resnet50v2(),
        );
        assert_eq!(down_node.lost(), 6);
        assert_eq!(down_node.joining(), 0);
        assert_eq!(down_node.workers_after(), 18);

        let same_proc = cfg(
            SimScenario::Same,
            Level::Process,
            24,
            ModelProfile::resnet50v2(),
        );
        assert_eq!(same_proc.workers_after(), 24);

        let up = cfg(SimScenario::Up, Level::Node, 24, ModelProfile::resnet50v2());
        assert_eq!(up.lost(), 0);
        assert_eq!(up.workers_after(), 48);
    }

    /// The paper's headline (§4): "ULFM MPI consistently produces less
    /// overhead when reconstructing the communication context compared to
    /// Elastic Horovod via Gloo ... irrespective of whether workers are
    /// added or removed". The claim is about the communication-
    /// reconstruction overhead: in join scenarios both systems additionally
    /// pay the same large one-time worker-initialization cost.
    #[test]
    fn ulfm_beats_baseline_everywhere() {
        for model in dnn::paper_models() {
            for scenario in [SimScenario::Down, SimScenario::Same, SimScenario::Up] {
                for level in [Level::Process, Level::Node] {
                    for w in [12usize, 24, 48, 96, 192] {
                        let e = cfg(scenario, level, w, model.clone());
                        let fwd = forward_breakdown(&e);
                        let bwd = backward_breakdown(&e);
                        let (fc, _, fr) = fwd.aggregate(COMM_SEGMENTS, STATE_SEGMENTS);
                        let (bc, _, br) = bwd.aggregate(COMM_SEGMENTS, STATE_SEGMENTS);
                        assert!(
                            fc < bc,
                            "{} {scenario:?} {level:?} w={w}: comm fwd {fc:.3} ≥ bwd {bc:.3}",
                            model.name
                        );
                        // Recompute: collective-granularity retry beats
                        // rollback + mini-batch recompute.
                        assert!(
                            fr <= br,
                            "{} {scenario:?} {level:?} w={w}: redo {fr:.3} > recompute {br:.3}",
                            model.name
                        );
                        // And whenever a failure is involved, the total wins too.
                        if scenario != SimScenario::Up {
                            assert!(
                                fwd.total() < bwd.total(),
                                "{} {scenario:?} {level:?} w={w}: total fwd {:.3} ≥ bwd {:.3}",
                                model.name,
                                fwd.total(),
                                bwd.total()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Downscale: ULFM's advantage grows with scale (the paper: "this
    /// advantage becomes increasingly significant at larger scales").
    #[test]
    fn advantage_grows_with_scale() {
        let m = ModelProfile::resnet50v2();
        let ratio = |w: usize| {
            let e = cfg(SimScenario::Down, Level::Node, w, m.clone());
            backward_breakdown(&e).total() / forward_breakdown(&e).total()
        };
        assert!(ratio(192) > ratio(12), "ratio must grow with worker count");
    }

    #[test]
    fn bigger_models_cost_more_to_roll_back() {
        let e_vgg = cfg(SimScenario::Down, Level::Node, 24, ModelProfile::vgg16());
        let e_nas = cfg(
            SimScenario::Down,
            Level::Node,
            24,
            ModelProfile::nasnet_mobile(),
        );
        let b_vgg = backward_breakdown(&e_vgg);
        let b_nas = backward_breakdown(&e_nas);
        assert!(b_vgg.get("load_checkpoint") > b_nas.get("load_checkpoint"));
        assert!(b_vgg.get("recompute") > b_nas.get("recompute"));
    }

    #[test]
    fn upscale_has_no_failure_phases() {
        let e = cfg(SimScenario::Up, Level::Node, 24, ModelProfile::vgg16());
        let b = backward_breakdown(&e);
        assert_eq!(b.get("catch_exception"), 0.0);
        assert_eq!(b.get("recompute"), 0.0);
        assert!(b.get("worker_init") > 0.0);
        let f = forward_breakdown(&e);
        assert_eq!(f.get("detect"), 0.0);
        assert!(f.get("state_bcast") > 0.0);
    }

    #[test]
    fn worker_init_dominates_join_scenarios_for_both() {
        // The paper notes library loading is a one-time cost for every new
        // worker under either system.
        let e = cfg(
            SimScenario::Same,
            Level::Node,
            24,
            ModelProfile::resnet50v2(),
        );
        let f = forward_breakdown(&e);
        let b = backward_breakdown(&e);
        assert!(f.get("worker_init") >= 0.5 * f.total());
        assert!(b.get("worker_init") > 0.0);
    }

    #[test]
    fn aggregates_cover_all_segments() {
        let e = cfg(SimScenario::Same, Level::Node, 48, ModelProfile::vgg16());
        for b in [forward_breakdown(&e), backward_breakdown(&e)] {
            let (c, s, r) = b.aggregate(COMM_SEGMENTS, STATE_SEGMENTS);
            assert!((c + s + r - b.total()).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_failure_cost_is_subsecond_and_flat() {
        // ULFM's failure-path cost (no joiners) stays well below a second
        // and grows only logarithmically.
        let m = ModelProfile::resnet50v2();
        let t12 = forward_breakdown(&cfg(SimScenario::Down, Level::Process, 12, m.clone())).total();
        let t192 =
            forward_breakdown(&cfg(SimScenario::Down, Level::Process, 192, m.clone())).total();
        assert!(t192 < 1.0, "t192 = {t192}");
        assert!(t192 < t12 * 3.0);
    }
}
