//! Membership-change (view-change) cost sweep: flood-set vs. lattice
//! agreement at paper scale and beyond.
//!
//! The runtime proves both protocols correct at thread scale; this module
//! projects their cost to `p ∈ {192 … 12288}` ranks with the calibrated
//! α–β model, for concurrent-failure bursts of `k ∈ {1, 2, 8, 32}`:
//!
//! * **flood-set** (`AgreeImpl::Flood`, the conformance oracle) floods the
//!   merged state for `p` all-to-all rounds, and a burst discovered one
//!   death at a time costs one full agreement + shrink *generation* per
//!   discovery wave — `k` view changes;
//! * **lattice** (`AgreeImpl::Lattice`) decides in a constant number of
//!   exchange rounds, absorbs mid-protocol deaths by widening the
//!   in-flight proposal (one extra wave each, bounded by `k`), and
//!   resolves the whole burst in **one** view change.
//!
//! `bench repro members` renders this sweep into `BENCH_members.json`
//! alongside runtime conformance checks on the threaded protocols.

use crate::constants::ClusterModel;
use crate::network::{flood_agree_time, lattice_agree_time};

/// Group sizes swept (the paper's 192-GPU ceiling up to a projected 12288).
pub const MEMBER_SIZES: [usize; 6] = [192, 768, 1536, 3072, 6144, 12_288];

/// Concurrent-failure burst sizes swept (single failure up to a rack).
pub const BURST_SIZES: [usize; 4] = [1, 2, 8, 32];

/// One cell of the flood-vs-lattice membership sweep.
#[derive(Clone, Debug)]
pub struct MembersCell {
    /// Group size before the burst.
    pub p: usize,
    /// Concurrent failures resolved by the episode.
    pub k: usize,
    /// Agreement rounds the flood-set path executes across the burst.
    pub flood_rounds: u64,
    /// Exchange rounds (including the decide echo) the lattice path runs.
    pub lattice_rounds: u64,
    /// Modelled wall time of the flood-set path (seconds).
    pub flood_s: f64,
    /// Modelled wall time of the lattice path (seconds).
    pub lattice_s: f64,
    /// View changes (shrink generations) the flood-set path needs: one per
    /// discovery wave of the burst.
    pub flood_view_changes: u64,
    /// View changes the lattice path needs: always one — concurrent deaths
    /// widen the in-flight proposal instead of restarting.
    pub lattice_view_changes: u64,
}

/// Per-round cost of one all-to-all exchange wave at group width `w`: every
/// member sends its state to `w-1` peers (α each) and the state itself is
/// ~`16 + p/8` bytes (flags + min + failure bitmap) on the β term.
fn round_cost(model: &ClusterModel, w: usize, p: usize) -> f64 {
    if w <= 1 {
        return 0.0;
    }
    let bytes = 16.0 + p as f64 / 8.0;
    (w - 1) as f64 * (model.alpha + bytes * model.beta)
}

/// One sweep cell: flood handles the burst as `k` sequential discovery
/// waves (each a fresh `w`-round agreement over the then-current survivor
/// group), lattice as one view change whose in-flight proposal widens at
/// most `k` times.
pub fn members_cell(model: &ClusterModel, p: usize, k: usize) -> MembersCell {
    let k = k.min(p.saturating_sub(1)).max(1);

    // Flood: wave i runs over p-i survivors, p-i rounds each.
    let mut flood_rounds = 0u64;
    let mut flood_s = 0.0;
    for wave in 0..k {
        let w = p - wave;
        flood_rounds += w as u64;
        flood_s += flood_agree_time(w, round_cost(model, w, p));
    }

    // Lattice: 2 exchange rounds + echo, plus at most one widening wave
    // per concurrent death observed mid-protocol.
    let lattice_rounds = 3 + k as u64;
    let lattice_s = lattice_agree_time(p, k, round_cost(model, p, p));

    MembersCell {
        p,
        k,
        flood_rounds,
        lattice_rounds,
        flood_s,
        lattice_s,
        flood_view_changes: k as u64,
        lattice_view_changes: 1,
    }
}

/// The full flood-vs-lattice sweep over [`MEMBER_SIZES`] × [`BURST_SIZES`].
pub fn members_sweep(model: &ClusterModel) -> Vec<MembersCell> {
    let mut rows = Vec::new();
    for &p in &MEMBER_SIZES {
        for &k in &BURST_SIZES {
            rows.push(members_cell(model, p, k));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_wins_rounds_and_latency_at_scale() {
        let m = ClusterModel::summit();
        for cell in members_sweep(&m) {
            assert!(
                cell.lattice_rounds < cell.flood_rounds,
                "p={} k={}: lattice rounds {} vs flood {}",
                cell.p,
                cell.k,
                cell.lattice_rounds,
                cell.flood_rounds
            );
            if cell.p >= 1024 {
                assert!(
                    cell.lattice_s < cell.flood_s,
                    "p={} k={}: lattice {}s vs flood {}s",
                    cell.p,
                    cell.k,
                    cell.lattice_s,
                    cell.flood_s
                );
            }
        }
    }

    #[test]
    fn burst_resolves_in_one_lattice_view_change() {
        let m = ClusterModel::summit();
        for &k in &BURST_SIZES {
            let cell = members_cell(&m, 1536, k);
            assert_eq!(cell.lattice_view_changes, 1);
            assert_eq!(cell.flood_view_changes, k as u64);
        }
    }

    #[test]
    fn flood_cost_grows_with_burst_size() {
        let m = ClusterModel::summit();
        let one = members_cell(&m, 3072, 1);
        let burst = members_cell(&m, 3072, 32);
        assert!(burst.flood_s > one.flood_s * 20.0);
        // Lattice only adds widening waves: sub-linear in k.
        assert!(burst.lattice_s < one.lattice_s * 10.0);
    }

    #[test]
    fn degenerate_groups_are_safe() {
        let m = ClusterModel::summit();
        let c = members_cell(&m, 2, 8);
        assert_eq!(c.k, 1, "burst clamped to group size");
        assert!(c.flood_s.is_finite() && c.lattice_s.is_finite());
    }
}
