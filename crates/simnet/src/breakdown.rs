//! Named cost segments in virtual seconds.

use std::fmt;

/// An ordered list of `(segment name, seconds)` pairs — one recovery or
/// reconfiguration episode's cost decomposition.
#[derive(Clone, Debug, PartialEq)]
pub struct Breakdown {
    segments: Vec<(&'static str, f64)>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self {
            segments: Vec::new(),
        }
    }

    /// Append a segment.
    pub fn push(&mut self, name: &'static str, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "segment {name} has invalid duration {seconds}"
        );
        self.segments.push((name, seconds));
    }

    /// Builder-style append.
    pub fn with(mut self, name: &'static str, seconds: f64) -> Self {
        self.push(name, seconds);
        self
    }

    /// All segments in order.
    pub fn segments(&self) -> &[(&'static str, f64)] {
        &self.segments
    }

    /// Sum of all segments.
    pub fn total(&self) -> f64 {
        self.segments.iter().map(|(_, s)| s).sum()
    }

    /// Duration of one named segment (0 if absent; summed if repeated).
    pub fn get(&self, name: &str) -> f64 {
        self.segments
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, s)| s)
            .sum()
    }

    /// Collapse this breakdown into the paper's three aggregate segments,
    /// given which names belong to the first two (the rest is recompute).
    pub fn aggregate(&self, comm_names: &[&str], state_names: &[&str]) -> (f64, f64, f64) {
        let mut comm = 0.0;
        let mut state = 0.0;
        let mut rest = 0.0;
        for (n, s) in &self.segments {
            if comm_names.contains(n) {
                comm += s;
            } else if state_names.contains(n) {
                state += s;
            } else {
                rest += s;
            }
        }
        (comm, state, rest)
    }
}

impl Default for Breakdown {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, s) in &self.segments {
            writeln!(f, "  {n:<24} {s:>10.4} s")?;
        }
        write!(f, "  {:<24} {:>10.4} s", "TOTAL", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_lookup() {
        let b = Breakdown::new()
            .with("a", 1.0)
            .with("b", 2.5)
            .with("a", 0.5);
        assert_eq!(b.total(), 4.0);
        assert_eq!(b.get("a"), 1.5);
        assert_eq!(b.get("zzz"), 0.0);
    }

    #[test]
    fn aggregate_partitions_fully() {
        let b = Breakdown::new()
            .with("rendezvous", 3.0)
            .with("reinit_gloo", 1.0)
            .with("worker_init", 10.0)
            .with("recompute", 0.5);
        let (c, s, r) = b.aggregate(&["rendezvous", "reinit_gloo"], &["worker_init"]);
        assert_eq!((c, s, r), (4.0, 10.0, 0.5));
        assert!((c + s + r - b.total()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_nan() {
        Breakdown::new().with("x", f64::NAN);
    }

    #[test]
    fn display_contains_total() {
        let b = Breakdown::new().with("x", 1.0);
        assert!(b.to_string().contains("TOTAL"));
    }
}
