//! Discrete-event cluster simulation and calibrated cost models.
//!
//! The paper evaluates recovery costs on Summit at 12–192 GPUs — scales and
//! absolute timings (seconds) that an in-process threaded runtime cannot
//! reproduce on one machine. This crate runs the *same protocol state
//! machines* (ring allreduce, KV rendezvous, full-mesh context setup,
//! revoke/agree/shrink, checkpoint rollback) over **virtual time** with
//! Summit-calibrated constants, producing the paper's figures:
//!
//! * [`recovery`] — per-phase breakdowns of one recovery/reconfiguration
//!   episode for both engines (Fig. 4);
//! * [`sweep`] — the scenario × level × scale sweeps behind Figs. 5–7.
//!
//! Two layers keep each other honest: closed-form α–β cost formulas in
//! [`network`], and a small discrete-event simulator ([`des`]) that
//! executes the protocols event by event; unit tests assert that the DES
//! reproduces the closed forms exactly in the homogeneous case and extends
//! them under stragglers.
//!
//! All constants live in [`constants`], each with its provenance.

#![warn(missing_docs)]

pub mod arrivals;
pub mod breakdown;
pub mod constants;
pub mod des;
pub mod members;
pub mod network;
pub mod recovery;
pub mod rendezvous;
pub mod sweep;

pub use arrivals::{simulate_scenario3, Scenario3Outcome};
pub use breakdown::Breakdown;
pub use constants::ClusterModel;
pub use members::{members_cell, members_sweep, MembersCell, BURST_SIZES, MEMBER_SIZES};
pub use recovery::{backward_breakdown, forward_breakdown, EpisodeConfig, Level, SimScenario};
pub use sweep::{
    fig4_rows, figure_rows, hier_rows, FigureRow, HierRow, HIER_GPU_SWEEP, HIER_SIZES,
};
