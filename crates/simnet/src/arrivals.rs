//! Scenario III economics: start-with-available vs wait-for-all.
//!
//! The paper's §3.3.3 argues that when distributed resources become ready
//! at inconsistent times, "a more effective strategy is to start training
//! with the available workers and synchronize with the remaining resources
//! as they become ready". This module quantifies that claim: given a
//! stochastic worker-arrival process, it compares
//!
//! * **wait-for-all** — training begins when the last worker arrives;
//! * **elastic start** — training begins with whatever arrived by the
//!   start deadline; later arrivals are admitted at epoch boundaries
//!   (paying the join cost from the recovery model).
//!
//! The output is aggregate useful work (worker-seconds of training) over a
//! fixed horizon, and the effective speedup of starting early.

use crate::breakdown::Breakdown;
use crate::constants::ClusterModel;
use crate::network::bcast_time;

/// A deterministic pseudo-random arrival schedule: `workers` arrival times
/// in `[0, spread]`, seeded.
pub fn arrival_times(workers: usize, spread: f64, seed: u64) -> Vec<f64> {
    (0..workers)
        .map(|i| {
            let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z ^= z >> 30;
            z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            (z as f64 / u64::MAX as f64) * spread
        })
        .collect()
}

/// Outcome of one Scenario III simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario3Outcome {
    /// Useful worker-seconds accumulated by the elastic-start strategy.
    pub elastic_work: f64,
    /// Useful worker-seconds accumulated by wait-for-all.
    pub wait_work: f64,
    /// Time at which the last worker arrived.
    pub last_arrival: f64,
    /// Number of join events the elastic strategy performed.
    pub joins: usize,
}

impl Scenario3Outcome {
    /// Elastic-start advantage as a work ratio (> 1 means elastic wins).
    pub fn advantage(&self) -> f64 {
        if self.wait_work == 0.0 {
            f64::INFINITY
        } else {
            self.elastic_work / self.wait_work
        }
    }
}

/// Simulate a training horizon of `horizon` seconds with workers arriving
/// at `arrivals` (seconds). The elastic strategy admits pending arrivals
/// every `epoch_len` seconds, paying `join_overhead(joining, world)` of
/// whole-group stall per join event.
pub fn simulate_scenario3(
    arrivals: &[f64],
    horizon: f64,
    epoch_len: f64,
    cluster: &ClusterModel,
    state_bytes: f64,
) -> Scenario3Outcome {
    assert!(!arrivals.is_empty(), "need at least one worker");
    assert!(epoch_len > 0.0, "epoch length must be positive");
    let mut sorted = arrivals.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let last = *sorted.last().unwrap();

    // Wait-for-all: everyone idles until the last arrival.
    let wait_work = (horizon - last).max(0.0) * arrivals.len() as f64;

    // Elastic: start with everyone already present at the first arrival
    // instant; admit later arrivals at epoch boundaries.
    let start = sorted[0];
    let mut next_arrival_idx = sorted.iter().take_while(|&&a| a <= start).count();
    let mut world = next_arrival_idx;
    let mut t = start;
    let mut work = 0.0;
    let mut joins = 0usize;
    while t < horizon {
        let boundary = (t + epoch_len).min(horizon);
        work += (boundary - t) * world as f64;
        t = boundary;
        // Admit everyone who arrived by now.
        let mut joining = 0usize;
        while next_arrival_idx < sorted.len() && sorted[next_arrival_idx] <= t {
            joining += 1;
            next_arrival_idx += 1;
        }
        if joining > 0 {
            world += joining;
            joins += 1;
            // Join stall: state broadcast over the merged group (library
            // init overlaps the waiting period, so it is not charged here).
            let stall =
                bcast_time(state_bytes, world, cluster.alpha, cluster.beta) + cluster.mpi_spawn;
            let stall = stall.min(horizon - t);
            // The whole group stalls during the merge.
            t += stall;
        }
    }
    Scenario3Outcome {
        elastic_work: work,
        wait_work,
        last_arrival: last,
        joins,
    }
}

/// A printable sweep over arrival spreads (for the `repro` harness).
pub fn scenario3_sweep(
    workers: usize,
    horizon: f64,
    cluster: &ClusterModel,
    state_bytes: f64,
) -> Vec<(f64, Scenario3Outcome)> {
    [60.0, 300.0, 900.0, 1800.0]
        .iter()
        .map(|&spread| {
            let arr = arrival_times(workers, spread, 42);
            (
                spread,
                simulate_scenario3(&arr, horizon, 30.0, cluster, state_bytes),
            )
        })
        .collect()
}

/// Convenience: a breakdown-style view of one outcome.
pub fn outcome_breakdown(o: &Scenario3Outcome) -> Breakdown {
    Breakdown::new()
        .with("elastic_work", o.elastic_work)
        .with("wait_for_all_work", o.wait_work)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterModel {
        ClusterModel::summit()
    }

    #[test]
    fn arrivals_are_deterministic_and_bounded() {
        let a = arrival_times(16, 600.0, 7);
        let b = arrival_times(16, 600.0, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| (0.0..=600.0).contains(&t)));
        let c = arrival_times(16, 600.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn elastic_beats_waiting_when_spread_is_large() {
        let arr = arrival_times(24, 1200.0, 3);
        let o = simulate_scenario3(&arr, 3600.0, 30.0, &cluster(), 100e6);
        assert!(
            o.advantage() > 1.05,
            "elastic should win with a 20-minute spread: {:?}",
            o
        );
        assert!(o.joins >= 1);
    }

    #[test]
    fn strategies_converge_when_everyone_is_ready() {
        // Zero spread: all arrive at t=0; both strategies do full work.
        let arr = vec![0.0; 8];
        let o = simulate_scenario3(&arr, 1000.0, 30.0, &cluster(), 100e6);
        assert_eq!(o.joins, 0);
        let rel = (o.elastic_work - o.wait_work).abs() / o.wait_work;
        assert!(rel < 0.01, "{o:?}");
    }

    #[test]
    fn waiting_wins_nothing_ever() {
        // Elastic work ≥ wait work minus join stalls: for realistic stall
        // costs, elastic is never materially worse.
        for seed in 0..10 {
            let arr = arrival_times(12, 600.0, seed);
            let o = simulate_scenario3(&arr, 3600.0, 30.0, &cluster(), 575e6);
            assert!(o.elastic_work > o.wait_work * 0.99, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn work_is_capped_by_horizon() {
        let arr = arrival_times(8, 120.0, 1);
        let o = simulate_scenario3(&arr, 600.0, 30.0, &cluster(), 1e6);
        assert!(o.elastic_work <= 8.0 * 600.0);
        assert!(o.wait_work <= 8.0 * 600.0);
    }

    #[test]
    fn sweep_is_monotone_in_spread() {
        // The wider the arrival spread, the bigger elastic's advantage.
        let rows = scenario3_sweep(24, 3600.0, &cluster(), 100e6);
        let advantages: Vec<f64> = rows.iter().map(|(_, o)| o.advantage()).collect();
        for w in advantages.windows(2) {
            assert!(w[1] >= w[0] * 0.98, "{advantages:?}");
        }
    }
}
