//! Summit-calibrated cluster constants.
//!
//! Every number here has a stated provenance. Absolute values are
//! order-of-magnitude calibrations (we are reproducing cost *shapes* and
//! ratios, per DESIGN.md §1), anchored to (a) Summit's published hardware
//! numbers, (b) the magnitudes visible on the paper's own Fig. 4 axes, and
//! (c) well-known defaults of the software involved.

/// Per-model per-minibatch GPU compute time (forward+backward), seconds.
/// Order-of-magnitude V100 throughput for batch ≈ 32–64 images: VGG-16 is
/// the heaviest, NasNetMobile the lightest.
pub fn minibatch_compute_s(model: &dnn::ModelProfile) -> f64 {
    match model.name {
        "VGG-16" => 0.35,
        "ResNet50V2" => 0.25,
        "NasNetMobile" => 0.20,
        // Fallback: scale with parameter count relative to ResNet50V2.
        _ => 0.25 * (model.total_params as f64 / 25.6e6),
    }
}

/// The cluster + software cost model. Defaults are Summit-like.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterModel {
    /// Per-message latency α (s). HPC interconnect (EDR IB on Summit):
    /// ~1.5 µs MPI latency.
    pub alpha: f64,
    /// Per-byte time β (s/B). Summit node injection bandwidth: 23 GB/s
    /// (paper §4.1).
    pub beta: f64,
    /// Per-message latency α *inside a node* (s). NVLink hops between
    /// Summit's V100s: ~1 µs software latency.
    pub alpha_intra: f64,
    /// Per-byte time β *inside a node* (s/B). NVLink 2.0 link bandwidth:
    /// ~150 GB/s aggregate per GPU on Summit.
    pub beta_intra: f64,
    /// Workers per node: 6 V100 GPUs on Summit (paper §4.1).
    pub ranks_per_node: usize,
    /// One KV-store round trip against Horovod's rendezvous server
    /// (HTTP over the management network): ~1 ms.
    pub kv_rtt: f64,
    /// One Gloo pairwise TCP connection setup: ~2 ms (connect + handshake
    /// over the management fabric).
    pub conn_setup: f64,
    /// Host memory bandwidth for checkpoint serialize/deserialize:
    /// ~10 GB/s effective single-stream.
    pub mem_bw: f64,
    /// Gloo/Elastic-Horovod exception-catch latency: the time between the
    /// fault and the Python layer holding a `HorovodInternalError` —
    /// dominated by Gloo's communication timeout residue and stack
    /// unwinding. Fig. 4-scale: ~0.6 s.
    pub catch_exception: f64,
    /// Shutting down ongoing operations and destroying the old context
    /// (Fig. 4 "shut down ongoing operations"): ~0.3 s.
    pub shutdown: f64,
    /// Re-initializing Horovod's elastic driver state (blacklist update,
    /// host discovery round): ~0.2 s.
    pub reinit_elastic: f64,
    /// ULFM/RTE failure-detection latency (heartbeat timeout): ~50 ms —
    /// ULFM's detector is tunable; this is a conservative HPC setting.
    pub ulfm_detect: f64,
    /// Per-hop software overhead of the revoke reliable broadcast: ~0.2 ms.
    pub revoke_hop: f64,
    /// Per-round cost of the ERA agreement protocol (logarithmic rounds):
    /// ~0.5 ms per round including software overhead.
    pub agree_round: f64,
    /// Fixed cost of allocating/duplicating a communicator after shrink:
    /// ~5 ms.
    pub comm_dup: f64,
    /// Loading + initializing frameworks on a *new* worker (Python, CUDA,
    /// TensorFlow/Horovod imports on Summit's parallel FS): ~15 s. The
    /// paper notes this cost is incurred once per joining worker and
    /// dominates replacement/upscale for both systems.
    pub lib_init: f64,
    /// `MPI_Comm_spawn`/connect-accept cost for ULFM joiners: ~1 s.
    pub mpi_spawn: f64,
    /// Horovod tensor-fusion buffer (bytes): 64 MiB default — the unit of
    /// in-flight allreduce data a forward recovery re-executes.
    pub fusion_buffer: f64,
}

impl Default for ClusterModel {
    fn default() -> Self {
        Self {
            alpha: 1.5e-6,
            beta: 1.0 / 23.0e9,
            alpha_intra: 1.0e-6,
            beta_intra: 1.0 / 150.0e9,
            ranks_per_node: 6,
            kv_rtt: 1.0e-3,
            conn_setup: 2.0e-3,
            mem_bw: 10.0e9,
            catch_exception: 0.6,
            shutdown: 0.3,
            reinit_elastic: 0.2,
            ulfm_detect: 0.05,
            revoke_hop: 2.0e-4,
            agree_round: 5.0e-4,
            comm_dup: 5.0e-3,
            lib_init: 15.0,
            mpi_spawn: 1.0,
            fusion_buffer: 64.0 * 1024.0 * 1024.0,
        }
    }
}

impl ClusterModel {
    /// Summit as configured in the paper.
    pub fn summit() -> Self {
        Self::default()
    }

    /// Number of nodes hosting `workers` workers.
    pub fn nodes_for(&self, workers: usize) -> usize {
        workers.div_ceil(self.ranks_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physical() {
        let c = ClusterModel::summit();
        assert!(c.alpha > 0.0 && c.alpha < 1e-4);
        // 23 GB/s.
        assert!((1.0 / c.beta - 23.0e9).abs() < 1.0);
        assert_eq!(c.ranks_per_node, 6);
    }

    #[test]
    fn intra_node_fabric_is_faster() {
        let c = ClusterModel::summit();
        assert!(c.alpha_intra < c.alpha);
        assert!(c.beta_intra < c.beta);
    }

    #[test]
    fn nodes_for_rounds_up() {
        let c = ClusterModel::summit();
        assert_eq!(c.nodes_for(24), 4);
        assert_eq!(c.nodes_for(25), 5);
    }

    #[test]
    fn minibatch_ordering_matches_model_size() {
        let m = dnn::paper_models();
        let vgg = minibatch_compute_s(&m[0]);
        let rn = minibatch_compute_s(&m[1]);
        let nas = minibatch_compute_s(&m[2]);
        assert!(vgg > rn && rn > nas);
    }

    #[test]
    fn fallback_scales_with_params() {
        let custom = dnn::ModelProfile {
            name: "Custom",
            trainable_tensors: 10,
            depth: 10,
            total_params: 51_200_000,
            size_mb: 195.0,
        };
        let t = minibatch_compute_s(&custom);
        assert!((t - 0.5).abs() < 1e-9);
    }
}
