//! Framing of multiple indexed byte blocks into a single message.
//!
//! Allgather-style collectives move *per-rank blocks* that may differ in
//! size (an `allgatherv`). Blocks travel as `(origin index, bytes)` frames
//! packed into one message.

use transport::Wire;

/// Encode `(index, block)` pairs into one buffer.
pub fn encode_blocks<'a>(blocks: impl Iterator<Item = (usize, &'a [u8])>) -> Vec<u8> {
    let mut out = Vec::new();
    let mut count = 0u64;
    let mut body = Vec::new();
    for (idx, block) in blocks {
        (idx as u64).write(&mut body);
        (block.len() as u64).write(&mut body);
        body.extend_from_slice(block);
        count += 1;
    }
    count.write(&mut out);
    out.extend_from_slice(&body);
    out
}

/// Decode a buffer produced by [`encode_blocks`].
///
/// # Panics
/// Panics on a malformed buffer (framing is internal; a malformed buffer is
/// a logic error, not an input error).
pub fn decode_blocks(bytes: &[u8]) -> Vec<(usize, Vec<u8>)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| {
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        s
    };
    let count = u64::read(take(&mut pos, 8)) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = u64::read(take(&mut pos, 8)) as usize;
        let len = u64::read(take(&mut pos, 8)) as usize;
        let block = take(&mut pos, len).to_vec();
        out.push((idx, block));
    }
    assert_eq!(pos, bytes.len(), "trailing bytes in framed message");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let buf = encode_blocks(std::iter::empty());
        assert!(decode_blocks(&buf).is_empty());
    }

    #[test]
    fn roundtrip_mixed_sizes() {
        let blocks: Vec<(usize, Vec<u8>)> =
            vec![(3, vec![1, 2, 3]), (0, vec![]), (7, vec![0xff; 100])];
        let buf = encode_blocks(blocks.iter().map(|(i, b)| (*i, b.as_slice())));
        assert_eq!(decode_blocks(&buf), blocks);
    }

    #[test]
    #[should_panic(expected = "trailing")]
    fn trailing_garbage_detected() {
        let mut buf = encode_blocks(std::iter::once((0usize, &b"x"[..])));
        buf.push(0);
        decode_blocks(&buf);
    }
}
