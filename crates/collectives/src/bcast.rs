//! Binomial-tree broadcast.

use crate::comm::PeerComm;
use crate::error::CollError;

/// Broadcast `buf` from group rank `root` to all ranks along a binomial
/// tree (`⌈log₂ p⌉` rounds). Non-root ranks' buffers are overwritten;
/// `buf.len()` must match on all ranks.
pub fn binomial_bcast<C: PeerComm>(
    comm: &C,
    root: usize,
    buf: &mut Vec<u8>,
    tag_base: u64,
) -> Result<(), CollError> {
    crate::observe("coll.bcast.binomial", || {
        let p = comm.size();
        assert!(root < p, "broadcast root {root} out of range (size {p})");
        if p == 1 {
            return Ok(());
        }
        let vrank = (comm.rank() + p - root) % p;

        // Non-roots receive once from the parent: the rank obtained by
        // clearing the lowest set bit of vrank. `recv_bit` is that bit; the
        // root acts as if it had received at the top of the tree.
        let recv_bit = if vrank == 0 {
            p.next_power_of_two()
        } else {
            let bit = vrank & vrank.wrapping_neg(); // lowest set bit
            comm.fault_point("bcast.step")?;
            let parent = ((vrank & !bit) + root) % p;
            *buf = comm.recv(parent, tag_base)?;
            bit
        };

        // Forward to children vrank + m for every bit m below recv_bit.
        let mut m = recv_bit >> 1;
        while m >= 1 {
            let vchild = vrank + m;
            if vchild < p {
                comm.fault_point("bcast.step")?;
                let child = (vchild + root) % p;
                comm.send(child, tag_base, buf)?;
            }
            m >>= 1;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_group;
    use transport::FaultPlan;

    fn check(p: usize, root: usize) {
        let payload: Vec<u8> = (0..17u8).collect();
        let want = payload.clone();
        let results = run_group(p, FaultPlan::none(), move |comm| {
            let mut buf = if comm.rank() == root {
                payload.clone()
            } else {
                Vec::new()
            };
            binomial_bcast(&comm, root, &mut buf, 0).map(|()| buf)
        });
        for (r, got) in results.into_iter().enumerate() {
            assert_eq!(got.unwrap(), want, "rank {r} (p={p}, root={root})");
        }
    }

    #[test]
    fn all_roots_all_sizes() {
        for p in 1..=9 {
            for root in 0..p {
                check(p, root);
            }
        }
    }

    #[test]
    fn large_payload() {
        let payload = vec![0xabu8; 1 << 16];
        let want = payload.clone();
        let results = run_group(6, FaultPlan::none(), move |comm| {
            let mut buf = if comm.rank() == 2 {
                payload.clone()
            } else {
                vec![]
            };
            binomial_bcast(&comm, 2, &mut buf, 0).map(|()| buf)
        });
        for got in results {
            assert_eq!(got.unwrap(), want);
        }
    }

    #[test]
    fn dead_child_surfaces_peer_failed_at_parent() {
        // Rank 1 dies before the bcast begins; root (0) observes PeerFailed
        // when it tries to forward. The sleep on every other rank makes the
        // ordering deterministic (rank 1 is certainly dead by then).
        let plan = FaultPlan::none().kill_at_point(transport::RankId(1), "bcast.step", 1);
        let results = run_group(4, plan, |comm| {
            if comm.rank() != 1 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            let mut buf = if comm.rank() == 0 {
                vec![9u8; 4]
            } else {
                vec![]
            };
            binomial_bcast(&comm, 0, &mut buf, 0)
        });
        assert_eq!(results[1], Err(CollError::SelfDied));
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(CollError::PeerFailed { .. }))),
            "{results:?}"
        );
    }

    #[test]
    fn bad_root_panics() {
        struct NoComm;
        impl crate::PeerComm for NoComm {
            fn size(&self) -> usize {
                2
            }
            fn rank(&self) -> usize {
                0
            }
            fn send(&self, _: usize, _: u64, _: &[u8]) -> Result<(), CollError> {
                unreachable!()
            }
            fn recv(&self, _: usize, _: u64) -> Result<Vec<u8>, CollError> {
                unreachable!()
            }
        }
        let err = std::panic::catch_unwind(|| {
            let mut buf = vec![];
            let _ = binomial_bcast(&NoComm, 5, &mut buf, 0);
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("out of range"), "unexpected panic: {msg}");
    }
}
