//! Binomial-tree broadcast with reliable teardown.
//!
//! Every hop carries a one-byte trailing status frame. A rank whose
//! receive fails (dead parent, revocation, poison from upstream) does not
//! simply unwind: it first forwards a *poison* frame to each of its
//! children, so a subtree below a failed link observes the broken
//! broadcast promptly instead of blocking on a sender that will never
//! transmit. This keeps a failed broadcast from stranding receivers
//! without any comm-wide revocation — essential when the broadcast shares
//! a communicator with other in-flight op streams (a revoke would yank
//! innocent stragglers out of *their* collectives and desynchronize the
//! recovery protocol).

use crate::comm::PeerComm;
use crate::error::CollError;

/// Trailing status byte of a successfully relayed payload.
const FRAME_OK: u8 = 0;
/// Trailing status byte of a poison frame: the sender's own receive
/// failed and it is tearing down its subtree.
const FRAME_POISON: u8 = 1;

/// Broadcast `buf` from group rank `root` to all ranks along a binomial
/// tree (`⌈log₂ p⌉` rounds). Non-root ranks' buffers are overwritten;
/// `buf.len()` must match on all ranks. On error the buffer contents are
/// unspecified.
///
/// A failure anywhere in the tree surfaces as an error on every rank in
/// the affected subtree (poison propagation); ranks on intact paths still
/// return `Ok` with the payload — uniformity, when needed, is the
/// caller's job (e.g. a commit agreement over the per-rank outcomes).
pub fn binomial_bcast<C: PeerComm>(
    comm: &C,
    root: usize,
    buf: &mut Vec<u8>,
    tag_base: u64,
) -> Result<(), CollError> {
    crate::observe("coll.bcast.binomial", || {
        let p = comm.size();
        assert!(root < p, "broadcast root {root} out of range (size {p})");
        if p == 1 {
            return Ok(());
        }
        let vrank = (comm.rank() + p - root) % p;

        // First error observed on this rank; teardown continues past it.
        let mut fail: Option<CollError> = None;

        // Non-roots receive once from the parent: the rank obtained by
        // clearing the lowest set bit of vrank. `recv_bit` is that bit; the
        // root acts as if it had received at the top of the tree.
        let recv_bit = if vrank == 0 {
            buf.push(FRAME_OK);
            p.next_power_of_two()
        } else {
            let bit = vrank & vrank.wrapping_neg(); // lowest set bit
            let parent = ((vrank & !bit) + root) % p;
            let got = comm
                .fault_point("bcast.step")
                .and_then(|()| comm.recv(parent, tag_base));
            match got {
                Ok(bytes) if bytes.last() == Some(&FRAME_OK) => *buf = bytes,
                Ok(_) => {
                    // Poison: an ancestor's receive failed. Report the
                    // (alive) parent as the failed peer — the caller only
                    // needs to learn the broadcast broke, not where.
                    fail = Some(CollError::PeerFailed { peer: parent });
                    *buf = vec![FRAME_POISON];
                }
                Err(CollError::SelfDied) => return Err(CollError::SelfDied),
                Err(e) => {
                    fail = Some(e);
                    *buf = vec![FRAME_POISON];
                }
            }
            bit
        };

        // Forward to children vrank + m for every bit m below recv_bit —
        // the payload on success, the poison frame on failure. A dead or
        // unreachable child never aborts the teardown of its siblings.
        let mut m = recv_bit >> 1;
        while m >= 1 {
            let vchild = vrank + m;
            if vchild < p {
                let child = (vchild + root) % p;
                let sent = comm
                    .fault_point("bcast.step")
                    .and_then(|()| comm.send(child, tag_base, buf));
                match sent {
                    Ok(()) => {}
                    Err(CollError::SelfDied) => return Err(CollError::SelfDied),
                    Err(e) => {
                        fail.get_or_insert(e);
                    }
                }
            }
            m >>= 1;
        }
        match fail {
            Some(e) => Err(e),
            None => {
                buf.pop();
                Ok(())
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_group;
    use transport::FaultPlan;

    fn check(p: usize, root: usize) {
        let payload: Vec<u8> = (0..17u8).collect();
        let want = payload.clone();
        let results = run_group(p, FaultPlan::none(), move |comm| {
            let mut buf = if comm.rank() == root {
                payload.clone()
            } else {
                Vec::new()
            };
            binomial_bcast(&comm, root, &mut buf, 0).map(|()| buf)
        });
        for (r, got) in results.into_iter().enumerate() {
            assert_eq!(got.unwrap(), want, "rank {r} (p={p}, root={root})");
        }
    }

    #[test]
    fn all_roots_all_sizes() {
        for p in 1..=9 {
            for root in 0..p {
                check(p, root);
            }
        }
    }

    #[test]
    fn large_payload() {
        let payload = vec![0xabu8; 1 << 16];
        let want = payload.clone();
        let results = run_group(6, FaultPlan::none(), move |comm| {
            let mut buf = if comm.rank() == 2 {
                payload.clone()
            } else {
                vec![]
            };
            binomial_bcast(&comm, 2, &mut buf, 0).map(|()| buf)
        });
        for got in results {
            assert_eq!(got.unwrap(), want);
        }
    }

    #[test]
    fn dead_child_surfaces_peer_failed_at_parent() {
        // Rank 1 dies before the bcast begins; root (0) observes PeerFailed
        // when it tries to forward. The sleep on every other rank makes the
        // ordering deterministic (rank 1 is certainly dead by then).
        let plan = FaultPlan::none().kill_at_point(transport::RankId(1), "bcast.step", 1);
        let results = run_group(4, plan, |comm| {
            if comm.rank() != 1 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            let mut buf = if comm.rank() == 0 {
                vec![9u8; 4]
            } else {
                vec![]
            };
            binomial_bcast(&comm, 0, &mut buf, 0)
        });
        assert_eq!(results[1], Err(CollError::SelfDied));
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(CollError::PeerFailed { .. }))),
            "{results:?}"
        );
    }

    #[test]
    fn poison_unwinds_subtree_below_failed_link() {
        // The root dies before its first send. Rank 2 (the root's direct
        // child) observes PeerDead — and must forward a poison frame to
        // rank 3, whose parent (rank 2) is alive and would otherwise never
        // send: without the reliable teardown this test hangs forever.
        let plan = FaultPlan::none().kill_at_point(transport::RankId(0), "bcast.step", 1);
        let results = run_group(4, plan, |comm| {
            let mut buf = if comm.rank() == 0 {
                vec![7u8; 3]
            } else {
                vec![]
            };
            binomial_bcast(&comm, 0, &mut buf, 0)
        });
        assert_eq!(results[0], Err(CollError::SelfDied));
        assert_eq!(results[1], Err(CollError::PeerFailed { peer: 0 }));
        assert_eq!(results[2], Err(CollError::PeerFailed { peer: 0 }));
        // Rank 3's parent is rank 2 — alive, but poisoned.
        assert_eq!(results[3], Err(CollError::PeerFailed { peer: 2 }));
    }

    #[test]
    fn bad_root_panics() {
        struct NoComm;
        impl crate::PeerComm for NoComm {
            fn size(&self) -> usize {
                2
            }
            fn rank(&self) -> usize {
                0
            }
            fn send(&self, _: usize, _: u64, _: &[u8]) -> Result<(), CollError> {
                unreachable!()
            }
            fn recv(&self, _: usize, _: u64) -> Result<Vec<u8>, CollError> {
                unreachable!()
            }
        }
        let err = std::panic::catch_unwind(|| {
            let mut buf = vec![];
            let _ = binomial_bcast(&NoComm, 5, &mut buf, 0);
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("out of range"), "unexpected panic: {msg}");
    }
}
