//! Collective-communication algorithms over an abstract point-to-point
//! transport.
//!
//! Distributed data-parallel training spends most of its communication time
//! in **allreduce** (gradient aggregation) and **allgather** (tensor-shape
//! negotiation, state distribution), as the paper's §3.2 notes. This crate
//! implements the classic algorithms for those collectives — and the
//! supporting broadcast / reduce / barrier / gather / scatter — generically
//! over the [`PeerComm`] trait, so the same code serves:
//!
//! * the resilient ULFM runtime (`ulfm` crate), where a collective must
//!   surface a peer failure as a per-operation error and leave survivors in
//!   a recoverable state; and
//! * the non-resilient Gloo-style contexts (`gloo` crate), where the first
//!   failure poisons the whole context (the Elastic-Horovod baseline).
//!
//! All algorithms are deterministic: for a fixed group size and input, the
//! result is bit-identical across runs (floating-point reduction order is
//! fixed by the algorithm).
//!
//! ## Tag discipline
//!
//! Every entry point takes a `tag_base`. An algorithm uses tags in
//! `[tag_base, tag_base + TAG_SPAN)`; the caller must ensure that no two
//! concurrent collectives on overlapping groups share that window. The MPI
//! layer achieves this by encoding (communicator id, per-communicator
//! sequence number) into `tag_base`.

#![warn(missing_docs)]

mod allgather;
mod allreduce;
mod barrier;
mod bcast;
mod comm;
mod elem;
mod error;
mod framing;
mod fusion;
mod hier;
mod reduce;

pub use allgather::{allgather, bruck_allgather, ring_allgather, AllgatherAlgo};
pub use allreduce::{
    allreduce, rabenseifner_allreduce, recursive_doubling_allreduce, ring_allreduce, AllreduceAlgo,
};
pub use barrier::dissemination_barrier;
pub use bcast::binomial_bcast;
pub use comm::PeerComm;
pub use elem::{Elem, ReduceOp};
pub use error::CollError;
pub use fusion::{
    fused_allreduce, observe_bucket, plan_buckets, FusionBuffer, DEFAULT_FUSION_BYTES,
};
pub use hier::{hier_allreduce, hier_fused_allreduce, two_tier_chunk_range, NodeMap};
pub use reduce::{binomial_reduce, gather, scatter};

/// Maximum number of tags any single collective in this crate may consume.
/// Callers advance their sequence numbers by at least this much between
/// collectives on the same communicator.
pub const TAG_SPAN: u64 = 1 << 20;

/// Wrap one collective invocation with telemetry: times the call into
/// `<metric>.latency_ns` and bumps `<metric>.ops`, plus `<metric>.failures`
/// when the collective surfaces an error (peer failure, revocation, ...).
pub(crate) fn observe<T, E>(metric: &str, f: impl FnOnce() -> Result<T, E>) -> Result<T, E> {
    telemetry::counter(&format!("{metric}.ops")).incr();
    let span = telemetry::span(&format!("{metric}.latency_ns"));
    let out = f();
    drop(span);
    if out.is_err() {
        telemetry::counter(&format!("{metric}.failures")).incr();
    }
    out
}

#[cfg(test)]
mod testutil;
