//! Allgather algorithms over variable-size byte blocks (allgatherv).

use crate::comm::PeerComm;
use crate::error::CollError;
use crate::framing::{decode_blocks, encode_blocks};

/// Which allgather algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AllgatherAlgo {
    /// `p-1` neighbour exchanges; bandwidth-optimal.
    #[default]
    Ring,
    /// `⌈log₂ p⌉` rounds with doubling payloads (Bruck's algorithm shape);
    /// latency-optimal for small blocks.
    Bruck,
}

/// Gather every rank's `mine` block to every rank. Returns blocks indexed by
/// group rank.
pub fn allgather<C: PeerComm>(
    comm: &C,
    mine: &[u8],
    algo: AllgatherAlgo,
    tag_base: u64,
) -> Result<Vec<Vec<u8>>, CollError> {
    let metric = match algo {
        AllgatherAlgo::Ring => "coll.allgather.ring",
        AllgatherAlgo::Bruck => "coll.allgather.bruck",
    };
    crate::observe(metric, || match algo {
        AllgatherAlgo::Ring => ring_allgather(comm, mine, tag_base),
        AllgatherAlgo::Bruck => bruck_allgather(comm, mine, tag_base),
    })
}

/// Ring allgather: each step forwards one block to the right neighbour.
pub fn ring_allgather<C: PeerComm>(
    comm: &C,
    mine: &[u8],
    tag_base: u64,
) -> Result<Vec<Vec<u8>>, CollError> {
    let p = comm.size();
    let r = comm.rank();
    let mut out: Vec<Option<Vec<u8>>> = vec![None; p];
    out[r] = Some(mine.to_vec());
    if p == 1 {
        return Ok(out.into_iter().map(Option::unwrap).collect());
    }
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;
    for step in 0..p - 1 {
        comm.fault_point("allgather.step")?;
        let send_idx = (r + p - step) % p;
        let recv_idx = (r + p - step - 1) % p;
        let tag = tag_base + step as u64;
        let payload = out[send_idx]
            .as_deref()
            .expect("ring invariant: block to forward is present");
        comm.send(
            right,
            tag,
            &encode_blocks(std::iter::once((send_idx, payload))),
        )?;
        let data = comm.recv(left, tag)?;
        let mut blocks = decode_blocks(&data);
        assert_eq!(blocks.len(), 1);
        let (idx, block) = blocks.pop().unwrap();
        assert_eq!(idx, recv_idx, "ring delivered unexpected block");
        out[recv_idx] = Some(block);
    }
    Ok(out.into_iter().map(Option::unwrap).collect())
}

/// Bruck-style allgather: `⌈log₂ p⌉` rounds; in round `k` each rank sends
/// everything it has collected so far to the rank `2^k` below it.
pub fn bruck_allgather<C: PeerComm>(
    comm: &C,
    mine: &[u8],
    tag_base: u64,
) -> Result<Vec<Vec<u8>>, CollError> {
    let p = comm.size();
    let r = comm.rank();
    let mut have: Vec<Option<Vec<u8>>> = vec![None; p];
    have[r] = Some(mine.to_vec());
    let mut dist = 1usize;
    let mut round = 0u64;
    while dist < p {
        comm.fault_point("allgather.step")?;
        let to = (r + p - dist) % p;
        let from = (r + dist) % p;
        let tag = tag_base + round;
        let payload = encode_blocks(
            have.iter()
                .enumerate()
                .filter_map(|(i, b)| b.as_deref().map(|b| (i, b))),
        );
        comm.send(to, tag, &payload)?;
        let data = comm.recv(from, tag)?;
        for (idx, block) in decode_blocks(&data) {
            have[idx].get_or_insert(block);
        }
        dist <<= 1;
        round += 1;
    }
    Ok(have
        .into_iter()
        .enumerate()
        .map(|(i, b)| b.unwrap_or_else(|| panic!("block {i} missing after bruck allgather")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_group;
    use transport::FaultPlan;

    fn block_for(rank: usize) -> Vec<u8> {
        // Variable sizes exercise the allgatherv path.
        vec![rank as u8 + 1; rank % 3 + 1]
    }

    fn check(algo: AllgatherAlgo, p: usize) {
        let results = run_group(p, FaultPlan::none(), |comm| {
            allgather(&comm, &block_for(comm.rank()), algo, 0)
        });
        let want: Vec<Vec<u8>> = (0..p).map(block_for).collect();
        for (r, got) in results.into_iter().enumerate() {
            assert_eq!(got.unwrap(), want, "rank {r} (algo {algo:?}, p={p})");
        }
    }

    #[test]
    fn ring_sizes() {
        for p in 1..=8 {
            check(AllgatherAlgo::Ring, p);
        }
    }

    #[test]
    fn bruck_sizes() {
        for p in 1..=9 {
            check(AllgatherAlgo::Bruck, p);
        }
    }

    #[test]
    fn empty_blocks_allowed() {
        let results = run_group(4, FaultPlan::none(), |comm| {
            ring_allgather(&comm, &[], 0).map(|blocks| blocks.iter().all(|b| b.is_empty()))
        });
        for got in results {
            assert!(got.unwrap());
        }
    }

    #[test]
    fn failure_mid_allgather_is_reported() {
        let plan = FaultPlan::none().kill_at_point(transport::RankId(1), "allgather.step", 2);
        let results = run_group(4, plan, |comm| {
            ring_allgather(&comm, &block_for(comm.rank()), 0).map(|_| ())
        });
        assert_eq!(results[1], Err(CollError::SelfDied));
        assert!(results
            .iter()
            .enumerate()
            .any(|(r, res)| r != 1 && res.is_err()));
    }
}
