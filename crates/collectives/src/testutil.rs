//! In-crate test harness: runs a closure on `n` rank threads over the
//! in-memory transport, with an optional fault plan.

use crate::comm::PeerComm;
use crate::error::CollError;
use std::sync::Arc;
use transport::{Endpoint, Fabric, FaultInjector, FaultPlan, RankId, Topology, TransportError};

/// A `PeerComm` over the raw fabric where the group is all registered ranks.
pub struct TestComm {
    ep: Endpoint,
    group: Vec<RankId>,
    my_idx: usize,
}

impl TestComm {
    fn map_err(&self, e: TransportError) -> CollError {
        match e {
            TransportError::SelfDied => CollError::SelfDied,
            TransportError::PeerDead(r) => CollError::PeerFailed {
                peer: self
                    .group
                    .iter()
                    .position(|&g| g == r)
                    .unwrap_or(usize::MAX),
            },
            other => panic!("unexpected transport error in test: {other}"),
        }
    }
}

impl PeerComm for TestComm {
    fn size(&self) -> usize {
        self.group.len()
    }
    fn rank(&self) -> usize {
        self.my_idx
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        self.ep
            .send(self.group[peer], tag, data)
            .map_err(|e| self.map_err(e))
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        self.ep
            .recv(self.group[peer], tag)
            .map_err(|e| self.map_err(e))
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        self.ep.fault_point(name).map_err(|e| self.map_err(e))
    }
}

/// Run `f` on `n` rank threads sharing one fabric; returns per-rank results
/// in rank order.
pub fn run_group<R, F>(n: usize, plan: FaultPlan, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(TestComm) -> R + Send + Sync,
{
    let fabric = Fabric::new(Topology::flat(), FaultInjector::new(plan));
    let group = fabric.register_ranks(n);
    let f = &f;
    let group_ref = &group;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let fabric = Arc::clone(&fabric);
                s.spawn(move || {
                    let comm = TestComm {
                        ep: Endpoint::new(Arc::clone(&fabric), group_ref[i]),
                        group: group_ref.clone(),
                        my_idx: i,
                    };
                    let out = f(comm);
                    // Model process exit: a rank that returned (e.g. after
                    // observing a failure) stops participating; peers
                    // blocked on it must see PeerDead rather than hang.
                    fabric.kill_rank(group_ref[i]);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Deterministic pseudo-random input vector for rank `r`.
pub fn input_for(rank: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((rank * 31 + i * 7 + 13) % 101) as f32 * 0.25 - 12.0)
        .collect()
}

/// The element-wise sum of `input_for(r, len)` over ranks `rs`.
pub fn expected_sum(rs: impl Iterator<Item = usize> + Clone, len: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; len];
    for r in rs {
        for (o, v) in out.iter_mut().zip(input_for(r, len)) {
            *o += v;
        }
    }
    out
}
