//! Tensor fusion: pack many small buffers into one allreduce.
//!
//! Gradient allreduce pays a per-operation latency cost (α in the α–β
//! model) regardless of payload size, so models with many small tensors —
//! NasNetMobile registers 1126 of them — spend their communication budget
//! on message startup rather than bandwidth. Horovod's answer is *tensor
//! fusion*: copy ready tensors into one contiguous fusion buffer (64 MB by
//! default), run a single allreduce over it, and scatter the reduced bytes
//! back. This module reproduces that mechanism over [`PeerComm`]:
//!
//! * [`plan_buckets`] — partition an ordered tensor list into contiguous
//!   buckets under a byte cap (never splitting a tensor; a single tensor
//!   larger than the cap gets a bucket of its own);
//! * [`FusionBuffer`] — the pack/unpack container, preserving order and
//!   exact byte layout;
//! * [`fused_allreduce`] — the convenience wrapper: plan, pack, one
//!   allreduce per bucket, unpack.
//!
//! ## Fault semantics
//!
//! A fused allreduce is *one* collective per bucket: a rank killed mid-way
//! surfaces a single [`CollError::PeerFailed`] to each survivor, exactly as
//! the unfused per-tensor path does. Recovery layers (the `elastic` crate's
//! revoke→agree→shrink path) re-run the *whole bucket* from saved inputs on
//! the shrunk communicator; because every tensor in the bucket is redone
//! together, replicas stay bit-identical to the unfused protocol.
//!
//! ## Determinism
//!
//! Bucket partitioning is a pure function of (sizes, element width, cap),
//! and packing preserves tensor order — so all ranks derive the identical
//! plan from their identical model, satisfying the SPMD contract that every
//! rank issues the same collectives in the same order.

use crate::allreduce::{allreduce, AllreduceAlgo};
use crate::comm::PeerComm;
use crate::elem::{Elem, ReduceOp};
use crate::error::CollError;
use std::ops::Range;

/// Horovod's default fusion threshold: 64 MiB.
pub const DEFAULT_FUSION_BYTES: usize = 64 << 20;

/// Partition `sizes` (element counts, in registration order) into
/// contiguous buckets of at most `cap_bytes` each (`size × elem_bytes`
/// summed per bucket). Order-preserving and exact: concatenating the
/// returned ranges yields `0..sizes.len()`. A tensor larger than the cap
/// forms a singleton bucket — it is never split. `cap_bytes == 0` therefore
/// degenerates to one bucket per non-empty tensor (zero-length tensors
/// still fuse with their neighbours).
pub fn plan_buckets(sizes: &[usize], elem_bytes: usize, cap_bytes: usize) -> Vec<Range<usize>> {
    assert!(elem_bytes > 0, "element width must be non-zero");
    let mut plan = Vec::new();
    let mut start = 0usize;
    let mut bucket_bytes = 0usize;
    for (i, &s) in sizes.iter().enumerate() {
        let b = s.saturating_mul(elem_bytes);
        if i > start && bucket_bytes.saturating_add(b) > cap_bytes {
            plan.push(start..i);
            start = i;
            bucket_bytes = 0;
        }
        bucket_bytes = bucket_bytes.saturating_add(b);
    }
    if start < sizes.len() {
        plan.push(start..sizes.len());
    }
    plan
}

/// A packed fusion buffer: the concatenation of an ordered tensor list,
/// remembering each tensor's offset so results can be scattered back.
#[derive(Clone, Debug)]
pub struct FusionBuffer<E: Elem> {
    data: Vec<E>,
    /// `offsets[i]..offsets[i+1]` is tensor `i`; length = tensors + 1.
    offsets: Vec<usize>,
}

impl<E: Elem> FusionBuffer<E> {
    /// A buffer laid out for the given tensor sizes (element counts), every
    /// slot set to `fill`. For callers that fill tensors incrementally as
    /// gradients become ready (the engines' ready-queue path).
    pub fn with_layout(sizes: &[usize], fill: E) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut pos = 0usize;
        offsets.push(0);
        for &s in sizes {
            pos += s;
            offsets.push(pos);
        }
        Self {
            data: vec![fill; pos],
            offsets,
        }
    }

    /// Pack `tensors` (in order) into one contiguous buffer.
    pub fn pack(tensors: &[&[E]]) -> Self {
        let mut offsets = Vec::with_capacity(tensors.len() + 1);
        let total: usize = tensors.iter().map(|t| t.len()).sum();
        let mut data = Vec::with_capacity(total);
        offsets.push(0);
        for t in tensors {
            data.extend_from_slice(t);
            offsets.push(data.len());
        }
        Self { data, offsets }
    }

    /// Number of packed tensors.
    pub fn num_tensors(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total packed elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no elements are packed (all-empty or no tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contiguous payload (what the single allreduce runs over).
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Mutable payload.
    pub fn data_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Tensor `i`'s slice of the payload.
    pub fn tensor(&self, i: usize) -> &[E] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Mutable view of tensor `i`'s slice.
    pub fn tensor_mut(&mut self, i: usize) -> &mut [E] {
        &mut self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Scatter the (reduced) payload back into per-tensor buffers, in the
    /// order they were packed. Panics on length mismatch — the layout is
    /// part of the SPMD contract, so a mismatch is a protocol bug.
    pub fn unpack_into(&self, tensors: &mut [&mut [E]]) {
        assert_eq!(
            tensors.len(),
            self.num_tensors(),
            "unpack tensor count mismatch"
        );
        for (i, t) in tensors.iter_mut().enumerate() {
            t.copy_from_slice(self.tensor(i));
        }
    }

    /// Unpack into freshly allocated per-tensor vectors.
    pub fn unpack(&self) -> Vec<Vec<E>> {
        (0..self.num_tensors())
            .map(|i| self.tensor(i).to_vec())
            .collect()
    }
}

/// Fused allreduce over an ordered tensor list: partition under
/// `cap_bytes`, pack each bucket, allreduce it, and scatter results back
/// in place.
///
/// Consumes one `TAG_SPAN` window **per bucket**, starting at `tag_base` —
/// callers advancing tags by a single [`crate::TAG_SPAN`] must either know
/// the bucket count or issue each bucket through a communicator that
/// allocates per-collective windows (as the `ulfm` and `gloo` layers do).
///
/// On error the in-flight bucket holds partially reduced values and later
/// buckets are untouched; recovery re-runs from saved inputs, as with any
/// single collective.
pub fn fused_allreduce<E: Elem, C: PeerComm>(
    comm: &C,
    tensors: &mut [Vec<E>],
    op: ReduceOp,
    algo: AllreduceAlgo,
    cap_bytes: usize,
    tag_base: u64,
) -> Result<(), CollError> {
    let sizes: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
    let plan = plan_buckets(&sizes, E::WIDTH, cap_bytes);
    for (b, range) in plan.into_iter().enumerate() {
        let views: Vec<&[E]> = tensors[range.clone()]
            .iter()
            .map(|t| t.as_slice())
            .collect();
        let mut fused = FusionBuffer::pack(&views);
        observe_bucket(fused.len() * E::WIDTH, fused.num_tensors());
        allreduce(
            comm,
            fused.data_mut(),
            op,
            algo,
            tag_base + b as u64 * crate::TAG_SPAN,
        )?;
        let mut views: Vec<&mut [E]> = tensors[range]
            .iter_mut()
            .map(|t| t.as_mut_slice())
            .collect();
        fused.unpack_into(&mut views);
    }
    Ok(())
}

/// Record fusion telemetry for one packed bucket.
pub fn observe_bucket(bucket_bytes: usize, bucket_tensors: usize) {
    telemetry::counter("coll.fusion.fused_ops").incr();
    telemetry::counter("coll.fusion.tensors_fused").add(bucket_tensors as u64);
    telemetry::histogram("coll.fusion.bucket_bytes").record(bucket_bytes as u64);
    telemetry::histogram("coll.fusion.bucket_tensors").record(bucket_tensors as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{expected_sum, input_for, run_group};
    use transport::FaultPlan;

    #[test]
    fn plan_respects_cap_and_order() {
        // 4-byte elements, 16-byte cap → at most 4 elements per bucket.
        let sizes = [2usize, 2, 1, 4, 5, 1];
        let plan = plan_buckets(&sizes, 4, 16);
        // {2,2} fills the cap exactly; {1} cannot take the 4-element tensor
        // (20 B > 16 B); {4} fills the cap; {5} is oversized → singleton.
        assert_eq!(plan, vec![0..2, 2..3, 3..4, 4..5, 5..6]);
        let covered: usize = plan.iter().map(|r| r.len()).sum();
        assert_eq!(covered, sizes.len());
    }

    #[test]
    fn oversized_tensor_gets_singleton_bucket() {
        let plan = plan_buckets(&[100, 1, 1], 4, 8);
        assert_eq!(plan, vec![0..1, 1..3]);
    }

    #[test]
    fn empty_and_tiny_tensors_fuse() {
        let plan = plan_buckets(&[0, 0, 1, 0], 4, 64);
        assert_eq!(plan, vec![0..4]);
        assert!(plan_buckets(&[], 4, 64).is_empty());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let a = vec![1.0f32, 2.0];
        let b: Vec<f32> = vec![];
        let c = vec![3.0f32];
        let fused = FusionBuffer::pack(&[&a, &b, &c]);
        assert_eq!(fused.len(), 3);
        assert_eq!(fused.num_tensors(), 3);
        assert_eq!(fused.data(), &[1.0, 2.0, 3.0]);
        assert_eq!(fused.unpack(), vec![a, b, c]);
    }

    #[test]
    fn fused_allreduce_matches_per_tensor() {
        // Integer-valued payloads: reduction is exactly associative, so
        // fused and unfused sums agree bit-for-bit regardless of how the
        // bucket boundary interacts with chunking.
        let p = 4;
        let sizes = [3usize, 0, 5, 1, 8];
        let results = run_group(p, FaultPlan::none(), |comm| {
            let mut tensors: Vec<Vec<f32>> = sizes
                .iter()
                .scan(0usize, |off, &n| {
                    let t = input_for(comm.rank(), *off + n)[*off..].to_vec();
                    *off += n;
                    Some(t)
                })
                .collect();
            fused_allreduce(
                &comm,
                &mut tensors,
                ReduceOp::Sum,
                AllreduceAlgo::Ring,
                16, // 4 elements per bucket → several buckets
                0,
            )
            .map(|()| tensors)
        });
        let total: usize = sizes.iter().sum();
        let want_flat = expected_sum(0..p, total);
        for got in results {
            let got = got.expect("no-fault fused allreduce failed");
            let flat: Vec<f32> = got.into_iter().flatten().collect();
            assert_eq!(flat, want_flat);
        }
    }
}
