//! Dissemination barrier.

use crate::comm::PeerComm;
use crate::error::CollError;

/// Synchronize all group ranks in `⌈log₂ p⌉` rounds: in round `k` each rank
/// signals `(rank + 2^k) mod p` and waits for `(rank - 2^k) mod p`.
///
/// Completion at any rank implies every rank has entered the barrier
/// (transitively through the dissemination pattern).
pub fn dissemination_barrier<C: PeerComm>(comm: &C, tag_base: u64) -> Result<(), CollError> {
    crate::observe("coll.barrier", || {
        let p = comm.size();
        let r = comm.rank();
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < p {
            comm.fault_point("barrier.step")?;
            let to = (r + dist) % p;
            let from = (r + p - dist) % p;
            let tag = tag_base + round;
            comm.send(to, tag, &[])?;
            comm.recv(from, tag)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_group;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use transport::FaultPlan;

    #[test]
    fn completes_at_all_sizes() {
        for p in 1..=9 {
            let results = run_group(p, FaultPlan::none(), |comm| dissemination_barrier(&comm, 0));
            assert!(results.into_iter().all(|r| r.is_ok()), "p={p}");
        }
    }

    #[test]
    fn no_rank_exits_before_all_entered() {
        // Pre-barrier counter must be p at every rank's barrier exit.
        static ENTERED: AtomicUsize = AtomicUsize::new(0);
        ENTERED.store(0, Ordering::SeqCst);
        let p = 6;
        let results = run_group(p, FaultPlan::none(), |comm| {
            if comm.rank() == 3 {
                // Straggler: everyone else must wait for it.
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            ENTERED.fetch_add(1, Ordering::SeqCst);
            dissemination_barrier(&comm, 0).unwrap();
            ENTERED.load(Ordering::SeqCst)
        });
        for seen in results {
            assert_eq!(seen, p, "a rank left the barrier early");
        }
    }

    #[test]
    fn failure_inside_barrier_reported() {
        let plan = FaultPlan::none().kill_at_point(transport::RankId(0), "barrier.step", 1);
        let results = run_group(4, plan, |comm| dissemination_barrier(&comm, 0));
        assert_eq!(results[0], Err(CollError::SelfDied));
        assert!(results.iter().skip(1).any(|r| r.is_err()));
    }
}
