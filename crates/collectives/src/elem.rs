//! Element types and reduction operators.

use transport::Wire;

/// Reduction operator applied element-wise by reduce-style collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum (gradient aggregation).
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
    /// Bitwise AND — integer types only. Used by the agreement protocol
    /// (ULFM's `MPIX_Comm_agree` computes a bitwise AND of contributions).
    BitAnd,
    /// Bitwise OR — integer types only. Used to union failure bitmaps.
    BitOr,
}

/// An element a collective can carry: wire-encodable plus reducible.
pub trait Elem: Wire + PartialOrd + std::fmt::Debug {
    /// Apply `op` to two values.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_float_elem {
    ($($t:ty),*) => {$(
        impl Elem for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Max => if a >= b { a } else { b },
                    ReduceOp::Min => if a <= b { a } else { b },
                    ReduceOp::BitAnd | ReduceOp::BitOr => {
                        panic!("bitwise reduction is not defined for floating-point elements")
                    }
                }
            }
        }
    )*};
}

macro_rules! impl_int_elem {
    ($($t:ty),*) => {$(
        impl Elem for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::BitAnd => a & b,
                    ReduceOp::BitOr => a | b,
                }
            }
        }
    )*};
}

impl_float_elem!(f32, f64);
impl_int_elem!(u8, u16, u32, u64, i32, i64);

/// Reduce `src` into `dst` element-wise: `dst[i] = combine(op, dst[i], src[i])`.
///
/// # Panics
/// Panics if lengths differ.
pub(crate) fn reduce_into<E: Elem>(op: ReduceOp, dst: &mut [E], src: &[E]) {
    assert_eq!(dst.len(), src.len(), "reduce_into length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = E::combine(op, *d, *s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_ops() {
        assert_eq!(f32::combine(ReduceOp::Sum, 1.5, 2.0), 3.5);
        assert_eq!(f32::combine(ReduceOp::Prod, 1.5, 2.0), 3.0);
        assert_eq!(f64::combine(ReduceOp::Max, -1.0, 2.0), 2.0);
        assert_eq!(f64::combine(ReduceOp::Min, -1.0, 2.0), -1.0);
    }

    #[test]
    fn int_ops() {
        assert_eq!(u64::combine(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(u64::combine(ReduceOp::BitAnd, 0b1100, 0b1010), 0b1000);
        assert_eq!(u64::combine(ReduceOp::BitOr, 0b1100, 0b1010), 0b1110);
        assert_eq!(i64::combine(ReduceOp::Min, -5, 2), -5);
    }

    #[test]
    fn int_sum_wraps_instead_of_panicking() {
        assert_eq!(u8::combine(ReduceOp::Sum, 255, 1), 0);
    }

    #[test]
    #[should_panic(expected = "bitwise")]
    fn float_bitand_panics() {
        f32::combine(ReduceOp::BitAnd, 1.0, 2.0);
    }

    #[test]
    fn reduce_into_elementwise() {
        let mut dst = vec![1u32, 2, 3];
        reduce_into(ReduceOp::Sum, &mut dst, &[10, 20, 30]);
        assert_eq!(dst, vec![11, 22, 33]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reduce_into_checks_lengths() {
        let mut dst = vec![1u32];
        reduce_into(ReduceOp::Sum, &mut dst, &[1, 2]);
    }
}
