//! Two-level (topology-aware) allreduce over a *flat* peer group.
//!
//! Horovod's hierarchical-allreduce optimization for Summit's
//! 6-GPUs-per-node shape: intra-node traffic is cheap, so only one rank
//! per node participates in the expensive cross-node exchange. The
//! algorithm is a two-level reduce-scatter/allgather:
//!
//! 1. **intra-node reduce** — every node binomial-reduces onto its leader;
//! 2. **cross-node exchange** — the leaders run a flat allreduce (ring,
//!    recursive-doubling, or Rabenseifner, per the resolved algorithm)
//!    among themselves, reduce-scattering and allgathering the node
//!    partials;
//! 3. **intra-node bcast** — each leader binomial-broadcasts the final
//!    values back to its node.
//!
//! Crucially the whole thing runs **on the flat group**: node subgroups
//! are views ([`Subgroup`]) that translate dense sub-indices to parent
//! indices on the wire. No sub-communicators are created, so a failure
//! anywhere surfaces as a [`CollError::PeerFailed`] carrying the *flat*
//! peer index, and a revocation of the flat communicator interrupts every
//! rank — including a non-leader blocked in the intra-node broadcast
//! while its leader is stuck in the cross-node ring on a dead peer. That
//! property is what lets the ULFM layer reuse its unchanged
//! revoke → agree → shrink path for hierarchical collectives.
//!
//! Determinism: for a fixed [`NodeMap`] and inputs the reduction order is
//! fixed (binomial tree within a node, then the chosen flat algorithm
//! among leaders), so results are bit-identical across runs and — for
//! exactly-representable element values — equal to the flat allreduce.

use std::ops::Range;

use crate::allreduce::{allreduce, chunk_range};
use crate::bcast::binomial_bcast;
use crate::comm::PeerComm;
use crate::elem::{Elem, ReduceOp};
use crate::error::CollError;
use crate::fusion::plan_buckets;
use crate::reduce::binomial_reduce;
use crate::{AllreduceAlgo, TAG_SPAN};

/// Tag offset (within one `TAG_SPAN` window) for the intra-node reduce.
/// Disjoint node subgroups share this sub-window safely: the transport
/// matches on (sender, tag) and intra-node sender/receiver pairs never
/// cross nodes.
const PHASE_REDUCE: u64 = 0;
/// Tag offset for the cross-node exchange among leaders.
const PHASE_CROSS: u64 = 1 << 18;
/// Tag offset for the intra-node broadcast of the final values.
const PHASE_BCAST: u64 = 1 << 19;

/// Static node structure of a flat peer group: which group ranks live on
/// which node, and who each node's leader is (its first member in group
/// order).
///
/// A `NodeMap` is built *locally* from per-rank node colors — no
/// communication — so after a membership change every survivor can
/// rebuild it deterministically from the agreed survivor set alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeMap {
    /// Members of each node (flat group ranks, ascending), in order of
    /// each node's first appearance in the group.
    nodes: Vec<Vec<usize>>,
    /// Flat group rank → index into `nodes`.
    node_of: Vec<usize>,
}

impl NodeMap {
    /// Build a map from one node color per flat group rank (index =
    /// group rank). Ranks with equal colors share a node; each node's
    /// leader is its lowest group rank. Deterministic in the colors.
    pub fn from_colors(colors: &[u64]) -> Self {
        let mut nodes: Vec<Vec<usize>> = Vec::new();
        let mut seen: Vec<u64> = Vec::new();
        let mut node_of = Vec::with_capacity(colors.len());
        for (rank, &c) in colors.iter().enumerate() {
            match seen.iter().position(|&s| s == c) {
                Some(i) => {
                    nodes[i].push(rank);
                    node_of.push(i);
                }
                None => {
                    seen.push(c);
                    nodes.push(vec![rank]);
                    node_of.push(nodes.len() - 1);
                }
            }
        }
        Self { nodes, node_of }
    }

    /// Number of flat group ranks covered by the map.
    pub fn n_ranks(&self) -> usize {
        self.node_of.len()
    }

    /// Number of distinct nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node index of a flat group rank.
    pub fn node_index(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// All flat group ranks on `rank`'s node, ascending (leader first).
    pub fn node_members(&self, rank: usize) -> &[usize] {
        &self.nodes[self.node_of[rank]]
    }

    /// The leader (first member) of `rank`'s node.
    pub fn leader_of(&self, rank: usize) -> usize {
        self.nodes[self.node_of[rank]][0]
    }

    /// Is `rank` its node's leader?
    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader_of(rank) == rank
    }

    /// The leaders of every node, in node order.
    pub fn leaders(&self) -> Vec<usize> {
        self.nodes.iter().map(|m| m[0]).collect()
    }

    /// True when every node holds exactly one rank — the hierarchy
    /// degenerates to the flat group and buys nothing.
    pub fn is_flat(&self) -> bool {
        self.nodes.iter().all(|m| m.len() == 1)
    }

    /// Largest node size.
    pub fn max_node_size(&self) -> usize {
        self.nodes.iter().map(|m| m.len()).max().unwrap_or(0)
    }
}

/// Two-tier partition of `n` elements: tier 1 splits `[0, n)` across
/// `n_nodes` contiguous node shards (the cross-node reduce-scatter
/// ownership); tier 2 splits node `node`'s shard across that node's
/// `node_size` local ranks. Both tiers use the same balanced
/// [`chunk_range`] rule as the flat ring, so the union over all
/// `(node, local)` pairs tiles `[0, n)` exactly — no overlap, no gap —
/// for any `n`, including `n < n_nodes` (empty shards) and 0/1-element
/// buffers.
pub fn two_tier_chunk_range(
    n: usize,
    n_nodes: usize,
    node: usize,
    node_size: usize,
    local: usize,
) -> Range<usize> {
    let outer = chunk_range(n, n_nodes, node);
    let inner = chunk_range(outer.end - outer.start, node_size, local);
    outer.start + inner.start..outer.start + inner.end
}

/// A dense view of a subset of a flat group, presented as a [`PeerComm`]
/// so the existing collective algorithms run unchanged within a node or
/// among node leaders. Peer indices are translated to parent indices on
/// the wire; errors keep the *parent* index so blame reaches the
/// communicator layer unmangled.
struct Subgroup<'a, C: PeerComm> {
    parent: &'a C,
    /// Parent indices of the members, in subgroup order.
    members: &'a [usize],
    /// This rank's index within `members`.
    my_idx: usize,
}

impl<C: PeerComm> PeerComm for Subgroup<'_, C> {
    fn size(&self) -> usize {
        self.members.len()
    }
    fn rank(&self) -> usize {
        self.my_idx
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        self.parent.send(self.members[peer], tag, data)
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        self.parent.recv(self.members[peer], tag)
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        self.parent.fault_point(name)
    }
}

/// In-place hierarchical allreduce of `buf` over the flat group behind
/// `comm`, structured by `map` (which must describe exactly
/// `comm.size()` ranks). `algo` picks the cross-node exchange among
/// leaders; `AllreduceAlgo::Auto` resolves against the *leader* count
/// and the payload, so selection is already topology-dependent.
///
/// The result equals the flat allreduce up to floating-point
/// reassociation, and is bit-identical to it for exactly-representable
/// values (integers, quarter-integers within range, min/max).
///
/// Consumes tags in `[tag_base, tag_base + TAG_SPAN)`.
pub fn hier_allreduce<E: Elem, C: PeerComm>(
    comm: &C,
    map: &NodeMap,
    buf: &mut [E],
    op: ReduceOp,
    algo: AllreduceAlgo,
    tag_base: u64,
) -> Result<(), CollError> {
    assert_eq!(
        map.n_ranks(),
        comm.size(),
        "node map describes a different group than the communicator"
    );
    crate::observe("coll.allreduce.hier", || {
        let me = comm.rank();
        let members = map.node_members(me);
        let my_idx = members
            .iter()
            .position(|&r| r == me)
            .expect("rank missing from its own node");

        // Phase 1: binomial-reduce onto the node leader (subgroup idx 0).
        if members.len() > 1 {
            let local = Subgroup {
                parent: comm,
                members,
                my_idx,
            };
            binomial_reduce(&local, 0, buf, op, tag_base + PHASE_REDUCE)?;
        }

        // Phase 2: flat allreduce among the node leaders.
        let leaders = map.leaders();
        if map.is_leader(me) && leaders.len() > 1 {
            let leader_idx = map.node_index(me);
            let cross = Subgroup {
                parent: comm,
                members: &leaders,
                my_idx: leader_idx,
            };
            allreduce(&cross, buf, op, algo, tag_base + PHASE_CROSS)?;
        }

        // Phase 3: binomial-broadcast the final values within the node.
        if members.len() > 1 {
            let local = Subgroup {
                parent: comm,
                members,
                my_idx,
            };
            let mut bytes = if my_idx == 0 {
                E::encode_slice(buf)
            } else {
                Vec::new()
            };
            binomial_bcast(&local, 0, &mut bytes, tag_base + PHASE_BCAST)?;
            if my_idx != 0 {
                buf.copy_from_slice(&E::decode_slice(&bytes));
            }
        }
        Ok(())
    })
}

/// Hierarchical fused allreduce: bucket `tensors` greedily under
/// `cap_bytes` (same plan as [`crate::fused_allreduce`]), then run each
/// bucket through [`hier_allreduce`]. Bucket `b` consumes tags in
/// `[tag_base + b*TAG_SPAN, tag_base + (b+1)*TAG_SPAN)`, mirroring the
/// flat fused path, so a caller can swap one for the other without
/// changing its tag accounting.
pub fn hier_fused_allreduce<E: Elem, C: PeerComm>(
    comm: &C,
    map: &NodeMap,
    tensors: &mut [Vec<E>],
    op: ReduceOp,
    algo: AllreduceAlgo,
    cap_bytes: usize,
    tag_base: u64,
) -> Result<(), CollError> {
    let sizes: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
    let plan = plan_buckets(&sizes, E::WIDTH, cap_bytes);
    for (b, range) in plan.into_iter().enumerate() {
        let views: Vec<&[E]> = tensors[range.clone()]
            .iter()
            .map(|t| t.as_slice())
            .collect();
        let mut fused = crate::fusion::FusionBuffer::pack(&views);
        crate::fusion::observe_bucket(fused.len() * E::WIDTH, fused.num_tensors());
        hier_allreduce(
            comm,
            map,
            fused.data_mut(),
            op,
            algo,
            tag_base + b as u64 * TAG_SPAN,
        )?;
        let mut views: Vec<&mut [E]> = tensors[range]
            .iter_mut()
            .map(|t| t.as_mut_slice())
            .collect();
        fused.unpack_into(&mut views);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{input_for, run_group};
    use transport::FaultPlan;

    /// Dense-packing colors: `rank / rpn`, the shape `transport::Topology`
    /// assigns.
    fn colors(p: usize, rpn: usize) -> Vec<u64> {
        (0..p).map(|r| (r / rpn) as u64).collect()
    }

    #[test]
    fn node_map_structure() {
        let m = NodeMap::from_colors(&colors(7, 3));
        assert_eq!(m.n_nodes(), 3);
        assert_eq!(m.n_ranks(), 7);
        assert_eq!(m.leaders(), vec![0, 3, 6]);
        assert_eq!(m.node_members(4), &[3, 4, 5]);
        assert_eq!(m.leader_of(5), 3);
        assert!(m.is_leader(3));
        assert!(!m.is_leader(4));
        assert!(!m.is_flat());
        assert!(NodeMap::from_colors(&colors(4, 1)).is_flat());
        assert_eq!(m.max_node_size(), 3);
    }

    #[test]
    fn node_map_handles_interleaved_colors() {
        // Colors need not be contiguous: nodes form by first appearance.
        let m = NodeMap::from_colors(&[7, 2, 7, 2, 9]);
        assert_eq!(m.n_nodes(), 3);
        assert_eq!(m.node_members(2), &[0, 2]);
        assert_eq!(m.node_members(3), &[1, 3]);
        assert_eq!(m.leaders(), vec![0, 1, 4]);
    }

    #[test]
    fn two_tier_tiles_exactly() {
        for &(n, shape) in &[
            (19usize, &[3usize, 2, 1][..]),
            (2, &[3, 3][..]),
            (0, &[2, 2][..]),
            (1, &[1, 4, 2][..]),
            (64, &[6, 6, 6, 6][..]),
        ] {
            let mut covered = vec![0usize; n];
            for (node, &sz) in shape.iter().enumerate() {
                for local in 0..sz {
                    let r = two_tier_chunk_range(n, shape.len(), node, sz, local);
                    for i in r {
                        covered[i] += 1;
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "n={n} shape={shape:?}: {covered:?}"
            );
        }
    }

    fn check_hier(p: usize, rpn: usize, len: usize, algo: AllreduceAlgo) {
        let results = run_group(p, FaultPlan::none(), move |comm| {
            let map = NodeMap::from_colors(&colors(p, rpn));
            let mut hier = input_for(comm.rank(), len);
            hier_allreduce(&comm, &map, &mut hier, ReduceOp::Sum, algo, 0).unwrap();
            let mut flat = input_for(comm.rank(), len);
            allreduce(&comm, &mut flat, ReduceOp::Sum, algo, 1 << 40).unwrap();
            (hier, flat)
        });
        for (rank, (hier, flat)) in results.into_iter().enumerate() {
            // Quarter-integer inputs sum exactly, so bit-identical.
            assert_eq!(hier, flat, "p={p} rpn={rpn} len={len} rank={rank}");
        }
    }

    #[test]
    fn hier_equals_flat_across_shapes_and_algos() {
        for &(p, rpn) in &[(2, 2), (4, 2), (5, 2), (6, 3), (7, 3), (9, 3), (5, 1)] {
            for algo in [
                AllreduceAlgo::Ring,
                AllreduceAlgo::RecursiveDoubling,
                AllreduceAlgo::Rabenseifner,
                AllreduceAlgo::auto(),
            ] {
                check_hier(p, rpn, 19, algo);
            }
        }
    }

    #[test]
    fn hier_short_buffers() {
        for len in [0usize, 1, 2] {
            check_hier(6, 3, len, AllreduceAlgo::Ring);
        }
    }

    #[test]
    fn hier_max_op() {
        let results = run_group(6, FaultPlan::none(), |comm| {
            let map = NodeMap::from_colors(&colors(6, 2));
            let mut buf = vec![comm.rank() as f32 * 10.0];
            hier_allreduce(&comm, &map, &mut buf, ReduceOp::Max, AllreduceAlgo::Ring, 0).unwrap();
            buf[0]
        });
        for v in results {
            assert_eq!(v, 50.0);
        }
    }

    #[test]
    fn hier_fused_equals_flat_fused() {
        let sizes = [7usize, 0, 33, 1, 12];
        let results = run_group(6, FaultPlan::none(), move |comm| {
            let map = NodeMap::from_colors(&colors(6, 3));
            let mk = |rank: usize| -> Vec<Vec<f32>> {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(t, &n)| input_for(rank * 7 + t, n))
                    .collect()
            };
            let mut hier = mk(comm.rank());
            hier_fused_allreduce(
                &comm,
                &map,
                &mut hier,
                ReduceOp::Sum,
                AllreduceAlgo::Ring,
                64,
                0,
            )
            .unwrap();
            let mut flat = mk(comm.rank());
            crate::fused_allreduce(
                &comm,
                &mut flat,
                ReduceOp::Sum,
                AllreduceAlgo::Ring,
                64,
                1 << 40,
            )
            .unwrap();
            (hier, flat)
        });
        for (rank, (hier, flat)) in results.into_iter().enumerate() {
            assert_eq!(hier, flat, "rank={rank}");
        }
    }
}
