//! Rooted collectives: binomial reduce, linear gather and scatter.

use crate::comm::PeerComm;
use crate::elem::{reduce_into, Elem, ReduceOp};
use crate::error::CollError;
use crate::framing::{decode_blocks, encode_blocks};

/// Reduce `buf` from all ranks onto `root` along a binomial tree. After the
/// call the root's `buf` holds the reduction; other ranks' buffers hold
/// intermediate partial sums (as in MPI, non-root buffers are scratch).
pub fn binomial_reduce<E: Elem, C: PeerComm>(
    comm: &C,
    root: usize,
    buf: &mut [E],
    op: ReduceOp,
    tag_base: u64,
) -> Result<(), CollError> {
    crate::observe("coll.reduce.binomial", || {
        let p = comm.size();
        assert!(root < p, "reduce root {root} out of range (size {p})");
        if p == 1 {
            return Ok(());
        }
        let vrank = (comm.rank() + p - root) % p;

        // Children send up in increasing-bit order; each rank absorbs
        // children below its lowest set bit, then sends to its parent.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                comm.fault_point("reduce.step")?;
                let parent = ((vrank & !mask) + root) % p;
                comm.send(
                    parent,
                    tag_base + mask.trailing_zeros() as u64,
                    &E::encode_slice(buf),
                )?;
                return Ok(());
            }
            let vchild = vrank | mask;
            if vchild < p {
                comm.fault_point("reduce.step")?;
                let child = (vchild + root) % p;
                let data = comm.recv(child, tag_base + mask.trailing_zeros() as u64)?;
                reduce_into(op, buf, &E::decode_slice(&data));
            }
            mask <<= 1;
        }
        Ok(())
    })
}

/// Gather each rank's byte block to `root`. Returns `Some(blocks)` (indexed
/// by group rank) at the root, `None` elsewhere. Linear algorithm: fine for
/// control-plane payloads.
pub fn gather<C: PeerComm>(
    comm: &C,
    root: usize,
    mine: &[u8],
    tag_base: u64,
) -> Result<Option<Vec<Vec<u8>>>, CollError> {
    crate::observe("coll.gather.linear", || {
        let p = comm.size();
        let r = comm.rank();
        assert!(root < p, "gather root {root} out of range (size {p})");
        if r == root {
            let mut out = vec![Vec::new(); p];
            out[root] = mine.to_vec();
            for peer in (0..p).filter(|&x| x != root) {
                comm.fault_point("gather.step")?;
                let data = comm.recv(peer, tag_base)?;
                let mut blocks = decode_blocks(&data);
                assert_eq!(blocks.len(), 1);
                let (idx, block) = blocks.pop().unwrap();
                assert_eq!(idx, peer);
                out[peer] = block;
            }
            Ok(Some(out))
        } else {
            comm.fault_point("gather.step")?;
            comm.send(root, tag_base, &encode_blocks(std::iter::once((r, mine))))?;
            Ok(None)
        }
    })
}

/// Scatter per-rank byte blocks from `root`. The root passes
/// `Some(blocks)` with one block per rank; everyone receives their block.
pub fn scatter<C: PeerComm>(
    comm: &C,
    root: usize,
    blocks: Option<&[Vec<u8>]>,
    tag_base: u64,
) -> Result<Vec<u8>, CollError> {
    crate::observe("coll.scatter.linear", || {
        let p = comm.size();
        let r = comm.rank();
        assert!(root < p, "scatter root {root} out of range (size {p})");
        if r == root {
            let blocks = blocks.expect("root must supply blocks");
            assert_eq!(blocks.len(), p, "scatter needs one block per rank");
            for peer in (0..p).filter(|&x| x != root) {
                comm.fault_point("scatter.step")?;
                comm.send(peer, tag_base, &blocks[peer])?;
            }
            Ok(blocks[root].clone())
        } else {
            comm.fault_point("scatter.step")?;
            comm.recv(root, tag_base)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{expected_sum, input_for, run_group};
    use transport::FaultPlan;

    #[test]
    fn reduce_to_each_root() {
        for p in 1..=8 {
            for root in 0..p {
                let n = 33;
                let results = run_group(p, FaultPlan::none(), move |comm| {
                    let mut buf = input_for(comm.rank(), n);
                    binomial_reduce(&comm, root, &mut buf, ReduceOp::Sum, 0).map(|()| buf)
                });
                let want = expected_sum(0..p, n);
                assert_eq!(results[root].as_ref().unwrap(), &want, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn gather_collects_ordered_blocks() {
        let p = 5;
        let results = run_group(p, FaultPlan::none(), |comm| {
            gather(&comm, 2, &[comm.rank() as u8; 3], 0)
        });
        let blocks = results[2].as_ref().unwrap().as_ref().unwrap();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b, &vec![i as u8; 3]);
        }
        for (i, r) in results.iter().enumerate() {
            if i != 2 {
                assert!(r.as_ref().unwrap().is_none());
            }
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let p = 4;
        let results = run_group(p, FaultPlan::none(), |comm| {
            let blocks: Option<Vec<Vec<u8>>> =
                (comm.rank() == 1).then(|| (0..p).map(|i| vec![i as u8 * 10]).collect());
            scatter(&comm, 1, blocks.as_deref(), 0)
        });
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap(), vec![i as u8 * 10]);
        }
    }

    #[test]
    fn reduce_with_dead_child_reports_failure_at_root() {
        let plan = FaultPlan::none().kill_at_point(transport::RankId(3), "reduce.step", 1);
        let results = run_group(4, plan, |comm| {
            let mut buf = vec![1.0f32];
            binomial_reduce(&comm, 0, &mut buf, ReduceOp::Sum, 0)
        });
        assert_eq!(results[3], Err(CollError::SelfDied));
        assert!(results[..3]
            .iter()
            .any(|r| matches!(r, Err(CollError::PeerFailed { .. }))));
    }
}
