//! The peer-communication abstraction algorithms are written against.

use crate::error::CollError;

/// A group of peers with dense local indices `0..size()`, over which an
/// algorithm can send and receive tagged byte messages.
///
/// Implementations translate local indices to whatever global identity the
/// runtime uses, enforce liveness semantics, and map transport failures to
/// [`CollError`]:
///
/// * the ULFM communicator maps a dead peer to `PeerFailed` and keeps the
///   communicator usable (recovery happens above);
/// * the Gloo context maps *any* failure to a poisoned context.
///
/// Sends must be non-blocking (buffered); receives block until a matching
/// message arrives or the peer is detected dead.
pub trait PeerComm {
    /// Number of peers in the group.
    fn size(&self) -> usize;
    /// This rank's index within the group (`0..size()`).
    fn rank(&self) -> usize;
    /// Send `data` to group-local `peer` under `tag`.
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError>;
    /// Receive the next message from group-local `peer` under `tag`.
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError>;
    /// Protocol-level fault point; lets a fault plan kill this rank between
    /// steps of a collective. Default: never dies.
    fn fault_point(&self, _name: &str) -> Result<(), CollError> {
        Ok(())
    }
}

/// Blanket impl so algorithms can take `&C` where helpers hold `&C`.
impl<C: PeerComm + ?Sized> PeerComm for &C {
    fn size(&self) -> usize {
        (**self).size()
    }
    fn rank(&self) -> usize {
        (**self).rank()
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        (**self).send(peer, tag, data)
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        (**self).recv(peer, tag)
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        (**self).fault_point(name)
    }
}
