//! Allreduce algorithms: ring, recursive doubling, and Rabenseifner.
//!
//! Allreduce dominates data-parallel training traffic (every gradient tensor
//! of every mini-batch), so we provide the three classic algorithms used by
//! MPI implementations and Horovod:
//!
//! * **ring** — bandwidth-optimal, `2(p-1)` steps; what NCCL/Horovod use for
//!   large tensors;
//! * **recursive doubling** — latency-optimal, `⌈log₂ p⌉` steps on the full
//!   vector; best for small tensors;
//! * **Rabenseifner** — reduce-scatter by recursive halving + allgather by
//!   recursive doubling; bandwidth-optimal with logarithmic step count.
//!
//! All three place a `"allreduce.step"` fault point before every
//! communication step, so a [`transport::FaultPlan`] can kill a rank at any
//! point inside the collective — the scenario at the heart of the paper's
//! forward-recovery argument.

use crate::comm::PeerComm;
use crate::elem::{reduce_into, Elem, ReduceOp};
use crate::error::CollError;

/// Which allreduce algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AllreduceAlgo {
    /// Bandwidth-optimal ring (default; Horovod's choice for large tensors).
    #[default]
    Ring,
    /// Latency-optimal recursive doubling.
    RecursiveDoubling,
    /// Rabenseifner's reduce-scatter + allgather.
    Rabenseifner,
    /// Size-adaptive: per call, picks recursive doubling for payloads at or
    /// below `crossover_bytes` (latency-bound regime) and a
    /// bandwidth-optimal algorithm above it — Rabenseifner when the group
    /// size is a power of two (its fold phase otherwise ships whole
    /// buffers, wasting bandwidth), ring otherwise. The crossover is where
    /// the α–β cost of ring and recursive doubling intersect; the
    /// `elastic::cost_model` crate derives it for a calibrated network via
    /// `CommModel::crossover_bytes`.
    Auto {
        /// Payload size (bytes) at which the bandwidth-bound algorithms
        /// take over from recursive doubling.
        crossover_bytes: u32,
    },
}

impl AllreduceAlgo {
    /// Size-adaptive selection with the default crossover,
    /// [`AllreduceAlgo::DEFAULT_CROSSOVER_BYTES`].
    pub fn auto() -> Self {
        Self::auto_with(Self::DEFAULT_CROSSOVER_BYTES)
    }

    /// Size-adaptive selection with an explicit crossover (typically
    /// calibrated from a cost model for the actual network).
    pub fn auto_with(crossover_bytes: u32) -> Self {
        AllreduceAlgo::Auto { crossover_bytes }
    }

    /// Default ring-vs-recursive-doubling crossover: 256 KiB, the
    /// intersection of the two α–β cost curves for a Summit-like network
    /// (α = 1.5 µs, β = 1/23 GB/s) at small-to-mid group sizes. The
    /// `elastic` crate cross-checks this constant against its cost model.
    pub const DEFAULT_CROSSOVER_BYTES: u32 = 256 << 10;

    /// Resolve `self` to a concrete (non-`Auto`) algorithm for a payload of
    /// `payload_bytes` on a group of `p` ranks. Non-`Auto` values return
    /// themselves.
    pub fn resolve(self, payload_bytes: usize, p: usize) -> AllreduceAlgo {
        match self {
            AllreduceAlgo::Auto { crossover_bytes } => {
                if payload_bytes <= crossover_bytes as usize {
                    AllreduceAlgo::RecursiveDoubling
                } else if p.is_power_of_two() {
                    AllreduceAlgo::Rabenseifner
                } else {
                    AllreduceAlgo::Ring
                }
            }
            concrete => concrete,
        }
    }
}

/// Element range of logical chunk `i` when `n` elements are split `p` ways.
/// Balanced to within one element; empty chunks are legal and common when
/// `n < p` (a 1-element buffer on a 5-rank ring has four empty chunks that
/// travel as zero-byte messages). Widened arithmetic so `i·n` cannot wrap
/// for huge buffers.
pub(crate) fn chunk_range(n: usize, p: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(i <= p, "chunk index {i} out of range for {p} chunks");
    let lo = (i as u128 * n as u128 / p as u128) as usize;
    let hi = ((i as u128 + 1) * n as u128 / p as u128) as usize;
    lo..hi
}

/// In-place allreduce of `buf` across the group, using `algo`.
///
/// On success every surviving rank holds the identical element-wise
/// reduction of all ranks' inputs. On [`CollError::PeerFailed`] the local
/// buffer holds a partially-reduced value; the ULFM recovery path in the
/// `elastic` crate re-runs the collective from the *saved input* on the
/// shrunk communicator, so partial state here is never observed by training.
pub fn allreduce<E: Elem, C: PeerComm>(
    comm: &C,
    buf: &mut [E],
    op: ReduceOp,
    algo: AllreduceAlgo,
    tag_base: u64,
) -> Result<(), CollError> {
    // Wire bytes, not in-memory bytes: the crossover models network cost.
    let resolved = algo.resolve(buf.len() * E::WIDTH, comm.size());
    let metric = match resolved {
        AllreduceAlgo::Ring => "coll.allreduce.ring",
        AllreduceAlgo::RecursiveDoubling => "coll.allreduce.recursive_doubling",
        AllreduceAlgo::Rabenseifner => "coll.allreduce.rabenseifner",
        AllreduceAlgo::Auto { .. } => unreachable!("resolve returns a concrete algorithm"),
    };
    if matches!(algo, AllreduceAlgo::Auto { .. }) {
        telemetry::counter(&format!("{metric}.auto_picked")).incr();
    }
    crate::observe(metric, || match resolved {
        AllreduceAlgo::Ring => ring_allreduce(comm, buf, op, tag_base),
        AllreduceAlgo::RecursiveDoubling => recursive_doubling_allreduce(comm, buf, op, tag_base),
        AllreduceAlgo::Rabenseifner => rabenseifner_allreduce(comm, buf, op, tag_base),
        AllreduceAlgo::Auto { .. } => unreachable!(),
    })
}

/// Bandwidth-optimal ring allreduce (reduce-scatter ring + allgather ring).
pub fn ring_allreduce<E: Elem, C: PeerComm>(
    comm: &C,
    buf: &mut [E],
    op: ReduceOp,
    tag_base: u64,
) -> Result<(), CollError> {
    let p = comm.size();
    let r = comm.rank();
    if p == 1 {
        return Ok(());
    }
    let n = buf.len();
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;

    // Phase 1: reduce-scatter. After p-1 steps rank r holds the fully
    // reduced chunk (r+1) mod p.
    for step in 0..p - 1 {
        comm.fault_point("allreduce.step")?;
        let send_chunk = (r + p - step) % p;
        let recv_chunk = (r + p - step - 1) % p;
        let tag = tag_base + step as u64;
        comm.send(
            right,
            tag,
            &E::encode_slice(&buf[chunk_range(n, p, send_chunk)]),
        )?;
        let data = comm.recv(left, tag)?;
        let vals = E::decode_slice(&data);
        reduce_into(op, &mut buf[chunk_range(n, p, recv_chunk)], &vals);
    }

    // Phase 2: allgather ring. Rank r starts by forwarding its owned chunk.
    for step in 0..p - 1 {
        comm.fault_point("allreduce.step")?;
        let send_chunk = (r + 1 + p - step) % p;
        let recv_chunk = (r + p - step) % p;
        let tag = tag_base + (p - 1 + step) as u64;
        comm.send(
            right,
            tag,
            &E::encode_slice(&buf[chunk_range(n, p, send_chunk)]),
        )?;
        let data = comm.recv(left, tag)?;
        let vals = E::decode_slice(&data);
        buf[chunk_range(n, p, recv_chunk)].copy_from_slice(&vals);
    }
    Ok(())
}

/// Map a virtual rank (dense `0..pof2`) back to a real group index, given
/// `rem = p - pof2` folded pairs at the front of the group.
fn unmap_vrank(v: usize, rem: usize) -> usize {
    if v < rem {
        2 * v + 1
    } else {
        v + rem
    }
}

/// Fold phase shared by the logarithmic algorithms: ranks in the first
/// `2*rem` positions pair up (even sends to odd, odd reduces), leaving a
/// power-of-two set of active virtual ranks. Returns `Some(vrank)` if this
/// rank stays active.
fn fold<E: Elem, C: PeerComm>(
    comm: &C,
    buf: &mut [E],
    op: ReduceOp,
    rem: usize,
    tag: u64,
) -> Result<Option<usize>, CollError> {
    let r = comm.rank();
    if r < 2 * rem {
        comm.fault_point("allreduce.step")?;
        if r.is_multiple_of(2) {
            comm.send(r + 1, tag, &E::encode_slice(buf))?;
            Ok(None)
        } else {
            let data = comm.recv(r - 1, tag)?;
            reduce_into(op, buf, &E::decode_slice(&data));
            Ok(Some(r / 2))
        }
    } else {
        Ok(Some(r - rem))
    }
}

/// Unfold phase: active odd ranks push the final result back to their folded
/// even partner.
fn unfold<E: Elem, C: PeerComm>(
    comm: &C,
    buf: &mut [E],
    rem: usize,
    active: bool,
    tag: u64,
) -> Result<(), CollError> {
    let r = comm.rank();
    if r < 2 * rem {
        comm.fault_point("allreduce.step")?;
        if active {
            comm.send(r - 1, tag, &E::encode_slice(buf))?;
        } else {
            let data = comm.recv(r + 1, tag)?;
            buf.copy_from_slice(&E::decode_slice(&data));
        }
    }
    Ok(())
}

/// Latency-optimal recursive-doubling allreduce; handles non-power-of-two
/// group sizes with the standard fold/unfold.
pub fn recursive_doubling_allreduce<E: Elem, C: PeerComm>(
    comm: &C,
    buf: &mut [E],
    op: ReduceOp,
    tag_base: u64,
) -> Result<(), CollError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let pof2 = p.next_power_of_two() >> usize::from(!p.is_power_of_two());
    let rem = p - pof2;

    let vrank = fold(comm, buf, op, rem, tag_base)?;

    if let Some(v) = vrank {
        let mut mask = 1usize;
        let mut step = 0u64;
        while mask < pof2 {
            comm.fault_point("allreduce.step")?;
            let vpartner = v ^ mask;
            let partner = unmap_vrank(vpartner, rem);
            let tag = tag_base + 1 + step;
            comm.send(partner, tag, &E::encode_slice(buf))?;
            let data = comm.recv(partner, tag)?;
            reduce_into(op, buf, &E::decode_slice(&data));
            mask <<= 1;
            step += 1;
        }
    }

    unfold(comm, buf, rem, vrank.is_some(), tag_base + 100)
}

/// Rabenseifner's allreduce: recursive-halving reduce-scatter followed by a
/// recursive-doubling allgather. Bandwidth-optimal at `O(log p)` steps.
pub fn rabenseifner_allreduce<E: Elem, C: PeerComm>(
    comm: &C,
    buf: &mut [E],
    op: ReduceOp,
    tag_base: u64,
) -> Result<(), CollError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let pof2 = p.next_power_of_two() >> usize::from(!p.is_power_of_two());
    let rem = p - pof2;
    let n = buf.len();

    // Element range covered by logical chunks [a, b) of the pof2 split;
    // empty when `n < pof2` leaves chunk [a, b) without elements.
    let block = |a: usize, b: usize| {
        (a as u128 * n as u128 / pof2 as u128) as usize
            ..(b as u128 * n as u128 / pof2 as u128) as usize
    };

    let vrank = fold(comm, buf, op, rem, tag_base)?;

    if let Some(v) = vrank {
        // Reduce-scatter by recursive halving. The active block of chunk
        // indices [lo, hi) narrows by half each step; after log2(pof2) steps
        // lo == v and this rank owns the fully reduced chunk v.
        let (mut lo, mut hi) = (0usize, pof2);
        let mut mask = pof2 >> 1;
        let mut step = 0u64;
        while mask >= 1 {
            comm.fault_point("allreduce.step")?;
            let vpartner = v ^ mask;
            let partner = unmap_vrank(vpartner, rem);
            let mid = lo + (hi - lo) / 2;
            let tag = tag_base + 1 + step;
            if v & mask == 0 {
                // Keep the lower half, give away the upper half.
                comm.send(partner, tag, &E::encode_slice(&buf[block(mid, hi)]))?;
                let data = comm.recv(partner, tag)?;
                reduce_into(op, &mut buf[block(lo, mid)], &E::decode_slice(&data));
                hi = mid;
            } else {
                comm.send(partner, tag, &E::encode_slice(&buf[block(lo, mid)]))?;
                let data = comm.recv(partner, tag)?;
                reduce_into(op, &mut buf[block(mid, hi)], &E::decode_slice(&data));
                lo = mid;
            }
            mask >>= 1;
            step += 1;
            if mask == 0 {
                break;
            }
        }
        debug_assert_eq!(lo, v);
        debug_assert_eq!(hi, v + 1);

        // Allgather by recursive doubling over aligned chunk blocks.
        let mut m = 1usize;
        while m < pof2 {
            comm.fault_point("allreduce.step")?;
            let vpartner = v ^ m;
            let partner = unmap_vrank(vpartner, rem);
            let my_lo = (v / m) * m;
            let their_lo = (vpartner / m) * m;
            let tag = tag_base + 200 + step;
            comm.send(
                partner,
                tag,
                &E::encode_slice(&buf[block(my_lo, my_lo + m)]),
            )?;
            let data = comm.recv(partner, tag)?;
            buf[block(their_lo, their_lo + m)].copy_from_slice(&E::decode_slice(&data));
            m <<= 1;
            step += 1;
        }
    }

    unfold(comm, buf, rem, vrank.is_some(), tag_base + 500)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{expected_sum, input_for, run_group};
    use transport::FaultPlan;

    fn check_allreduce(algo: AllreduceAlgo, p: usize, n: usize) {
        let results = run_group(p, FaultPlan::none(), |comm| {
            let mut buf = input_for(comm.rank(), n);
            allreduce(&comm, &mut buf, ReduceOp::Sum, algo, 0).map(|()| buf)
        });
        let want = expected_sum(0..p, n);
        for (r, got) in results.into_iter().enumerate() {
            let got = got.unwrap_or_else(|e| panic!("rank {r} failed: {e}"));
            assert_eq!(got, want, "rank {r} result mismatch (p={p}, n={n})");
        }
    }

    #[test]
    fn ring_various_sizes() {
        for &p in &[1, 2, 3, 4, 5, 8] {
            for &n in &[0, 1, 7, 64, 1000] {
                check_allreduce(AllreduceAlgo::Ring, p, n);
            }
        }
    }

    #[test]
    fn recursive_doubling_various_sizes() {
        for &p in &[1, 2, 3, 4, 5, 6, 7, 8] {
            for &n in &[0, 1, 16, 257] {
                check_allreduce(AllreduceAlgo::RecursiveDoubling, p, n);
            }
        }
    }

    #[test]
    fn rabenseifner_various_sizes() {
        for &p in &[1, 2, 3, 4, 5, 6, 7, 8, 16] {
            for &n in &[0, 1, 16, 64, 1000] {
                check_allreduce(AllreduceAlgo::Rabenseifner, p, n);
            }
        }
    }

    #[test]
    fn max_and_min_ops() {
        let p = 4;
        let results = run_group(p, FaultPlan::none(), |comm| {
            let mut buf = vec![comm.rank() as f32, -(comm.rank() as f32)];
            ring_allreduce(&comm, &mut buf, ReduceOp::Max, 0).unwrap();
            buf
        });
        for got in results {
            assert_eq!(got, vec![3.0, 0.0]);
        }
        let results = run_group(p, FaultPlan::none(), |comm| {
            let mut buf = vec![comm.rank() as f32];
            recursive_doubling_allreduce(&comm, &mut buf, ReduceOp::Min, 0).unwrap();
            buf
        });
        for got in results {
            assert_eq!(got, vec![0.0]);
        }
    }

    #[test]
    fn bitand_over_u64_for_agreement() {
        // The agreement protocol reduces flags with BitAnd.
        let results = run_group(5, FaultPlan::none(), |comm| {
            let mut buf = vec![if comm.rank() == 3 { 0b1101u64 } else { 0b1111 }];
            recursive_doubling_allreduce(&comm, &mut buf, ReduceOp::BitAnd, 0).unwrap();
            buf[0]
        });
        for got in results {
            assert_eq!(got, 0b1101);
        }
    }

    #[test]
    fn failure_mid_ring_is_reported_to_survivors() {
        let p = 4;
        let n = 64;
        // Rank 2 dies at its second allreduce step.
        let plan = FaultPlan::none().kill_at_point(transport::RankId(2), "allreduce.step", 2);
        let results = run_group(p, plan, |comm| {
            let mut buf = input_for(comm.rank(), n);
            ring_allreduce(&comm, &mut buf, ReduceOp::Sum, 0)
        });
        assert_eq!(results[2], Err(CollError::SelfDied));
        // At least the ring neighbours of rank 2 must observe the failure.
        let failures = results
            .iter()
            .enumerate()
            .filter(|(r, res)| *r != 2 && res.is_err())
            .count();
        assert!(
            failures > 0,
            "no survivor observed the failure: {results:?}"
        );
        for (r, res) in results.iter().enumerate() {
            if r != 2 {
                assert!(
                    matches!(res, Ok(()) | Err(CollError::PeerFailed { .. })),
                    "rank {r}: unexpected outcome {res:?}"
                );
            }
        }
    }

    #[test]
    fn failure_mid_recursive_doubling_is_reported() {
        let p = 8;
        let plan = FaultPlan::none().kill_at_point(transport::RankId(5), "allreduce.step", 2);
        let results = run_group(p, plan, |comm| {
            let mut buf = input_for(comm.rank(), 32);
            recursive_doubling_allreduce(&comm, &mut buf, ReduceOp::Sum, 0)
        });
        assert_eq!(results[5], Err(CollError::SelfDied));
        let failures = results
            .iter()
            .enumerate()
            .filter(|(r, res)| *r != 5 && res.is_err())
            .count();
        assert!(failures > 0);
    }

    #[test]
    fn auto_resolution_is_size_and_group_adaptive() {
        let auto = AllreduceAlgo::auto_with(1024);
        // Small payloads: latency-optimal.
        assert_eq!(auto.resolve(16, 4), AllreduceAlgo::RecursiveDoubling);
        assert_eq!(auto.resolve(1024, 5), AllreduceAlgo::RecursiveDoubling);
        // Large payloads: bandwidth-optimal, Rabenseifner only on
        // power-of-two groups.
        assert_eq!(auto.resolve(4096, 4), AllreduceAlgo::Rabenseifner);
        assert_eq!(auto.resolve(4096, 5), AllreduceAlgo::Ring);
        // Concrete algorithms resolve to themselves.
        assert_eq!(AllreduceAlgo::Ring.resolve(0, 2), AllreduceAlgo::Ring);
    }

    #[test]
    fn auto_various_sizes() {
        // Crossover at 64 B: n ≤ 16 f32 goes recursive doubling, larger
        // payloads go ring/Rabenseifner. Both regimes must agree with the
        // reference sum.
        for &p in &[1, 2, 3, 4, 5, 8] {
            for &n in &[0, 1, 7, 16, 17, 300] {
                check_allreduce(AllreduceAlgo::auto_with(64), p, n);
            }
        }
        check_allreduce(AllreduceAlgo::auto(), 4, 1000);
    }

    #[test]
    fn tiny_buffers_every_algorithm() {
        // Regression for the `n < p` empty-chunk edge: 0- and 1-element
        // buffers through every algorithm at every small group size.
        let algos = [
            AllreduceAlgo::Ring,
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::Rabenseifner,
            AllreduceAlgo::auto_with(0),
            AllreduceAlgo::auto(),
        ];
        for algo in algos {
            for p in 1..=6 {
                for n in 0..=2 {
                    check_allreduce(algo, p, n);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for &(n, p) in &[(10usize, 3usize), (0, 4), (5, 8), (1000, 7)] {
            let mut covered = 0;
            for i in 0..p {
                let r = chunk_range(n, p, i);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }
}
