//! Error type shared by all collective algorithms.

use std::fmt;

/// Failure of a collective operation at the local rank.
///
/// Mirrors ULFM's semantics: an error is *local* and *per operation* — it
/// says this rank could not complete this collective, typically because a
/// peer died mid-protocol. Different ranks may observe different outcomes
/// for the same collective (some succeed, some fail); reconciling that is
/// the recovery layer's job (`MPIX_Comm_agree` in the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollError {
    /// A peer (group-local index) needed by the protocol has failed.
    PeerFailed {
        /// Group-local index of the failed peer.
        peer: usize,
    },
    /// The calling rank itself was killed by the fault plan mid-collective.
    SelfDied,
    /// The communicator/context was revoked while the collective ran.
    Revoked,
    /// The context is poisoned and refuses further operations (Gloo-style
    /// behaviour after any fault).
    Aborted,
}

impl fmt::Display for CollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollError::PeerFailed { peer } => write!(f, "peer #{peer} failed during collective"),
            CollError::SelfDied => write!(f, "local rank died during collective"),
            CollError::Revoked => write!(f, "communicator was revoked"),
            CollError::Aborted => write!(f, "context is aborted"),
        }
    }
}

impl std::error::Error for CollError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            CollError::PeerFailed { peer: 3 }.to_string(),
            "peer #3 failed during collective"
        );
        assert!(CollError::Revoked.to_string().contains("revoked"));
    }
}
