//! Property-based tests for the two-level (hierarchical) collective:
//! the two-tier chunk partition is an exact tiling for arbitrary shapes
//! (including degenerate ones — fewer elements than leaders, empty and
//! single-element buffers), and the full hierarchical pipeline is
//! bit-for-bit equal to the flat allreduce for integer elements across
//! arbitrary node maps, group sizes, and algorithms.

use collectives::{
    allreduce, fused_allreduce, hier_allreduce, hier_fused_allreduce, two_tier_chunk_range,
    AllreduceAlgo, CollError, NodeMap, PeerComm, ReduceOp,
};
use proptest::prelude::*;
use std::sync::Arc;
use transport::{Endpoint, Fabric, FaultInjector, FaultPlan, RankId, Topology};

/// Minimal PeerComm over the fabric (same shape as fusion_props.rs).
struct PropComm {
    ep: Endpoint,
    group: Vec<RankId>,
    my_idx: usize,
}

impl PeerComm for PropComm {
    fn size(&self) -> usize {
        self.group.len()
    }
    fn rank(&self) -> usize {
        self.my_idx
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        self.ep
            .send(self.group[peer], tag, data)
            .map_err(|e| match e {
                transport::TransportError::PeerDead(_) => CollError::PeerFailed { peer },
                transport::TransportError::SelfDied => CollError::SelfDied,
                o => unreachable!("{o}"),
            })
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        self.ep.recv(self.group[peer], tag).map_err(|e| match e {
            transport::TransportError::PeerDead(_) => CollError::PeerFailed { peer },
            transport::TransportError::SelfDied => CollError::SelfDied,
            o => unreachable!("{o}"),
        })
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        self.ep.fault_point(name).map_err(|_| CollError::SelfDied)
    }
}

fn run_group<R: Send>(n: usize, f: impl Fn(PropComm) -> R + Send + Sync) -> Vec<R> {
    let fabric = Fabric::new(Topology::flat(), FaultInjector::new(FaultPlan::none()));
    let group = fabric.register_ranks(n);
    let f = &f;
    let group_ref = &group;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let fabric = Arc::clone(&fabric);
                s.spawn(move || {
                    let comm = PropComm {
                        ep: Endpoint::new(Arc::clone(&fabric), group_ref[i]),
                        group: group_ref.clone(),
                        my_idx: i,
                    };
                    let out = f(comm);
                    fabric.kill_rank(group_ref[i]);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Integer inputs: reductions are exactly associative, so hierarchical
/// re-ordering cannot change a bit.
fn input_for(rank: usize, len: usize, seed: u64) -> Vec<i64> {
    (0..len)
        .map(|i| {
            let x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((rank * 1_000_003 + i) as u64);
            (x % 2001) as i64 - 1000
        })
        .collect()
}

fn tensor_mix(rank: usize, sizes: &[usize], seed: u64) -> Vec<Vec<i64>> {
    sizes
        .iter()
        .enumerate()
        .map(|(t, &n)| input_for(rank * 31 + t, n, seed))
        .collect()
}

/// Node colors for `p` ranks over arbitrary node sizes (cyclic assignment
/// of the size list, truncated to `p`). Guarantees at least one node.
fn colors_from_shape(p: usize, shape: &[usize]) -> Vec<u64> {
    let mut colors = Vec::with_capacity(p);
    let mut node = 0u64;
    let mut left = shape[0];
    for _ in 0..p {
        if left == 0 {
            node += 1;
            left = shape[node as usize % shape.len()];
        }
        colors.push(node);
        left -= 1;
    }
    colors
}

fn algo_strategy() -> impl Strategy<Value = AllreduceAlgo> {
    prop_oneof![
        Just(AllreduceAlgo::Ring),
        Just(AllreduceAlgo::RecursiveDoubling),
        Just(AllreduceAlgo::Rabenseifner),
        Just(AllreduceAlgo::auto()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two-tier partition tiles `[0, n)` exactly: walking nodes in
    /// order and locals within each node yields contiguous, in-order,
    /// non-overlapping ranges covering every element exactly once — for
    /// arbitrary element counts (including 0, 1, and n < leader count) and
    /// arbitrary mixed node shapes.
    #[test]
    fn two_tier_partition_tiles_exactly(
        n in 0usize..400,
        shape in proptest::collection::vec(1usize..5, 1..7),
    ) {
        let n_nodes = shape.len();
        let mut next = 0usize;
        for (node, &node_size) in shape.iter().enumerate() {
            for local in 0..node_size {
                let r = two_tier_chunk_range(n, n_nodes, node, node_size, local);
                prop_assert_eq!(
                    r.start, next,
                    "tile for node {} local {} must start where the last ended", node, local
                );
                prop_assert!(r.end >= r.start);
                next = r.end;
            }
        }
        prop_assert_eq!(next, n, "tiles must cover every element");
    }

    /// Edge shapes stay exact: zero or one element, more leaders than
    /// elements — some tiles are empty, but the union is still `[0, n)`
    /// and tiles within one node never overlap another node's.
    #[test]
    fn two_tier_handles_fewer_elements_than_ranks(
        n in 0usize..4,
        n_nodes in 1usize..8,
        node_size in 1usize..5,
    ) {
        let mut covered = vec![0u32; n];
        for node in 0..n_nodes {
            for local in 0..node_size {
                for i in two_tier_chunk_range(n, n_nodes, node, node_size, local) {
                    covered[i] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "coverage {:?}", covered);
    }

    /// The hierarchical allreduce equals the flat allreduce bit-for-bit
    /// for integer elements — arbitrary group sizes, node shapes (mixed
    /// sizes, singletons, one big node), buffer lengths (including 0 and
    /// 1), and cross-phase algorithms.
    #[test]
    fn hier_allreduce_equals_flat(
        p in 1usize..=7,
        shape in proptest::collection::vec(1usize..4, 1..5),
        len in 0usize..40,
        seed in any::<u64>(),
        algo in algo_strategy(),
    ) {
        let colors = Arc::new(colors_from_shape(p, &shape));
        let c = Arc::clone(&colors);
        let hier = run_group(p, move |comm| {
            let map = NodeMap::from_colors(&c);
            let mut buf = input_for(comm.rank(), len, seed);
            hier_allreduce(&comm, &map, &mut buf, ReduceOp::Sum, algo, 0)
                .expect("fault-free hier allreduce");
            buf
        });
        let flat = run_group(p, move |comm| {
            let mut buf = input_for(comm.rank(), len, seed);
            allreduce(&comm, &mut buf, ReduceOp::Sum, algo, 0)
                .expect("fault-free flat allreduce");
            buf
        });
        for (r, (got, want)) in hier.iter().zip(&flat).enumerate() {
            prop_assert_eq!(got, want, "rank {} hier != flat", r);
        }
    }

    /// Same guarantee through the fused path: bucketing under an arbitrary
    /// byte cap and routing every bucket through the two-level pipeline
    /// equals the flat fused allreduce bit-for-bit.
    #[test]
    fn hier_fused_allreduce_equals_flat_fused(
        p in 1usize..=6,
        shape in proptest::collection::vec(1usize..4, 1..4),
        sizes in proptest::collection::vec(0usize..32, 1..8),
        cap in 0usize..384,
        seed in any::<u64>(),
        algo in algo_strategy(),
    ) {
        let colors = Arc::new(colors_from_shape(p, &shape));
        let sizes = Arc::new(sizes);
        let (c, sz) = (Arc::clone(&colors), Arc::clone(&sizes));
        let hier = run_group(p, move |comm| {
            let map = NodeMap::from_colors(&c);
            let mut tensors = tensor_mix(comm.rank(), &sz, seed);
            hier_fused_allreduce(&comm, &map, &mut tensors, ReduceOp::Sum, algo, cap, 0)
                .expect("fault-free hier fused allreduce");
            tensors
        });
        let sz = Arc::clone(&sizes);
        let flat = run_group(p, move |comm| {
            let mut tensors = tensor_mix(comm.rank(), &sz, seed);
            fused_allreduce(&comm, &mut tensors, ReduceOp::Sum, algo, cap, 0)
                .expect("fault-free flat fused allreduce");
            tensors
        });
        for (r, (got, want)) in hier.iter().zip(&flat).enumerate() {
            prop_assert_eq!(got, want, "rank {} hier fused != flat fused", r);
        }
    }
}
