//! Property-based tests for the gradient-fusion pipeline: bucket planning
//! invariants, pack/unpack round-trips, and the end-to-end guarantee that
//! a fused allreduce is bit-for-bit equal to per-tensor allreduces in the
//! fault-free case — for arbitrary tensor mixes, byte caps, algorithms,
//! and group sizes.

use collectives::{
    allreduce, fused_allreduce, plan_buckets, AllreduceAlgo, CollError, FusionBuffer, PeerComm,
    ReduceOp,
};
use proptest::prelude::*;
use std::sync::Arc;
use transport::{Endpoint, Fabric, FaultInjector, FaultPlan, RankId, Topology};

/// Minimal PeerComm over the fabric (same shape as properties.rs).
struct PropComm {
    ep: Endpoint,
    group: Vec<RankId>,
    my_idx: usize,
}

impl PeerComm for PropComm {
    fn size(&self) -> usize {
        self.group.len()
    }
    fn rank(&self) -> usize {
        self.my_idx
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        self.ep
            .send(self.group[peer], tag, data)
            .map_err(|e| match e {
                transport::TransportError::PeerDead(_) => CollError::PeerFailed { peer },
                transport::TransportError::SelfDied => CollError::SelfDied,
                o => unreachable!("{o}"),
            })
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        self.ep.recv(self.group[peer], tag).map_err(|e| match e {
            transport::TransportError::PeerDead(_) => CollError::PeerFailed { peer },
            transport::TransportError::SelfDied => CollError::SelfDied,
            o => unreachable!("{o}"),
        })
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        self.ep.fault_point(name).map_err(|_| CollError::SelfDied)
    }
}

fn run_group<R: Send>(n: usize, f: impl Fn(PropComm) -> R + Send + Sync) -> Vec<R> {
    let fabric = Fabric::new(Topology::flat(), FaultInjector::new(FaultPlan::none()));
    let group = fabric.register_ranks(n);
    let f = &f;
    let group_ref = &group;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let fabric = Arc::clone(&fabric);
                s.spawn(move || {
                    let comm = PropComm {
                        ep: Endpoint::new(Arc::clone(&fabric), group_ref[i]),
                        group: group_ref.clone(),
                        my_idx: i,
                    };
                    let out = f(comm);
                    fabric.kill_rank(group_ref[i]);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Integer-valued tensor mix: reductions are exactly associative, so
/// fused-vs-unfused equality is exact regardless of how the algorithms
/// chunk the (differently shaped) buffers.
fn tensor_mix(rank: usize, sizes: &[usize], seed: u64) -> Vec<Vec<i64>> {
    sizes
        .iter()
        .enumerate()
        .map(|(t, &n)| {
            (0..n)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((rank * 1_000_003 + t * 977 + i) as u64);
                    (x % 2001) as i64 - 1000
                })
                .collect()
        })
        .collect()
}

fn algo_strategy() -> impl Strategy<Value = AllreduceAlgo> {
    prop_oneof![
        Just(AllreduceAlgo::Ring),
        Just(AllreduceAlgo::RecursiveDoubling),
        Just(AllreduceAlgo::Rabenseifner),
        Just(AllreduceAlgo::auto()),
        Just(AllreduceAlgo::auto_with(64)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bucket plan is a partition of the tensor sequence: contiguous,
    /// in order, covering every tensor exactly once, never splitting one.
    #[test]
    fn plan_is_an_ordered_partition(
        sizes in proptest::collection::vec(0usize..200, 0..24),
        cap in 0usize..1024,
    ) {
        let plan = plan_buckets(&sizes, 8, cap);
        let mut next = 0usize;
        for r in &plan {
            prop_assert_eq!(r.start, next, "buckets must be contiguous and ordered");
            prop_assert!(r.end > r.start, "empty bucket");
            next = r.end;
        }
        prop_assert_eq!(next, sizes.len(), "plan must cover every tensor");
    }

    /// Every bucket respects the byte cap unless it is a singleton whose
    /// lone tensor is itself over the cap (the oversized escape hatch) —
    /// and the plan is maximal: a bucket only closes because adding the
    /// next tensor would overflow the cap.
    #[test]
    fn caps_are_respected_except_oversized_singletons(
        sizes in proptest::collection::vec(0usize..200, 1..24),
        cap in 1usize..1024,
        elem_bytes in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        let plan = plan_buckets(&sizes, elem_bytes, cap);
        for (b, r) in plan.iter().enumerate() {
            let bytes: usize = sizes[r.clone()].iter().map(|&n| n * elem_bytes).sum();
            if r.len() > 1 {
                prop_assert!(
                    bytes <= cap,
                    "bucket {} holds {} bytes over cap {}", b, bytes, cap
                );
            }
            // Greedy maximality: the first tensor of the next bucket would
            // not have fit in this one.
            if b + 1 < plan.len() {
                let next_bytes = sizes[plan[b + 1].start] * elem_bytes;
                prop_assert!(
                    bytes + next_bytes > cap,
                    "bucket {} closed early: {} + {} <= {}", b, bytes, next_bytes, cap
                );
            }
        }
    }

    /// Packing tensors into a fusion buffer and unpacking returns the
    /// original tensors exactly, preserving order and never splitting or
    /// merging a tensor.
    #[test]
    fn pack_unpack_is_identity(
        sizes in proptest::collection::vec(0usize..64, 0..12),
        seed in any::<u64>(),
    ) {
        let tensors = tensor_mix(3, &sizes, seed);
        let views: Vec<&[i64]> = tensors.iter().map(|t| t.as_slice()).collect();
        let fused = FusionBuffer::pack(&views);
        prop_assert_eq!(fused.num_tensors(), tensors.len());
        prop_assert_eq!(fused.len(), sizes.iter().sum::<usize>());
        for (i, t) in tensors.iter().enumerate() {
            prop_assert_eq!(fused.tensor(i), t.as_slice(), "tensor {} mutated", i);
        }
        prop_assert_eq!(fused.unpack(), tensors);
    }

    /// The pipeline guarantee: pack → allreduce → unpack equals per-tensor
    /// allreduce bit-for-bit in the fault-free case, for every algorithm,
    /// any byte cap, any group size, and any tensor mix (including empty
    /// tensors and caps that force oversized singleton buckets).
    #[test]
    fn fused_allreduce_equals_per_tensor_allreduce(
        p in 1usize..=6,
        sizes in proptest::collection::vec(0usize..48, 1..10),
        cap in 0usize..512,
        seed in any::<u64>(),
        algo in algo_strategy(),
    ) {
        let sizes = Arc::new(sizes);
        let sz = Arc::clone(&sizes);
        let results = run_group(p, move |comm| {
            let mut fused = tensor_mix(comm.rank(), &sz, seed);
            fused_allreduce(&comm, &mut fused, ReduceOp::Sum, algo, cap, 0)
                .expect("fault-free fused allreduce");
            fused
        });
        let sz = Arc::clone(&sizes);
        let reference = run_group(p, move |comm| {
            let mut tensors = tensor_mix(comm.rank(), &sz, seed);
            for (t, buf) in tensors.iter_mut().enumerate() {
                let base = (t as u64) << 32; // disjoint tag windows per tensor
                allreduce(&comm, buf, ReduceOp::Sum, algo, base)
                    .expect("fault-free per-tensor allreduce");
            }
            tensors
        });
        for (r, (got, want)) in results.iter().zip(&reference).enumerate() {
            prop_assert_eq!(got, want, "rank {} fused != unfused", r);
        }
    }
}
