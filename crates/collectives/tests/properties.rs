//! Property-based tests: collective results must equal their sequential
//! specifications for arbitrary group sizes, payload lengths, and values —
//! and under arbitrary single-fault schedules every surviving rank either
//! succeeds with the exact result or reports a failure (never a wrong
//! value).

use collectives::{
    allgather, allreduce, binomial_bcast, binomial_reduce, AllgatherAlgo, AllreduceAlgo, CollError,
    PeerComm, ReduceOp,
};
use proptest::prelude::*;
use std::sync::Arc;
use transport::{Endpoint, Fabric, FaultInjector, FaultPlan, RankId, Topology};

/// Minimal PeerComm over the fabric for property runs.
struct PropComm {
    ep: Endpoint,
    group: Vec<RankId>,
    my_idx: usize,
}

impl PeerComm for PropComm {
    fn size(&self) -> usize {
        self.group.len()
    }
    fn rank(&self) -> usize {
        self.my_idx
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        self.ep
            .send(self.group[peer], tag, data)
            .map_err(|e| match e {
                transport::TransportError::PeerDead(_) => CollError::PeerFailed { peer },
                transport::TransportError::SelfDied => CollError::SelfDied,
                o => unreachable!("{o}"),
            })
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        self.ep.recv(self.group[peer], tag).map_err(|e| match e {
            transport::TransportError::PeerDead(_) => CollError::PeerFailed { peer },
            transport::TransportError::SelfDied => CollError::SelfDied,
            o => unreachable!("{o}"),
        })
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        self.ep.fault_point(name).map_err(|_| CollError::SelfDied)
    }
}

fn run_group<R: Send>(
    n: usize,
    plan: FaultPlan,
    f: impl Fn(PropComm) -> R + Send + Sync,
) -> Vec<R> {
    let fabric = Fabric::new(Topology::flat(), FaultInjector::new(plan));
    let group = fabric.register_ranks(n);
    let f = &f;
    let group_ref = &group;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let fabric = Arc::clone(&fabric);
                s.spawn(move || {
                    let comm = PropComm {
                        ep: Endpoint::new(Arc::clone(&fabric), group_ref[i]),
                        group: group_ref.clone(),
                        my_idx: i,
                    };
                    let out = f(comm);
                    fabric.kill_rank(group_ref[i]);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn inputs(p: usize, n: usize, seed: u64) -> Vec<Vec<i64>> {
    // Integer payloads make the reduction exactly associative, so equality
    // checks are exact regardless of algorithm-imposed ordering.
    (0..p)
        .map(|r| {
            (0..n)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((r * 1_000_003 + i) as u64);
                    (x % 2001) as i64 - 1000
                })
                .collect()
        })
        .collect()
}

fn algo_strategy() -> impl Strategy<Value = AllreduceAlgo> {
    prop_oneof![
        Just(AllreduceAlgo::Ring),
        Just(AllreduceAlgo::RecursiveDoubling),
        Just(AllreduceAlgo::Rabenseifner),
    ]
}

fn op_strategy() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![
        Just(ReduceOp::Sum),
        Just(ReduceOp::Max),
        Just(ReduceOp::Min),
        Just(ReduceOp::BitOr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allreduce == sequential element-wise fold, for every algorithm, any
    /// group size 1..=9 and any payload length 0..=67.
    #[test]
    fn allreduce_matches_sequential_fold(
        p in 1usize..=9,
        n in 0usize..=67,
        seed in any::<u64>(),
        algo in algo_strategy(),
        op in op_strategy(),
    ) {
        let ins = inputs(p, n, seed);
        let ins2 = ins.clone();
        let results = run_group(p, FaultPlan::none(), move |comm| {
            let mut buf = ins2[comm.rank()].clone();
            let buf_u: Vec<u64> = buf.iter().map(|&v| v as u64).collect();
            // BitOr needs unsigned; run both domains through the same path.
            if op == ReduceOp::BitOr {
                let mut b = buf_u;
                allreduce(&comm, &mut b, op, algo, 0).unwrap();
                return b.iter().map(|&v| v as i64).collect::<Vec<i64>>();
            }
            allreduce(&comm, &mut buf, op, algo, 0).unwrap();
            buf
        });
        // Sequential specification.
        let mut want: Vec<i64> = ins[0].clone();
        if op == ReduceOp::BitOr {
            let mut acc: Vec<u64> = ins[0].iter().map(|&v| v as u64).collect();
            for r in &ins[1..] {
                for (a, &b) in acc.iter_mut().zip(r) {
                    *a |= b as u64;
                }
            }
            want = acc.iter().map(|&v| v as i64).collect();
        } else {
            for r in &ins[1..] {
                for (a, &b) in want.iter_mut().zip(r) {
                    *a = match op {
                        ReduceOp::Sum => a.wrapping_add(b),
                        ReduceOp::Max => (*a).max(b),
                        ReduceOp::Min => (*a).min(b),
                        _ => unreachable!(),
                    };
                }
            }
        }
        for (r, got) in results.iter().enumerate() {
            prop_assert_eq!(got, &want, "rank {} (p={}, n={}, {:?}, {:?})", r, p, n, algo, op);
        }
    }

    /// Allgather returns every rank's block, in rank order, for both
    /// algorithms and arbitrary (small) block contents.
    #[test]
    fn allgather_collects_all_blocks(
        p in 1usize..=8,
        sizes in proptest::collection::vec(0usize..32, 1..=8),
        ring in any::<bool>(),
    ) {
        let sizes = Arc::new(sizes);
        let sz = Arc::clone(&sizes);
        let algo = if ring { AllgatherAlgo::Ring } else { AllgatherAlgo::Bruck };
        let results = run_group(p, FaultPlan::none(), move |comm| {
            let len = sz[comm.rank() % sz.len()];
            let mine: Vec<u8> = (0..len).map(|i| (comm.rank() * 7 + i) as u8).collect();
            allgather(&comm, &mine, algo, 0).unwrap()
        });
        for got in results {
            prop_assert_eq!(got.len(), p);
            for (r, block) in got.iter().enumerate() {
                let len = sizes[r % sizes.len()];
                let want: Vec<u8> = (0..len).map(|i| (r * 7 + i) as u8).collect();
                prop_assert_eq!(block, &want);
            }
        }
    }

    /// Broadcast delivers the root's exact bytes to everyone, for any root.
    #[test]
    fn bcast_delivers_root_payload(
        p in 1usize..=9,
        root_pick in any::<usize>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let root = root_pick % p;
        let payload = Arc::new(payload);
        let pl = Arc::clone(&payload);
        let results = run_group(p, FaultPlan::none(), move |comm| {
            let mut buf = if comm.rank() == root { pl.to_vec() } else { vec![] };
            binomial_bcast(&comm, root, &mut buf, 0).unwrap();
            buf
        });
        for got in results {
            prop_assert_eq!(&got, &*payload);
        }
    }

    /// Reduce: the root holds the exact sum for any root choice.
    #[test]
    fn reduce_sums_at_root(p in 1usize..=8, root_pick in any::<usize>(), n in 1usize..=32) {
        let root = root_pick % p;
        let results = run_group(p, FaultPlan::none(), move |comm| {
            let mut buf: Vec<i64> = (0..n).map(|i| (comm.rank() + i) as i64).collect();
            binomial_reduce(&comm, root, &mut buf, ReduceOp::Sum, 0).unwrap();
            buf
        });
        let want: Vec<i64> = (0..n)
            .map(|i| (0..p).map(|r| (r + i) as i64).sum())
            .collect();
        prop_assert_eq!(&results[root], &want);
    }

    /// Single-fault safety: kill one arbitrary rank at one arbitrary
    /// protocol step. Every surviving rank either gets the *correct full
    /// result* (it finished before the failure mattered) or an error —
    /// never silently wrong data of the wrong shape.
    #[test]
    fn fault_injection_never_yields_corrupt_results(
        p in 2usize..=7,
        n in 1usize..=32,
        victim_pick in any::<usize>(),
        step in 1u64..=12,
        algo in algo_strategy(),
    ) {
        let victim = victim_pick % p;
        let ins = inputs(p, n, 42);
        let ins2 = ins.clone();
        let plan = FaultPlan::none().kill_at_point(RankId(victim), "allreduce.step", step);
        let results = run_group(p, plan, move |comm| {
            let mut buf = ins2[comm.rank()].clone();
            allreduce(&comm, &mut buf, ReduceOp::Sum, algo, 0).map(|()| buf)
        });
        let mut want = ins[0].clone();
        for r in &ins[1..] {
            for (a, &b) in want.iter_mut().zip(r) {
                *a += b;
            }
        }
        for (r, res) in results.iter().enumerate() {
            match res {
                Ok(buf) if r != victim => prop_assert_eq!(buf, &want, "rank {}", r),
                Ok(buf) => prop_assert_eq!(buf, &want, "victim survived (step too late)"),
                Err(CollError::SelfDied) => prop_assert_eq!(r, victim),
                Err(CollError::PeerFailed { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {:?}", e),
            }
        }
    }
}
