//! A TCP-served rendezvous store for multi-process launches.
//!
//! Horovod's elastic mode runs a rendezvous *server* in the driver process;
//! workers talk to it over the network. [`StoreServer`] is that server: it
//! wraps a [`KvStore`] and serves the three [`Store`] operations over a
//! trivial length-prefixed request/response protocol. [`NetStore`] is the
//! worker-side client; it implements [`Store`], so the unchanged
//! [`crate::rendezvous`] protocol runs against it — connection failures
//! surface as [`StoreUnavailable`] and are healed by the protocol's own
//! retry-with-backoff.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! request:  [op u8] [klen u32] [key bytes] ([vlen u32] [value bytes] for SET)
//! response: SET   -> [0u8]
//!           COUNT -> [count u64]
//!           SCAN  -> [n u64] then n × ([klen u32][key][vlen u32][value])
//! ```
//!
//! One connection per request: rendezvous traffic is low-rate polling, and
//! per-request connections keep the client free of connection-state
//! recovery logic (a half-dead pooled connection would need its own
//! suspicion machinery).

use crate::store::{KvStore, Store, StoreUnavailable};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const OP_SET: u8 = 1;
const OP_COUNT: u8 = 2;
const OP_SCAN: u8 = 3;

/// Keys and values larger than this are rejected (a corrupt length prefix
/// must not allocate gigabytes).
const MAX_BLOB: u32 = 16 * 1024 * 1024;

/// How long a single request/response exchange may take before the client
/// declares the store transiently unavailable.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The driver-side rendezvous server: a [`KvStore`] behind a TCP accept
/// loop. Drop (or [`StoreServer::shutdown`]) stops the loop.
pub struct StoreServer {
    store: Arc<KvStore>,
    addr: String,
    stopping: Arc<AtomicBool>,
}

impl StoreServer {
    /// Bind a loopback listener and start serving `store`.
    pub fn spawn(store: Arc<KvStore>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let stopping = Arc::new(AtomicBool::new(false));
        let accept_store = Arc::clone(&store);
        let accept_stop = Arc::clone(&stopping);
        std::thread::Builder::new()
            .name("store-server".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let store = Arc::clone(&accept_store);
                    std::thread::Builder::new()
                        .name("store-serve".into())
                        .spawn(move || {
                            let _ = serve_one(&store, conn);
                        })
                        .expect("spawn store connection thread");
                }
            })
            .expect("spawn store accept thread");
        Ok(Self {
            store,
            addr,
            stopping,
        })
    }

    /// The address workers should dial (`host:port`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The backing store (the driver can inspect keys directly).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// Stop accepting connections.
    pub fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a dummy connection so it sees the flag.
        let _ = TcpStream::connect(&self.addr);
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn read_exact_timeout(conn: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    conn.read_exact(buf)
}

fn read_blob(conn: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    read_exact_timeout(conn, &mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_BLOB {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized blob",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    read_exact_timeout(conn, &mut buf)?;
    Ok(buf)
}

fn write_blob(out: &mut Vec<u8>, blob: &[u8]) {
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(blob);
}

/// Serve one request on a fresh connection, then close it.
fn serve_one(store: &KvStore, mut conn: TcpStream) -> std::io::Result<()> {
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut op = [0u8; 1];
    read_exact_timeout(&mut conn, &mut op)?;
    let key = read_blob(&mut conn)?;
    let key = String::from_utf8(key)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 key"))?;
    match op[0] {
        OP_SET => {
            let value = read_blob(&mut conn)?;
            store.set(&key, value);
            conn.write_all(&[0u8])?;
        }
        OP_COUNT => {
            let n = store.count_prefix(&key) as u64;
            conn.write_all(&n.to_le_bytes())?;
        }
        OP_SCAN => {
            let pairs = store.scan_prefix(&key);
            let mut out = (pairs.len() as u64).to_le_bytes().to_vec();
            for (k, v) in pairs {
                write_blob(&mut out, k.as_bytes());
                write_blob(&mut out, &v);
            }
            conn.write_all(&out)?;
        }
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown store op {other}"),
            ));
        }
    }
    Ok(())
}

/// Worker-side client of a [`StoreServer`]. Every [`Store`] operation is one
/// connect/request/response exchange, retried in-client with exponential
/// backoff and deterministic jitter before an I/O failure is reported as
/// [`StoreUnavailable`] for the caller's own (coarser) retry loop to absorb.
#[derive(Clone, Debug)]
pub struct NetStore {
    addr: String,
    /// Extra in-client attempts after the first failure.
    retries: u32,
    /// First backoff sleep; doubles per attempt.
    backoff_base: Duration,
}

/// Deterministic jitter in microseconds for retry `attempt` of the request
/// touching `key`: FNV-1a over the key, splitmix64-finalised with the
/// attempt index. No wall-clock entropy, so retry schedules reproduce.
fn jitter_us(key: &str, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    let mut z = h
        .wrapping_add(attempt as u64)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 500
}

impl NetStore {
    /// Extra attempts after a first failed exchange (elastic workers poll
    /// the store from recovery paths, so a blip must not surface).
    const DEFAULT_RETRIES: u32 = 3;

    /// A client for the server at `addr` (`host:port`). No connection is
    /// made until the first operation.
    pub fn connect(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            retries: Self::DEFAULT_RETRIES,
            backoff_base: Duration::from_millis(1),
        }
    }

    /// Override the in-client retry budget (`retries` extra attempts,
    /// backoff starting at `backoff_base` and doubling per attempt).
    pub fn with_retries(mut self, retries: u32, backoff_base: Duration) -> Self {
        self.retries = retries;
        self.backoff_base = backoff_base;
        self
    }

    /// Run one request with the retry budget. Each failed attempt bumps the
    /// `gloo.netstore.retries` counter and sleeps backoff + jitter.
    fn with_retry<T>(
        &self,
        key: &str,
        op: impl Fn() -> std::io::Result<T>,
    ) -> Result<T, StoreUnavailable> {
        let mut backoff = self.backoff_base;
        for attempt in 0..=self.retries {
            match op() {
                Ok(v) => return Ok(v),
                Err(_) if attempt < self.retries => {
                    telemetry::counter("gloo.netstore.retries").incr();
                    std::thread::sleep(backoff + Duration::from_micros(jitter_us(key, attempt)));
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                Err(_) => break,
            }
        }
        Err(StoreUnavailable)
    }

    fn request(&self, op: u8, key: &str, value: Option<&[u8]>) -> std::io::Result<TcpStream> {
        let mut conn = TcpStream::connect(&self.addr)?;
        conn.set_nodelay(true)?;
        conn.set_read_timeout(Some(IO_TIMEOUT))?;
        conn.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut req = vec![op];
        write_blob(&mut req, key.as_bytes());
        if let Some(v) = value {
            write_blob(&mut req, v);
        }
        conn.write_all(&req)?;
        Ok(conn)
    }
}

impl Store for NetStore {
    fn try_set(&self, key: &str, value: Vec<u8>) -> Result<(), StoreUnavailable> {
        // Idempotent (last-writer-wins overwrite), so a retry after a lost
        // ack is safe.
        self.with_retry(key, || {
            let mut conn = self.request(OP_SET, key, Some(&value))?;
            let mut ack = [0u8; 1];
            conn.read_exact(&mut ack)?;
            Ok(())
        })
    }

    fn try_count_prefix(&self, prefix: &str) -> Result<usize, StoreUnavailable> {
        self.with_retry(prefix, || {
            let mut conn = self.request(OP_COUNT, prefix, None)?;
            let mut n = [0u8; 8];
            conn.read_exact(&mut n)?;
            Ok(u64::from_le_bytes(n) as usize)
        })
    }

    fn try_scan_prefix(&self, prefix: &str) -> Result<Vec<(String, Vec<u8>)>, StoreUnavailable> {
        self.with_retry(prefix, || {
            let mut conn = self.request(OP_SCAN, prefix, None)?;
            let mut n = [0u8; 8];
            conn.read_exact(&mut n)?;
            let n = u64::from_le_bytes(n);
            let mut out = Vec::with_capacity(n.min(4096) as usize);
            for _ in 0..n {
                let key = read_blob(&mut conn)?;
                let key = String::from_utf8(key).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 key")
                })?;
                let value = read_blob(&mut conn)?;
                out.push((key, value));
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rendezvous::{rendezvous, RendezvousConfig};
    use transport::{RankId, Topology};

    #[test]
    fn net_roundtrip_set_count_scan() {
        let server = StoreServer::spawn(KvStore::shared()).unwrap();
        let client = NetStore::connect(server.addr());
        client.try_set("r/0", vec![1, 2]).unwrap();
        client.try_set("r/1", vec![3]).unwrap();
        client.try_set("other", vec![9]).unwrap();
        assert_eq!(client.try_count_prefix("r/").unwrap(), 2);
        let scan = client.try_scan_prefix("r/").unwrap();
        assert_eq!(
            scan,
            vec![
                ("r/0".to_string(), vec![1, 2]),
                ("r/1".to_string(), vec![3])
            ]
        );
        // The server sees the same state directly.
        assert_eq!(server.store().get("other"), Some(vec![9]));
    }

    #[test]
    fn dead_server_retries_with_backoff_then_reports_unavailable() {
        let server = StoreServer::spawn(KvStore::shared()).unwrap();
        let addr = server.addr().to_string();
        drop(server);
        std::thread::sleep(Duration::from_millis(20));
        let before = telemetry::counter("gloo.netstore.retries").get();
        let client = NetStore::connect(addr).with_retries(2, Duration::from_millis(1));
        assert!(client.try_count_prefix("x").is_err());
        let retried = telemetry::counter("gloo.netstore.retries").get() - before;
        assert!(
            retried >= 2,
            "expected at least the configured 2 retries, saw {retried}"
        );
    }

    #[test]
    fn dead_server_reports_unavailable() {
        let server = StoreServer::spawn(KvStore::shared()).unwrap();
        let addr = server.addr().to_string();
        drop(server);
        // Give the listener a moment to actually close.
        std::thread::sleep(Duration::from_millis(20));
        let client = NetStore::connect(addr);
        // Either refused outright or accepted-then-dropped by the dying
        // accept loop; both must surface as StoreUnavailable eventually.
        let mut saw_failure = false;
        for _ in 0..5 {
            if client.try_count_prefix("x").is_err() {
                saw_failure = true;
                break;
            }
        }
        assert!(saw_failure, "dead server never reported unavailable");
    }

    #[test]
    fn rendezvous_runs_over_the_network_store() {
        let server = StoreServer::spawn(KvStore::shared()).unwrap();
        let cfg = RendezvousConfig {
            run_id: "net".into(),
            epoch: 0,
            expected: 3,
            timeout: Duration::from_secs(10),
        };
        let topo = Topology::flat();
        let reports: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|r| {
                    let client = NetStore::connect(server.addr());
                    let cfg = cfg.clone();
                    s.spawn(move || rendezvous(&client, &cfg, RankId(r), topo).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, rep) in reports.iter().enumerate() {
            assert_eq!(rep.members, vec![RankId(0), RankId(1), RankId(2)]);
            assert_eq!(rep.my_rank, i);
        }
    }
}
