//! Gloo-style collective context: fixed membership, full-mesh connection
//! setup, poison-on-failure.

use crate::error::GlooError;
use collectives::{
    allgather, allreduce, binomial_bcast, dissemination_barrier, hier_allreduce, AllgatherAlgo,
    AllreduceAlgo, CollError, Elem, NodeMap, PeerComm, ReduceOp,
};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use transport::{Endpoint, RankId, TransportError};

/// Traffic/operation counters for one context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Pairwise connections set up at context creation.
    pub connections: u64,
    /// Collectives completed successfully.
    pub collectives: u64,
}

/// A fixed-membership collective context.
///
/// Creation performs a full-mesh pairwise handshake, mirroring Gloo's
/// context initialization (every pair of ranks establishes a connection) —
/// this is precisely the "reinitializing Gloo" cost segment of paper Fig. 4.
/// Any failure poisons the context permanently; there is no revoke/shrink.
pub struct Context {
    ep: Endpoint,
    group: Vec<RankId>,
    my_idx: usize,
    ctx_id: u64,
    seq: Cell<u64>,
    poisoned: Arc<AtomicBool>,
    connections: u64,
    collectives: Cell<u64>,
    /// Per-receive timeout: Gloo's failure "detector". A worker blocked on
    /// a peer that silently left (poisoned context, went to re-rendezvous)
    /// only discovers the problem when this expires — a real and
    /// paper-relevant component of the baseline's exception-catch latency.
    op_timeout: Option<Duration>,
}

/// Tag layout: `[ctx_id: 23][seq: 21][offset: 20]`, with bit 63 marking
/// connection handshakes. Context ids come from the rendezvous epoch, which
/// the elastic driver bumps on every reconfiguration.
fn tag_base(ctx_id: u64, seq: u64) -> u64 {
    assert!(ctx_id < 1 << 23, "context id space exhausted");
    assert!(seq < 1 << 20, "context sequence space exhausted");
    (ctx_id << 40) | (seq << 20)
}

const CONNECT_BIT: u64 = 1 << 63;

impl Context {
    /// Build the context: store membership and run the full-mesh
    /// connection handshake. `ctx_id` must be unique per (re)configuration
    /// (use the rendezvous epoch).
    pub fn connect(
        ep: Endpoint,
        ctx_id: u64,
        group: Vec<RankId>,
        my_idx: usize,
    ) -> Result<Self, GlooError> {
        assert_eq!(group[my_idx], ep.rank(), "my_idx must locate self in group");
        let ctx = Self {
            ep,
            group,
            my_idx,
            ctx_id,
            seq: Cell::new(0),
            poisoned: Arc::new(AtomicBool::new(false)),
            connections: 0,
            collectives: Cell::new(0),
            op_timeout: None,
        };
        let mut ctx = ctx;
        telemetry::counter("gloo.context.connects").incr();
        let _span = telemetry::span("gloo.context.connect_ns");
        // Full mesh: exchange a SYN with every peer and wait for theirs.
        let tag = CONNECT_BIT | tag_base(ctx.ctx_id, 0);
        for peer in 0..ctx.group.len() {
            if peer == ctx.my_idx {
                continue;
            }
            ctx.ep
                .send(ctx.group[peer], tag, &[])
                .map_err(|e| ctx.map_transport(e))?;
        }
        for peer in 0..ctx.group.len() {
            if peer == ctx.my_idx {
                continue;
            }
            ctx.ep
                .recv(ctx.group[peer], tag)
                .map_err(|e| ctx.map_transport(e))?;
            ctx.connections += 1;
        }
        Ok(ctx)
    }

    /// Dense rank within the context.
    pub fn rank(&self) -> usize {
        self.my_idx
    }

    /// Context size.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Member list.
    pub fn group(&self) -> &[RankId] {
        &self.group
    }

    /// Has a failure poisoned this context?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Set the per-receive timeout (Gloo's `GLOO_TIMEOUT` analogue). A
    /// receive exceeding it is treated as a suspected peer failure and
    /// poisons the context.
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = Some(timeout);
        self
    }

    /// Operation counters.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            connections: self.connections,
            collectives: self.collectives.get(),
        }
    }

    fn map_transport(&self, e: TransportError) -> GlooError {
        telemetry::counter("gloo.context.poisonings").incr();
        self.poisoned.store(true, Ordering::SeqCst);
        match e {
            TransportError::PeerDead(g) => GlooError::PeerFailure { global: g },
            TransportError::SelfDied => GlooError::SelfDied,
            other => unreachable!("unexpected transport error: {other}"),
        }
    }

    fn map_coll(&self, e: CollError) -> GlooError {
        telemetry::counter("gloo.context.poisonings").incr();
        self.poisoned.store(true, Ordering::SeqCst);
        match e {
            CollError::PeerFailed { peer } => GlooError::PeerFailure {
                global: self.group.get(peer).copied().unwrap_or(RankId(usize::MAX)),
            },
            CollError::SelfDied => GlooError::SelfDied,
            CollError::Revoked | CollError::Aborted => GlooError::Poisoned,
        }
    }

    fn begin_op(&self) -> Result<u64, GlooError> {
        if self.is_poisoned() {
            return Err(GlooError::Poisoned);
        }
        let s = self.seq.get();
        self.seq.set(s + 1);
        Ok(tag_base(self.ctx_id, s))
    }

    /// In-place allreduce. On failure the context is poisoned for good.
    pub fn allreduce<E: Elem>(
        &self,
        buf: &mut [E],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> Result<(), GlooError> {
        let base = self.begin_op()?;
        allreduce(&GlooAdapter { ctx: self }, buf, op, algo, base).map_err(|e| self.map_coll(e))?;
        self.collectives.set(self.collectives.get() + 1);
        Ok(())
    }

    /// In-place hierarchical (two-level) allreduce: intra-node reduce onto
    /// each node leader, flat `algo` exchange among leaders, intra-node
    /// broadcast back. `map` must describe this context's dense ranks
    /// (size match is asserted); the backward engine rebuilds it at every
    /// rendezvous epoch. Runs on this flat context through subgroup index
    /// views, so any failure poisons the whole context exactly like a flat
    /// collective — the baseline's all-or-nothing semantics are preserved.
    pub fn hier_allreduce<E: Elem>(
        &self,
        map: &NodeMap,
        buf: &mut [E],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> Result<(), GlooError> {
        let base = self.begin_op()?;
        hier_allreduce(&GlooAdapter { ctx: self }, map, buf, op, algo, base)
            .map_err(|e| self.map_coll(e))?;
        self.collectives.set(self.collectives.get() + 1);
        Ok(())
    }

    /// Broadcast from dense rank `root`.
    pub fn bcast(&self, root: usize, buf: &mut Vec<u8>) -> Result<(), GlooError> {
        let base = self.begin_op()?;
        binomial_bcast(&GlooAdapter { ctx: self }, root, buf, base)
            .map_err(|e| self.map_coll(e))?;
        self.collectives.set(self.collectives.get() + 1);
        Ok(())
    }

    /// Allgather byte blocks.
    pub fn allgather(&self, mine: &[u8], algo: AllgatherAlgo) -> Result<Vec<Vec<u8>>, GlooError> {
        let base = self.begin_op()?;
        let out = allgather(&GlooAdapter { ctx: self }, mine, algo, base)
            .map_err(|e| self.map_coll(e))?;
        self.collectives.set(self.collectives.get() + 1);
        Ok(out)
    }

    /// Barrier.
    pub fn barrier(&self) -> Result<(), GlooError> {
        let base = self.begin_op()?;
        dissemination_barrier(&GlooAdapter { ctx: self }, base).map_err(|e| self.map_coll(e))?;
        self.collectives.set(self.collectives.get() + 1);
        Ok(())
    }
}

struct GlooAdapter<'a> {
    ctx: &'a Context,
}

impl PeerComm for GlooAdapter<'_> {
    fn size(&self) -> usize {
        self.ctx.group.len()
    }
    fn rank(&self) -> usize {
        self.ctx.my_idx
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        self.ctx
            .ep
            .send(self.ctx.group[peer], tag, data)
            .map_err(|e| match e {
                TransportError::PeerDead(_) => CollError::PeerFailed { peer },
                other => map_transport_to_coll(other),
            })
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        let r = match self.ctx.op_timeout {
            Some(t) => self.ctx.ep.recv_timeout(self.ctx.group[peer], tag, t),
            None => self.ctx.ep.recv(self.ctx.group[peer], tag),
        };
        r.map_err(|e| match e {
            // A timed-out receive is a *suspected* failure of the awaited
            // peer — exactly how Gloo turns silence into an exception.
            TransportError::Timeout => CollError::PeerFailed { peer },
            other => map_transport_to_coll(other),
        })
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        self.ctx.ep.fault_point(name).map_err(map_transport_to_coll)
    }
}

fn map_transport_to_coll(e: TransportError) -> CollError {
    match e {
        TransportError::PeerDead(_) => CollError::PeerFailed { peer: usize::MAX },
        TransportError::SelfDied => CollError::SelfDied,
        other => unreachable!("unexpected transport error: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use transport::{Fabric, FaultInjector, FaultPlan, Topology};

    fn run_ctx<R, F>(n: usize, plan: FaultPlan, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Result<Context, GlooError>) -> R + Send + Sync,
    {
        let fabric = Fabric::new(Topology::flat(), FaultInjector::new(plan));
        let group = fabric.register_ranks(n);
        let f = &f;
        let group_ref = &group;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let fabric = Arc::clone(&fabric);
                    s.spawn(move || {
                        let ep = Endpoint::new(Arc::clone(&fabric), group_ref[i]);
                        let out = f(Context::connect(ep, 1, group_ref.clone(), i));
                        // Model process exit so peers blocked on this rank
                        // observe PeerDead instead of hanging.
                        fabric.kill_rank(group_ref[i]);
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn connect_builds_full_mesh() {
        let results = run_ctx(4, FaultPlan::none(), |ctx| ctx.unwrap().stats().connections);
        for c in results {
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn hier_allreduce_matches_flat_for_integers() {
        // 6 ranks as 3 nodes × 2: exact values, so hier == flat bitwise.
        let results = run_ctx(6, FaultPlan::none(), |ctx| {
            let ctx = ctx.unwrap();
            let colors: Vec<u64> = (0..6).map(|r| (r / 2) as u64).collect();
            let map = NodeMap::from_colors(&colors);
            let mut hier: Vec<f32> = (0..9).map(|i| (ctx.rank() * 7 + i) as f32).collect();
            ctx.hier_allreduce(&map, &mut hier, ReduceOp::Sum, AllreduceAlgo::Ring)
                .unwrap();
            let mut flat: Vec<f32> = (0..9).map(|i| (ctx.rank() * 7 + i) as f32).collect();
            ctx.allreduce(&mut flat, ReduceOp::Sum, AllreduceAlgo::Ring)
                .unwrap();
            (hier, flat)
        });
        for (hier, flat) in results {
            assert_eq!(hier, flat);
        }
    }

    #[test]
    fn allreduce_works_when_healthy() {
        let results = run_ctx(5, FaultPlan::none(), |ctx| {
            let ctx = ctx.unwrap();
            let mut buf = vec![ctx.rank() as f32; 8];
            ctx.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring)
                .unwrap();
            buf[0]
        });
        for v in results {
            assert_eq!(v, 10.0);
        }
    }

    #[test]
    fn failure_poisons_context_permanently() {
        let plan = FaultPlan::none().kill_at_point(RankId(2), "allreduce.step", 2);
        let results = run_ctx(4, plan, |ctx| {
            let ctx = ctx.unwrap();
            let mut buf = vec![1.0f32; 32];
            let first = ctx.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring);
            if first.is_ok() {
                // Raced ahead; the next op must observe the dead peer.
                let r = ctx.barrier();
                (first.is_ok(), r.is_err(), ctx.is_poisoned())
            } else {
                // Once poisoned, everything fails fast with Poisoned.
                let again = ctx.barrier();
                (false, again == Err(GlooError::Poisoned), ctx.is_poisoned())
            }
        });
        let mut poisoned_count = 0;
        for (i, (_, followup_failed, poisoned)) in results.iter().enumerate() {
            if i == 2 {
                continue; // the victim
            }
            assert!(*followup_failed, "rank {i}");
            if *poisoned {
                poisoned_count += 1;
            }
        }
        assert!(poisoned_count >= 2);
    }

    #[test]
    fn connect_fails_against_dead_peer() {
        let fabric = Fabric::without_faults(Topology::flat());
        let group = fabric.register_ranks(3);
        fabric.kill_rank(RankId(1));
        let group2 = group.clone();
        let fabric2 = Arc::clone(&fabric);
        let t = std::thread::spawn(move || {
            let ep = Endpoint::new(fabric2, group2[0]);
            Context::connect(ep, 7, group2.clone(), 0).err()
        });
        assert_eq!(
            t.join().unwrap(),
            Some(GlooError::PeerFailure { global: RankId(1) })
        );
    }

    #[test]
    fn bcast_and_allgather() {
        let results = run_ctx(4, FaultPlan::none(), |ctx| {
            let ctx = ctx.unwrap();
            let mut b = if ctx.rank() == 1 { vec![42u8] } else { vec![] };
            ctx.bcast(1, &mut b).unwrap();
            let blocks = ctx
                .allgather(&[ctx.rank() as u8], AllgatherAlgo::Ring)
                .unwrap();
            (b, blocks)
        });
        for (b, blocks) in results {
            assert_eq!(b, vec![42]);
            assert_eq!(blocks, vec![vec![0], vec![1], vec![2], vec![3]]);
        }
    }
}
