//! The rendezvous key-value store.
//!
//! Horovod's elastic mode coordinates workers through a KV store (Gloo's
//! `Store` interface / Horovod's rendezvous server). Workers publish their
//! address under a per-epoch key and poll for the others. We reproduce the
//! interface and count every round trip, because rendezvous traffic is the
//! dominant term in the baseline's recovery cost (paper Fig. 4).

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters of store traffic (one "round trip" per `set`/`get`/`wait`
/// completion — the cost model charges an RTT each).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvStoreStats {
    /// Completed `set` operations.
    pub sets: u64,
    /// Completed `get` operations (hits and misses).
    pub gets: u64,
    /// Completed `wait` operations.
    pub waits: u64,
}

/// A transient store failure (the rendezvous server dropped the request).
/// Callers are expected to retry with backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreUnavailable;

impl std::fmt::Display for StoreUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kv store transiently unavailable")
    }
}

impl std::error::Error for StoreUnavailable {}

/// Seeded transient-failure injection for the store's fallible operations.
#[derive(Clone, Copy, Debug)]
pub struct StoreFaults {
    /// Per-operation probability of a transient failure.
    pub fail_rate: f64,
    /// RNG seed (deterministic schedules for reproducible tests).
    pub seed: u64,
    /// After this many consecutive injected failures the next operation is
    /// forced to succeed, bounding retry storms so liveness is provable.
    pub max_consecutive: u32,
}

impl StoreFaults {
    /// Fail `fail_rate` of fallible operations with the given seed.
    pub fn rate(fail_rate: f64, seed: u64) -> Self {
        Self {
            fail_rate,
            seed,
            max_consecutive: 8,
        }
    }
}

struct FaultState {
    cfg: StoreFaults,
    rng: u64,
    consecutive: u32,
}

impl FaultState {
    fn next_f64(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The store surface the rendezvous protocol needs, abstracted so the same
/// protocol runs against the in-process [`KvStore`] (single-process
/// scenarios, tests) or a network client like [`crate::NetStore`]
/// (multi-process launches). All three operations are fallible: a transient
/// failure maps to [`StoreUnavailable`] and callers retry with backoff.
pub trait Store: Send + Sync {
    /// Publish `value` under `key` (overwrites); may transiently fail.
    fn try_set(&self, key: &str, value: Vec<u8>) -> Result<(), StoreUnavailable>;
    /// Number of keys under `prefix`; may transiently fail.
    fn try_count_prefix(&self, prefix: &str) -> Result<usize, StoreUnavailable>;
    /// Sorted `(key, value)` pairs under `prefix`; may transiently fail.
    fn try_scan_prefix(&self, prefix: &str) -> Result<Vec<(String, Vec<u8>)>, StoreUnavailable>;
}

impl Store for KvStore {
    fn try_set(&self, key: &str, value: Vec<u8>) -> Result<(), StoreUnavailable> {
        KvStore::try_set(self, key, value)
    }
    fn try_count_prefix(&self, prefix: &str) -> Result<usize, StoreUnavailable> {
        KvStore::try_count_prefix(self, prefix)
    }
    fn try_scan_prefix(&self, prefix: &str) -> Result<Vec<(String, Vec<u8>)>, StoreUnavailable> {
        KvStore::try_scan_prefix(self, prefix)
    }
}

/// `Arc<impl Store>` is itself a store, so existing call sites holding
/// shared handles keep working with the generic rendezvous.
impl<S: Store + ?Sized> Store for Arc<S> {
    fn try_set(&self, key: &str, value: Vec<u8>) -> Result<(), StoreUnavailable> {
        (**self).try_set(key, value)
    }
    fn try_count_prefix(&self, prefix: &str) -> Result<usize, StoreUnavailable> {
        (**self).try_count_prefix(prefix)
    }
    fn try_scan_prefix(&self, prefix: &str) -> Result<Vec<(String, Vec<u8>)>, StoreUnavailable> {
        (**self).try_scan_prefix(prefix)
    }
}

/// A shared in-memory KV store with blocking waits.
pub struct KvStore {
    map: Mutex<HashMap<String, Vec<u8>>>,
    cv: Condvar,
    faults: Mutex<Option<FaultState>>,
    sets: AtomicU64,
    gets: AtomicU64,
    waits: AtomicU64,
    denied: AtomicU64,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            faults: Mutex::new(None),
            sets: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Shared handle constructor.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// A shared store whose fallible (`try_*`) operations transiently fail
    /// according to `faults`.
    pub fn shared_flaky(faults: StoreFaults) -> Arc<Self> {
        let s = Self::new();
        *s.faults.lock() = Some(FaultState {
            cfg: faults,
            rng: faults.seed,
            consecutive: 0,
        });
        Arc::new(s)
    }

    /// Draw one transient-failure decision.
    fn transient_failure(&self) -> bool {
        let mut g = self.faults.lock();
        let Some(st) = g.as_mut() else {
            return false;
        };
        if st.consecutive >= st.cfg.max_consecutive {
            st.consecutive = 0;
            return false;
        }
        if st.next_f64() < st.cfg.fail_rate {
            st.consecutive += 1;
            drop(g);
            self.denied.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("gloo.store.denied").incr();
            true
        } else {
            st.consecutive = 0;
            false
        }
    }

    /// Fallible `set`: may return [`StoreUnavailable`] under injected
    /// transient faults. Retry with backoff.
    pub fn try_set(&self, key: &str, value: Vec<u8>) -> Result<(), StoreUnavailable> {
        if self.transient_failure() {
            return Err(StoreUnavailable);
        }
        self.set(key, value);
        Ok(())
    }

    /// Fallible [`KvStore::count_prefix`].
    pub fn try_count_prefix(&self, prefix: &str) -> Result<usize, StoreUnavailable> {
        if self.transient_failure() {
            return Err(StoreUnavailable);
        }
        Ok(self.count_prefix(prefix))
    }

    /// Fallible [`KvStore::scan_prefix`].
    pub fn try_scan_prefix(
        &self,
        prefix: &str,
    ) -> Result<Vec<(String, Vec<u8>)>, StoreUnavailable> {
        if self.transient_failure() {
            return Err(StoreUnavailable);
        }
        Ok(self.scan_prefix(prefix))
    }

    /// Publish `value` under `key` (overwrites).
    pub fn set(&self, key: &str, value: Vec<u8>) {
        self.sets.fetch_add(1, Ordering::Relaxed);
        self.map.lock().insert(key.to_string(), value);
        self.cv.notify_all();
    }

    /// Read `key` if present.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.map.lock().get(key).cloned()
    }

    /// Block until `key` exists, up to `timeout`.
    pub fn wait(&self, key: &str, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        let mut map = self.map.lock();
        loop {
            if let Some(v) = map.get(key) {
                self.waits.fetch_add(1, Ordering::Relaxed);
                return Some(v.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                self.waits.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            self.cv.wait_for(&mut map, deadline - now);
        }
    }

    /// Number of keys with the given prefix (rendezvous "how many arrived").
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .count()
    }

    /// All `(key, value)` pairs under a prefix, sorted by key.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, Vec<u8>)> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let map = self.map.lock();
        let mut out: Vec<(String, Vec<u8>)> = map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drop all keys under a prefix (cleanup of a finished epoch).
    pub fn clear_prefix(&self, prefix: &str) -> usize {
        let mut map = self.map.lock();
        let before = map.len();
        map.retain(|k, _| !k.starts_with(prefix));
        before - map.len()
    }

    /// Traffic counters.
    pub fn stats(&self) -> KvStoreStats {
        KvStoreStats {
            sets: self.sets.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
        }
    }

    /// Transient failures injected so far.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let s = KvStore::new();
        assert_eq!(s.get("a"), None);
        s.set("a", vec![1, 2]);
        assert_eq!(s.get("a"), Some(vec![1, 2]));
    }

    #[test]
    fn wait_blocks_until_set() {
        let s = KvStore::shared();
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.wait("k", Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(20));
        s.set("k", vec![9]);
        assert_eq!(t.join().unwrap(), Some(vec![9]));
    }

    #[test]
    fn wait_times_out() {
        let s = KvStore::new();
        assert_eq!(s.wait("nope", Duration::from_millis(20)), None);
    }

    #[test]
    fn prefix_operations() {
        let s = KvStore::new();
        s.set("rdv/0/rank/1", vec![1]);
        s.set("rdv/0/rank/0", vec![0]);
        s.set("other", vec![7]);
        assert_eq!(s.count_prefix("rdv/0/"), 2);
        let scan = s.scan_prefix("rdv/0/");
        assert_eq!(scan[0].0, "rdv/0/rank/0");
        assert_eq!(scan[1].0, "rdv/0/rank/1");
        assert_eq!(s.clear_prefix("rdv/0/"), 2);
        assert_eq!(s.count_prefix("rdv/0/"), 0);
        assert_eq!(s.get("other"), Some(vec![7]));
    }

    #[test]
    fn flaky_store_fails_transiently_but_not_forever() {
        let s = KvStore::shared_flaky(StoreFaults::rate(0.9, 42));
        // With a 90% rate some operations must fail ...
        let mut failures = 0;
        for i in 0..50 {
            if s.try_set(&format!("k{i}"), vec![1]).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert_eq!(s.denied(), failures);
        // ... but max_consecutive bounds any failure run, so a bounded retry
        // loop always gets through.
        for _ in 0..=8 {
            if s.try_set("must-land", vec![2]).is_ok() {
                break;
            }
        }
        assert_eq!(s.get("must-land"), Some(vec![2]));
    }

    #[test]
    fn flaky_schedule_is_deterministic() {
        let run = || {
            let s = KvStore::shared_flaky(StoreFaults::rate(0.5, 7));
            (0..100)
                .map(|i| s.try_set(&format!("k{i}"), vec![]).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clean_store_try_ops_never_fail() {
        let s = KvStore::new();
        assert!(s.try_set("a", vec![1]).is_ok());
        assert_eq!(s.try_count_prefix("a").unwrap(), 1);
        assert_eq!(s.try_scan_prefix("a").unwrap().len(), 1);
        assert_eq!(s.denied(), 0);
    }

    #[test]
    fn stats_count_traffic() {
        let s = KvStore::new();
        s.set("a", vec![]);
        s.get("a");
        s.get("b");
        s.wait("a", Duration::from_millis(1));
        let st = s.stats();
        assert_eq!(st.sets, 1);
        assert_eq!(st.gets, 2);
        assert_eq!(st.waits, 1);
    }
}
