//! A Gloo-style collective-communication library: **not** fault tolerant,
//! by design.
//!
//! This crate reproduces the substrate Elastic Horovod runs on (paper §3.2,
//! Fig. 3): collective *contexts* built over a key-value-store rendezvous.
//! Its defining property — the one the paper's comparison hinges on — is
//! that a Gloo context cannot tolerate failures or reconfigure workers at
//! runtime:
//!
//! * any peer failure observed during an operation **poisons the whole
//!   context**; every subsequent operation fails with
//!   [`GlooError::Poisoned`];
//! * recovery requires throwing the context away and rebuilding from
//!   scratch: a fresh **rendezvous** through the [`KvStore`] (global, then
//!   node-local, as Horovod does), followed by a fresh full-mesh
//!   [`Context::connect`].
//!
//! The Elastic-Horovod-style *backward recovery* driver in the `elastic`
//! crate layers exception catching, node blacklisting, and checkpoint
//! rollback on top of exactly these pieces.

#![warn(missing_docs)]

mod context;
mod error;
mod netstore;
mod rendezvous;
mod store;

pub use context::{Context, ContextStats};
pub use error::GlooError;
pub use netstore::{NetStore, StoreServer};
pub use rendezvous::{rendezvous, RendezvousConfig, RendezvousError, RendezvousReport};
pub use store::{KvStore, KvStoreStats, Store, StoreFaults, StoreUnavailable};

pub use transport::{NodeId, RankId, Topology};
