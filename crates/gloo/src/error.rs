//! Gloo error model: coarse and terminal, unlike ULFM's.

use std::fmt;
use transport::RankId;

/// Errors from Gloo-style contexts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlooError {
    /// A peer failed during an operation. The context is now poisoned; the
    /// caller must tear everything down and re-rendezvous (what Elastic
    /// Horovod's exception path does).
    PeerFailure {
        /// Global id of the failed peer.
        global: RankId,
    },
    /// The context was already poisoned by an earlier failure.
    Poisoned,
    /// The calling rank itself was killed by the fault plan.
    SelfDied,
}

impl fmt::Display for GlooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlooError::PeerFailure { global } => {
                write!(f, "gloo: peer {global} failed; context aborted")
            }
            GlooError::Poisoned => write!(f, "gloo: context poisoned by earlier failure"),
            GlooError::SelfDied => write!(f, "gloo: local rank died"),
        }
    }
}

impl std::error::Error for GlooError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GlooError::PeerFailure { global: RankId(2) }
            .to_string()
            .contains("r2"));
        assert!(GlooError::Poisoned.to_string().contains("poisoned"));
    }
}
