//! KV-store rendezvous: how Gloo/Horovod workers discover each other.
//!
//! Every (re)configuration in Elastic Horovod runs a **global rendezvous**
//! (all workers agree on the member list) and then a **local rendezvous**
//! (workers on one node discover each other for the hierarchical
//! collectives). Both are reproduced here; the per-phase round-trip counts
//! feed the recovery cost breakdowns of paper Fig. 4.

use crate::store::{Store, StoreUnavailable};
use std::time::{Duration, Instant};
use transport::{RankId, Topology, Wire};

/// Retry a transiently-failing store operation with exponential backoff
/// until it succeeds or `deadline` passes. Every retry is counted under
/// `gloo.rendezvous.retries` and charged one round trip.
fn with_retry<T>(
    deadline: Instant,
    round_trips: &mut u64,
    mut op: impl FnMut() -> Result<T, StoreUnavailable>,
) -> Result<T, RendezvousError> {
    let mut backoff = Duration::from_micros(100);
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(StoreUnavailable) => {
                *round_trips += 1;
                telemetry::counter("gloo.rendezvous.retries").incr();
                if Instant::now() >= deadline {
                    telemetry::counter("gloo.rendezvous.timeouts").incr();
                    return Err(RendezvousError::StoreUnavailable);
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(2));
            }
        }
    }
}

/// Parameters of one rendezvous round.
#[derive(Clone, Debug)]
pub struct RendezvousConfig {
    /// Namespace for this training run.
    pub run_id: String,
    /// Rendezvous epoch: bumped on every reconfiguration so stale keys from
    /// the previous worker set cannot be matched.
    pub epoch: u64,
    /// Number of workers that must arrive.
    pub expected: usize,
    /// Give up after this long (stragglers / undetected failures).
    pub timeout: Duration,
}

/// What a completed rendezvous produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RendezvousReport {
    /// The agreed member list, sorted by global rank (dense new ranks are
    /// the positions in this list).
    pub members: Vec<RankId>,
    /// This worker's dense rank within `members`.
    pub my_rank: usize,
    /// Members co-located on this worker's node (the local rendezvous
    /// result), as indices into `members`.
    pub node_locals: Vec<usize>,
    /// KV round trips this worker performed (cost accounting).
    pub round_trips: u64,
}

/// Rendezvous failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RendezvousError {
    /// Fewer than `expected` workers arrived before the timeout.
    Timeout {
        /// How many had arrived when we gave up.
        arrived: usize,
    },
    /// The store stayed transiently unavailable past the deadline even
    /// under retry-with-backoff.
    StoreUnavailable,
}

impl std::fmt::Display for RendezvousError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RendezvousError::Timeout { arrived } => {
                write!(f, "rendezvous timed out with {arrived} arrivals")
            }
            RendezvousError::StoreUnavailable => {
                write!(f, "rendezvous store unavailable past the deadline")
            }
        }
    }
}

impl std::error::Error for RendezvousError {}

/// Run the global + local rendezvous for `me`.
///
/// Protocol (mirrors Horovod's): publish `run/<epoch>/rank/<global>`; poll
/// the prefix until `expected` keys exist; read them all to learn the
/// member list; then publish and poll the node-local prefix likewise.
pub fn rendezvous<S: Store + ?Sized>(
    store: &S,
    cfg: &RendezvousConfig,
    me: RankId,
    topology: Topology,
) -> Result<RendezvousReport, RendezvousError> {
    telemetry::counter("gloo.rendezvous.ops").incr();
    let span = telemetry::span("gloo.rendezvous.duration_ns");
    let mut round_trips = 0u64;
    let deadline = Instant::now() + cfg.timeout;
    let global_prefix = format!("{}/{}/global/", cfg.run_id, cfg.epoch);

    // Publish my arrival (retried through transient store failures).
    with_retry(deadline, &mut round_trips, || {
        store.try_set(
            &format!("{global_prefix}{:08}", me.0),
            u64::encode_slice(&[me.0 as u64]),
        )
    })?;
    round_trips += 1;

    // Poll until everyone arrived.
    loop {
        let n = with_retry(deadline, &mut round_trips, || {
            store.try_count_prefix(&global_prefix)
        })?;
        round_trips += 1;
        if n >= cfg.expected {
            break;
        }
        if Instant::now() >= deadline {
            telemetry::counter("gloo.rendezvous.timeouts").incr();
            return Err(RendezvousError::Timeout { arrived: n });
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    // Read the member list.
    let members: Vec<RankId> = with_retry(deadline, &mut round_trips, || {
        store.try_scan_prefix(&global_prefix)
    })?
    .into_iter()
    .map(|(_, v)| RankId(u64::decode_slice(&v)[0] as usize))
    .collect();
    round_trips += 1;
    let my_rank = members
        .iter()
        .position(|&m| m == me)
        .expect("rendezvous member list must include self");

    // Local rendezvous: discover co-located members.
    let my_node = topology.node_of(me);
    let local_prefix = format!("{}/{}/node{}/", cfg.run_id, cfg.epoch, my_node.0);
    with_retry(deadline, &mut round_trips, || {
        store.try_set(
            &format!("{local_prefix}{:08}", me.0),
            u64::encode_slice(&[my_rank as u64]),
        )
    })?;
    round_trips += 1;
    let expected_local = members
        .iter()
        .filter(|&&m| topology.node_of(m) == my_node)
        .count();
    loop {
        let n = with_retry(deadline, &mut round_trips, || {
            store.try_count_prefix(&local_prefix)
        })?;
        round_trips += 1;
        if n >= expected_local {
            break;
        }
        if Instant::now() >= deadline {
            telemetry::counter("gloo.rendezvous.timeouts").incr();
            return Err(RendezvousError::Timeout { arrived: n });
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let node_locals: Vec<usize> = with_retry(deadline, &mut round_trips, || {
        store.try_scan_prefix(&local_prefix)
    })?
    .into_iter()
    .map(|(_, v)| u64::decode_slice(&v)[0] as usize)
    .collect();
    round_trips += 1;

    telemetry::counter("gloo.rendezvous.round_trips").add(round_trips);
    drop(span);
    Ok(RendezvousReport {
        members,
        my_rank,
        node_locals,
        round_trips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvStore;
    use std::sync::Arc;

    fn cfg(epoch: u64, expected: usize) -> RendezvousConfig {
        RendezvousConfig {
            run_id: "test".into(),
            epoch,
            expected,
            timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn all_workers_agree_on_member_list() {
        let store = KvStore::shared();
        let topo = Topology::new(2);
        let ranks = [RankId(0), RankId(1), RankId(2), RankId(3)];
        let reports: Vec<RendezvousReport> = std::thread::scope(|s| {
            let handles: Vec<_> = ranks
                .iter()
                .map(|&r| {
                    let store = Arc::clone(&store);
                    s.spawn(move || rendezvous(&store, &cfg(0, 4), r, topo).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, rep) in reports.iter().enumerate() {
            assert_eq!(rep.members, ranks.to_vec());
            assert_eq!(rep.my_rank, i);
        }
        // Node-local discovery: ranks 0,1 on node 0; 2,3 on node 1.
        assert_eq!(reports[0].node_locals, vec![0, 1]);
        assert_eq!(reports[3].node_locals, vec![2, 3]);
    }

    #[test]
    fn sparse_global_ids_get_dense_ranks() {
        let store = KvStore::shared();
        let topo = Topology::flat();
        let ranks = [RankId(3), RankId(10), RankId(42)];
        let reports: Vec<RendezvousReport> = std::thread::scope(|s| {
            let handles: Vec<_> = ranks
                .iter()
                .map(|&r| {
                    let store = Arc::clone(&store);
                    s.spawn(move || rendezvous(&store, &cfg(1, 3), r, topo).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(reports[0].my_rank, 0);
        assert_eq!(reports[1].my_rank, 1);
        assert_eq!(reports[2].my_rank, 2);
    }

    #[test]
    fn timeout_when_worker_missing() {
        let store = KvStore::new();
        let mut c = cfg(2, 3);
        c.timeout = Duration::from_millis(30);
        let err = rendezvous(&store, &c, RankId(0), Topology::flat()).unwrap_err();
        assert_eq!(err, RendezvousError::Timeout { arrived: 1 });
    }

    #[test]
    fn epochs_do_not_interfere() {
        let store = KvStore::shared();
        let topo = Topology::flat();
        // Stale keys from epoch 0.
        store.set("test/0/global/00000007", u64::encode_slice(&[7]));
        let mut c = cfg(1, 1);
        c.timeout = Duration::from_millis(200);
        let rep = rendezvous(&store, &c, RankId(0), topo).unwrap();
        assert_eq!(rep.members, vec![RankId(0)]);
    }

    #[test]
    fn round_trips_are_counted() {
        let store = KvStore::new();
        let rep = rendezvous(&store, &cfg(3, 1), RankId(0), Topology::flat()).unwrap();
        assert!(
            rep.round_trips >= 6,
            "expected ≥6 RTTs, got {}",
            rep.round_trips
        );
    }

    #[test]
    fn flaky_store_is_healed_by_retry_backoff() {
        use crate::store::StoreFaults;
        // 40% of store operations transiently fail; every worker must still
        // complete the rendezvous via retry-with-backoff.
        let store = KvStore::shared_flaky(StoreFaults::rate(0.4, 1234));
        let topo = Topology::new(2);
        let ranks = [RankId(0), RankId(1), RankId(2), RankId(3)];
        let reports: Vec<RendezvousReport> = std::thread::scope(|s| {
            let handles: Vec<_> = ranks
                .iter()
                .map(|&r| {
                    let store = Arc::clone(&store);
                    s.spawn(move || rendezvous(&store, &cfg(0, 4), r, topo).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for rep in &reports {
            assert_eq!(rep.members, ranks.to_vec());
        }
        assert!(store.denied() > 0, "faults must actually have fired");
        // Denied operations are charged as extra round trips.
        let total_rtts: u64 = reports.iter().map(|r| r.round_trips).sum();
        assert!(total_rtts as usize > 6 * ranks.len());
    }

    #[test]
    fn permanently_dead_store_reports_unavailable() {
        use crate::store::StoreFaults;
        let store = KvStore::shared_flaky(StoreFaults {
            fail_rate: 1.0,
            seed: 9,
            max_consecutive: u32::MAX,
        });
        let mut c = cfg(1, 1);
        c.timeout = Duration::from_millis(30);
        let err = rendezvous(&store, &c, RankId(0), Topology::flat()).unwrap_err();
        assert_eq!(err, RendezvousError::StoreUnavailable);
    }
}
