//! Rendezvous edge cases: re-registration, stale state from previous
//! incarnations, and arrivals racing teardown. These are the failure modes
//! real KV-store rendezvous implementations have to shrug off every time
//! the elastic driver bumps the configuration epoch.

use gloo::{
    rendezvous, KvStore, RankId, RendezvousConfig, RendezvousError, RendezvousReport, Topology,
};
use std::sync::Arc;
use std::time::Duration;

fn cfg(epoch: u64, expected: usize) -> RendezvousConfig {
    RendezvousConfig {
        run_id: "edge".into(),
        epoch,
        expected,
        timeout: Duration::from_secs(5),
    }
}

/// A worker that re-runs rendezvous for the same epoch (e.g. it crashed
/// after publishing and was restarted under the same rank) must not count
/// itself twice: the publish is an idempotent overwrite.
#[test]
fn double_join_by_same_rank_is_idempotent() {
    let store = KvStore::shared();
    let topo = Topology::flat();

    // First attempt by rank 0 stalls (nobody else arrived yet) and "dies".
    let mut short = cfg(0, 2);
    short.timeout = Duration::from_millis(30);
    let err = rendezvous(&store, &short, RankId(0), topo).unwrap_err();
    assert_eq!(err, RendezvousError::Timeout { arrived: 1 });

    // The restarted incarnation re-joins alongside rank 1. If the stale
    // self-registration were double-counted, membership would be wrong.
    let reports: Vec<RendezvousReport> = std::thread::scope(|s| {
        [RankId(0), RankId(1)]
            .map(|r| {
                let store = Arc::clone(&store);
                s.spawn(move || rendezvous(&store, &cfg(0, 2), r, topo).unwrap())
            })
            .map(|h| h.join().unwrap())
            .into_iter()
            .collect()
    });
    for rep in &reports {
        assert_eq!(rep.members, vec![RankId(0), RankId(1)]);
    }
    assert_eq!(reports[0].my_rank, 0);
    assert_eq!(reports[1].my_rank, 1);
}

/// Stale keys left by a previous incarnation of the run — same run id,
/// older epoch, including ranks that no longer exist — must be invisible
/// to the new epoch's rendezvous.
#[test]
fn stale_keys_from_previous_incarnation_are_ignored() {
    let store = KvStore::shared();
    let topo = Topology::new(2);

    // Epoch 3 leftovers: a full 4-member roster, one of which (rank 9)
    // died and triggered the reconfiguration to epoch 4.
    for r in [0u64, 1, 5, 9] {
        store.set(&format!("edge/3/global/{r:08}"), r.to_le_bytes().to_vec());
        store.set(&format!("edge/3/node0/{r:08}"), r.to_le_bytes().to_vec());
    }

    let survivors = [RankId(0), RankId(1), RankId(5)];
    let reports: Vec<RendezvousReport> = std::thread::scope(|s| {
        survivors
            .map(|r| {
                let store = Arc::clone(&store);
                s.spawn(move || rendezvous(&store, &cfg(4, 3), r, topo).unwrap())
            })
            .map(|h| h.join().unwrap())
            .into_iter()
            .collect()
    });
    for rep in &reports {
        assert_eq!(rep.members, survivors.to_vec(), "stale epoch leaked in");
        assert!(!rep.members.contains(&RankId(9)));
    }
    // Dense re-ranking of the sparse survivor ids.
    assert_eq!(reports[2].my_rank, 2);
}

/// A joiner arriving while the previous epoch is being torn down
/// (`clear_prefix` racing its publish) must still complete its own epoch:
/// teardown only touches the old epoch's prefix.
#[test]
fn joiner_arriving_during_teardown_completes() {
    let store = KvStore::shared();
    let topo = Topology::flat();

    // Old epoch fully populated.
    for r in 0u64..4 {
        store.set(&format!("edge/7/global/{r:08}"), r.to_le_bytes().to_vec());
    }

    let joiner = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || rendezvous(&store, &cfg(8, 1), RankId(2), topo))
    };
    // Concurrent teardown of epoch 7 while the epoch-8 joiner publishes
    // and polls.
    let cleared = store.clear_prefix("edge/7/");
    assert_eq!(cleared, 4);

    let rep = joiner.join().unwrap().unwrap();
    assert_eq!(rep.members, vec![RankId(2)]);
    assert_eq!(rep.my_rank, 0);
    // Epoch 8's keys survived the teardown of epoch 7.
    assert_eq!(store.count_prefix("edge/8/global/"), 1);
}

/// The mirror race: teardown fires *between* a straggler's publish and its
/// poll in the SAME epoch (an overzealous cleanup of a timed-out epoch).
/// The straggler must observe the timeout — never hang, never fabricate a
/// member list.
#[test]
fn teardown_of_own_epoch_surfaces_as_timeout() {
    let store = KvStore::shared();
    let topo = Topology::flat();

    let straggler = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let mut c = cfg(9, 2);
            c.timeout = Duration::from_millis(150);
            rendezvous(&store, &c, RankId(0), topo)
        })
    };
    // Let it publish, then yank the epoch out from under it.
    std::thread::sleep(Duration::from_millis(40));
    store.clear_prefix("edge/9/");

    match straggler.join().unwrap() {
        Err(RendezvousError::Timeout { arrived }) => assert!(arrived <= 1),
        other => panic!("expected timeout after teardown, got {other:?}"),
    }
}
