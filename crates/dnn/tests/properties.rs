//! Property tests for the DL framework: checkpoint fidelity, profile
//! invariants, sharding algebra, and gradient correctness on random
//! networks.

use dnn::{Checkpoint, Model, Sgd, SyntheticDataset, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint round-trips restore training bit-exactly for arbitrary
    /// architectures and training prefixes.
    #[test]
    fn checkpoint_roundtrip_any_architecture(
        hidden in proptest::collection::vec(1usize..24, 0..3),
        features in 1usize..12,
        classes in 2usize..6,
        warm_steps in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mut m = Model::mlp(features, &hidden, classes, seed);
        let mut o = Sgd::new(0.05, 0.9);
        let ds = SyntheticDataset::new(features, classes, seed ^ 1);
        for s in 0..warm_steps {
            m.zero_grads();
            m.compute_gradients(&ds.batch(s, 8));
            o.step(&mut m.params_mut());
        }
        let ckpt = Checkpoint::capture(&m, &o);

        // Continue original.
        m.zero_grads();
        m.compute_gradients(&ds.batch(warm_steps, 8));
        o.step(&mut m.params_mut());
        let after_original = m.state_flat();

        // Restore into a fresh differently-seeded model and replay.
        let mut m2 = Model::mlp(features, &hidden, classes, seed ^ 99);
        let mut o2 = Sgd::new(0.05, 0.9);
        ckpt.restore(&mut m2, &mut o2);
        m2.zero_grads();
        m2.compute_gradients(&ds.batch(warm_steps, 8));
        o2.step(&mut m2.params_mut());
        prop_assert_eq!(m2.state_flat(), after_original);
    }

    /// Profile tensor-size lists always sum exactly to the parameter count
    /// and stay positive, for any downscaling factor.
    #[test]
    fn profile_sizes_invariant_under_scaling(factor in 1u64..100_000) {
        for m in dnn::paper_models() {
            let scaled = m.scaled_down(factor);
            let sizes = scaled.tensor_sizes();
            prop_assert_eq!(sizes.len(), m.trainable_tensors);
            prop_assert_eq!(sizes.iter().sum::<u64>(), scaled.total_params);
            prop_assert!(sizes.iter().all(|&s| s >= 1));
            // Descending order preserved.
            prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    /// Shards tile the global batch exactly for any (batch, world) combo.
    #[test]
    fn shards_tile_global_batch(
        global in 1usize..64,
        world in 1usize..12,
        index in 0usize..100,
    ) {
        let ds = SyntheticDataset::new(4, 3, 9);
        let full = ds.batch(index, global);
        let mut labels = Vec::new();
        let mut data = Vec::new();
        for r in 0..world {
            let s = ds.shard(index, global, r, world);
            labels.extend(s.labels);
            data.extend_from_slice(s.inputs.data());
        }
        prop_assert_eq!(labels, full.labels);
        prop_assert_eq!(data, full.inputs.data().to_vec());
    }

    /// Dense-layer gradients agree with finite differences on random
    /// inputs (sampled coordinates).
    #[test]
    fn dense_gradients_match_finite_differences(
        seed in any::<u64>(),
        x0 in -1.0f32..1.0,
        x1 in -1.0f32..1.0,
    ) {
        use dnn::{Dense, Layer};
        let mut d = Dense::new(2, 3, seed);
        let x = Tensor::from_vec(&[1, 2], vec![x0, x1]);
        let y = d.forward(&x);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        d.backward(&ones);
        let analytic = d.params()[0].grad.data()[1]; // dSum/dW[0,1] = x0
        prop_assert!((analytic - x0).abs() < 1e-4, "analytic {} vs x0 {}", analytic, x0);
        let bias_grad = d.params()[1].grad.data()[0]; // dSum/db = 1
        prop_assert!((bias_grad - 1.0).abs() < 1e-5);
    }

    /// Softmax-CE loss is minimized by predicting the label: pushing the
    /// true-class logit up never increases the loss.
    #[test]
    fn loss_monotone_in_true_logit(
        base in proptest::collection::vec(-3.0f32..3.0, 3),
        label in 0usize..3,
        bump in 0.01f32..2.0,
    ) {
        use dnn::loss::softmax_cross_entropy;
        let logits = Tensor::from_vec(&[1, 3], base.clone());
        let (l0, _) = softmax_cross_entropy(&logits, &[label]);
        let mut bumped = base;
        bumped[label] += bump;
        let (l1, _) = softmax_cross_entropy(&Tensor::from_vec(&[1, 3], bumped), &[label]);
        prop_assert!(l1 <= l0 + 1e-6, "raising the true logit increased loss: {} -> {}", l0, l1);
    }

    /// state_flat / load_state_flat round-trip for arbitrary architectures.
    #[test]
    fn state_flat_roundtrip(
        hidden in proptest::collection::vec(1usize..16, 0..3),
        seed in any::<u64>(),
    ) {
        let m = Model::mlp(5, &hidden, 3, seed);
        let flat = m.state_flat();
        let mut m2 = Model::mlp(5, &hidden, 3, seed.wrapping_add(1));
        m2.load_state_flat(&flat);
        prop_assert_eq!(m2.state_flat(), flat);
    }
}
