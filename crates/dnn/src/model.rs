//! Sequential model: layers + loss + gradient access for data-parallel
//! training.

use crate::data::Batch;
use crate::layers::{Dense, Layer, ReLU};
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::tensor::Tensor;

/// What one local training step produced (before gradient averaging).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainReport {
    /// Mean loss over the local mini-batch shard.
    pub loss: f32,
    /// Top-1 accuracy over the shard.
    pub accuracy: f32,
}

/// A sequential feed-forward network.
pub struct Model {
    layers: Vec<Box<dyn Layer>>,
}

impl Model {
    /// Build from explicit layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// A small MLP classifier: `in_dim → hidden… → classes`, ReLU between.
    /// The workhorse model for tests and examples.
    pub fn mlp(in_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Self {
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut prev = in_dim;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(Box::new(Dense::new(prev, h, seed.wrapping_add(i as u64))));
            layers.push(Box::new(ReLU::new()));
            prev = h;
        }
        layers.push(Box::new(Dense::new(
            prev,
            classes,
            seed.wrapping_add(hidden.len() as u64),
        )));
        Self::new(layers)
    }

    /// Forward pass only.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Forward + backward on a batch: accumulates parameter gradients and
    /// returns loss/accuracy. Does **not** apply the optimizer — in
    /// data-parallel training the gradients are allreduced first.
    pub fn compute_gradients(&mut self, batch: &Batch) -> TrainReport {
        self.compute_gradients_with(batch, |_, _| {})
    }

    /// Like [`Model::compute_gradients`], but fires `on_ready(idx, grad)`
    /// for each trainable tensor the moment its layer's backward pass has
    /// produced it — `idx` is the tensor's *declaration-order* index (the
    /// position [`Model::grads`] lists it at). This is the hook the elastic
    /// engines' fusion ready-queue hangs off: gradients become ready in
    /// [`Model::ready_order`] (last layer first), so fused allreduces can
    /// launch while earlier layers are still differentiating.
    pub fn compute_gradients_with(
        &mut self,
        batch: &Batch,
        mut on_ready: impl FnMut(usize, &Tensor),
    ) -> TrainReport {
        // Declaration-order index of each layer's first trainable tensor.
        let mut first_tensor = Vec::with_capacity(self.layers.len());
        let mut acc_tensors = 0usize;
        for layer in &self.layers {
            first_tensor.push(acc_tensors);
            acc_tensors += layer.params().len();
        }

        let logits = self.forward(&batch.inputs);
        let (loss, mut grad) = softmax_cross_entropy(&logits, &batch.labels);
        let acc = accuracy(&logits, &batch.labels);
        for (li, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&grad);
            for (j, p) in layer.params().into_iter().enumerate() {
                on_ready(first_tensor[li] + j, &p.grad);
            }
        }
        TrainReport {
            loss,
            accuracy: acc,
        }
    }

    /// Declaration-order tensor indices in the order
    /// [`Model::compute_gradients_with`] reports them ready: reverse layer
    /// order, declaration order within a layer. Deterministic for a given
    /// architecture — every data-parallel replica derives the same order,
    /// which is what lets fusion bucket plans be computed once and shared
    /// by the SPMD collective schedule.
    pub fn ready_order(&self) -> Vec<usize> {
        let mut first_tensor = Vec::with_capacity(self.layers.len());
        let mut acc = 0usize;
        for layer in &self.layers {
            first_tensor.push(acc);
            acc += layer.params().len();
        }
        let mut order = Vec::with_capacity(acc);
        for (li, layer) in self.layers.iter().enumerate().rev() {
            for j in 0..layer.params().len() {
                order.push(first_tensor[li] + j);
            }
        }
        order
    }

    /// Zero all accumulated gradients. Needed before recomputing a step
    /// (the optimizer also zeroes after applying).
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            for g in p.grad.data_mut() {
                *g = 0.0;
            }
        }
    }

    /// Number of trainable tensors (the paper's "Trainable" column).
    pub fn num_tensors(&self) -> usize {
        self.layers.iter().map(|l| l.params().len()).sum()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.value.len())
            .sum()
    }

    /// Gradients of every trainable tensor, in declaration order. These are
    /// the buffers handed to allreduce each step.
    pub fn grads(&self) -> Vec<&Tensor> {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| &p.grad)
            .collect()
    }

    /// Overwrite the gradient tensors (after allreduce) in order.
    pub fn set_grads(&mut self, grads: &[Vec<f32>]) {
        let mut it = grads.iter();
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                let g = it.next().expect("gradient list too short");
                assert_eq!(g.len(), p.grad.len(), "gradient size mismatch");
                p.grad.data_mut().copy_from_slice(g);
            }
        }
        assert!(it.next().is_none(), "gradient list too long");
    }

    /// All trainable parameters, mutably (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut crate::layers::Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// All trainable parameters, immutably.
    pub fn params(&self) -> Vec<&crate::layers::Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Flatten every parameter value into one vector (state transfer to new
    /// workers, checkpointing).
    pub fn state_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for p in self.params() {
            out.extend_from_slice(p.value.data());
        }
        out
    }

    /// Load a flat state vector produced by [`Model::state_flat`].
    pub fn load_state_flat(&mut self, flat: &[f32]) {
        let mut pos = 0;
        for p in self.params_mut() {
            let n = p.value.len();
            p.value.data_mut().copy_from_slice(&flat[pos..pos + n]);
            pos += n;
        }
        assert_eq!(pos, flat.len(), "state vector length mismatch");
    }

    /// Layer names (summaries).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;
    use crate::optim::Sgd;

    fn tiny_model() -> Model {
        Model::mlp(8, &[16], 4, 42)
    }

    #[test]
    fn mlp_shape_and_counts() {
        let m = tiny_model();
        assert_eq!(m.num_tensors(), 4); // 2 dense layers × (W, b)
        assert_eq!(m.num_params(), 8 * 16 + 16 + 16 * 4 + 4);
        assert_eq!(m.layer_names(), vec!["Dense", "ReLU", "Dense"]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = tiny_model();
        let mut opt = Sgd::new(0.1, 0.9);
        let ds = SyntheticDataset::new(8, 4, 7);
        let first = {
            let batch = ds.batch(0, 32);
            m.compute_gradients(&batch).loss
        };
        for step in 0..60 {
            let batch = ds.batch(step % 4, 32);
            m.compute_gradients(&batch);
            opt.step(&mut m.params_mut());
        }
        let last = {
            let batch = ds.batch(0, 32);
            let logits = m.forward(&batch.inputs);
            crate::loss::softmax_cross_entropy(&logits, &batch.labels).0
        };
        assert!(
            last < first * 0.7,
            "loss did not decrease: {first} → {last}"
        );
    }

    #[test]
    fn state_flat_roundtrip() {
        let mut a = tiny_model();
        let mut b = Model::mlp(8, &[16], 4, 99); // different init
        let ds = SyntheticDataset::new(8, 4, 7);
        let batch = ds.batch(3, 16);
        a.compute_gradients(&batch);
        let mut opt = Sgd::new(0.05, 0.0);
        opt.step(&mut a.params_mut());

        b.load_state_flat(&a.state_flat());
        let batch2 = ds.batch(5, 16);
        let la = {
            let logits = a.forward(&batch2.inputs);
            crate::loss::softmax_cross_entropy(&logits, &batch2.labels).0
        };
        let lb = {
            let logits = b.forward(&batch2.inputs);
            crate::loss::softmax_cross_entropy(&logits, &batch2.labels).0
        };
        assert_eq!(la, lb, "identical state must give identical loss");
    }

    #[test]
    fn set_grads_overwrites_in_order() {
        let mut m = tiny_model();
        let sizes: Vec<usize> = m.grads().iter().map(|g| g.len()).collect();
        let fake: Vec<Vec<f32>> = sizes.iter().map(|&n| vec![0.5; n]).collect();
        m.set_grads(&fake);
        for g in m.grads() {
            assert!(g.data().iter().all(|&v| v == 0.5));
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn set_grads_checks_count() {
        let mut m = tiny_model();
        m.set_grads(&[vec![0.0; 8 * 16]]);
    }

    #[test]
    fn ready_hook_fires_in_reverse_layer_order() {
        let ds = SyntheticDataset::new(8, 4, 7);
        let batch = ds.batch(0, 16);
        let mut m = tiny_model();
        let mut seen = Vec::new();
        let r1 = m.compute_gradients_with(&batch, |idx, g| seen.push((idx, g.data().to_vec())));
        // Output Dense's (W, b) become ready first, input Dense's last.
        let order: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, vec![2, 3, 0, 1]);
        assert_eq!(order, m.ready_order());
        // Hooked gradients are the final gradients, and the plain entry
        // point is unchanged.
        let mut m2 = tiny_model();
        let r2 = m2.compute_gradients(&batch);
        assert_eq!(r1, r2);
        let finals = m.grads();
        for (idx, g) in &seen {
            assert_eq!(g, finals[*idx].data());
        }
    }

    #[test]
    fn gradients_are_deterministic() {
        let ds = SyntheticDataset::new(8, 4, 7);
        let batch = ds.batch(0, 16);
        let mut m1 = tiny_model();
        let mut m2 = tiny_model();
        let r1 = m1.compute_gradients(&batch);
        let r2 = m2.compute_gradients(&batch);
        assert_eq!(r1, r2);
        let g1: Vec<f32> = m1.grads().iter().flat_map(|g| g.data().to_vec()).collect();
        let g2: Vec<f32> = m2.grads().iter().flat_map(|g| g.data().to_vec()).collect();
        assert_eq!(g1, g2);
    }
}
