//! Network layers with manual forward/backward passes.

use crate::tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient of the current mini-batch (zeroed by the optimizer step).
    pub grad: Tensor,
}

impl Param {
    fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }
}

/// A layer in a sequential network. Forward caches whatever backward needs.
pub trait Layer: Send {
    /// Forward pass on a batch (first dimension = batch).
    fn forward(&mut self, x: &Tensor) -> Tensor;
    /// Backward pass: receives dL/d(output), returns dL/d(input), and
    /// accumulates parameter gradients.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;
    /// Trainable parameters (empty for stateless layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }
    /// Mutable trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
    /// Human-readable name for summaries.
    fn name(&self) -> &'static str;
}

/// Fully-connected layer: `y = x·W + b`.
pub struct Dense {
    w: Param,
    b: Param,
    cached_x: Option<Tensor>,
}

impl Dense {
    /// A dense layer with He initialization.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w: Param::new(Tensor::he_init(&[in_dim, out_dim], in_dim, seed)),
            b: Param::new(Tensor::zeros(&[1, out_dim])),
            cached_x: None,
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Dense expects a 2-D batch");
        let mut y = x.matmul(&self.w.value);
        let out_dim = self.b.value.len();
        for row in y.data_mut().chunks_mut(out_dim) {
            for (v, b) in row.iter_mut().zip(self.b.value.data()) {
                *v += b;
            }
        }
        self.cached_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("backward called before forward");
        // dW = xᵀ · g ; db = column sums of g ; dx = g · Wᵀ
        let dw = x.transpose().matmul(grad_out);
        self.w.grad.add_scaled(&dw, 1.0);
        let out_dim = self.b.value.len();
        for row in grad_out.data().chunks(out_dim) {
            for (g, r) in self.b.grad.data_mut().iter_mut().zip(row) {
                *g += r;
            }
        }
        grad_out.matmul(&self.w.value.transpose())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct ReLU {
    mask: Vec<bool>,
}

impl ReLU {
    /// A fresh ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        for v in y.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&self.mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Collapse trailing dimensions into one (batch stays first).
#[derive(Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// A fresh flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.in_shape = x.shape().to_vec();
        let batch = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        let mut y = x.clone();
        y.reshape(&[batch, rest]);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        g.reshape(&self.in_shape);
        g
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// 2-D convolution, stride 1, valid padding, NCHW layout.
///
/// Direct nested-loop implementation — shapes in this repo are small; this
/// exists so the "image model" examples genuinely run convolutions.
pub struct Conv2d {
    w: Param, // [out_c, in_c, kh, kw] flattened
    b: Param, // [out_c]
    in_c: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    cached_x: Option<Tensor>,
}

impl Conv2d {
    /// A conv layer with He initialization.
    pub fn new(in_c: usize, out_c: usize, kh: usize, kw: usize, seed: u64) -> Self {
        let fan_in = in_c * kh * kw;
        Self {
            w: Param::new(Tensor::he_init(&[out_c, in_c, kh, kw], fan_in, seed)),
            b: Param::new(Tensor::zeros(&[out_c])),
            in_c,
            out_c,
            kh,
            kw,
            cached_x: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 1 - self.kh, w + 1 - self.kw)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "Conv2d expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.in_c, "channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let mut y = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let wd = self.w.value.data();
        let xd = x.data();
        let yd = y.data_mut();
        for img in 0..n {
            for oc in 0..self.out_c {
                let bias = self.b.value.data()[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ic in 0..c {
                            for ky in 0..self.kh {
                                for kx in 0..self.kw {
                                    let xi = ((img * c + ic) * h + oy + ky) * w + ox + kx;
                                    let wi = ((oc * c + ic) * self.kh + ky) * self.kw + kx;
                                    acc += xd[xi] * wd[wi];
                                }
                            }
                        }
                        yd[((img * self.out_c + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("backward called before forward");
        let s = x.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut dx = Tensor::zeros(s);
        let gd = grad_out.data();
        let xd = x.data();
        let wd = self.w.value.data();
        let dwd = self.w.grad.data_mut();
        let dbd = self.b.grad.data_mut();
        let dxd = dx.data_mut();
        for img in 0..n {
            for oc in 0..self.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[((img * self.out_c + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        dbd[oc] += g;
                        for ic in 0..c {
                            for ky in 0..self.kh {
                                for kx in 0..self.kw {
                                    let xi = ((img * c + ic) * h + oy + ky) * w + ox + kx;
                                    let wi = ((oc * c + ic) * self.kh + ky) * self.kw + kx;
                                    dwd[wi] += g * xd[xi];
                                    dxd[xi] += g * wd[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_known() {
        let mut d = Dense::new(2, 2, 1);
        // Overwrite with known weights.
        d.w.value = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        d.b.value = Tensor::from_vec(&[1, 2], vec![0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let y = d.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_backward_shapes_and_grads() {
        let mut d = Dense::new(3, 2, 7);
        let x = Tensor::from_vec(&[2, 3], vec![1., 0., -1., 2., 2., 2.]);
        let _ = d.forward(&x);
        let g = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        let dx = d.backward(&g);
        assert_eq!(dx.shape(), &[2, 3]);
        assert_eq!(d.w.grad.shape(), &[3, 2]);
        // db = column sums of g = [1, 1].
        assert_eq!(d.b.grad.data(), &[1., 1.]);
    }

    /// Finite-difference check of Dense gradients.
    #[test]
    fn dense_gradient_check() {
        let mut d = Dense::new(3, 2, 11);
        let x = Tensor::from_vec(&[1, 3], vec![0.3, -0.7, 0.9]);
        // Loss = sum(y). dL/dy = ones.
        let y0 = d.forward(&x);
        let ones = Tensor::from_vec(y0.shape(), vec![1.0; y0.len()]);
        d.backward(&ones);
        let analytic = d.w.grad.data()[2]; // dL/dW[1,0]
        let eps = 1e-3;
        let idx = 2;
        d.w.value.data_mut()[idx] += eps;
        let yp = d.forward(&x).sum();
        d.w.value.data_mut()[idx] -= 2.0 * eps;
        let ym = d.forward(&x).sum();
        let numeric = (yp - ym) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn relu_masks_negative_paths() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1., 2., -3., 4.]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let g = Tensor::from_vec(&[1, 4], vec![1., 1., 1., 1.]);
        let dx = r.backward(&g);
        assert_eq!(dx.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), &[2, 3, 4]);
    }

    #[test]
    fn conv_output_shape_and_identity_kernel() {
        let mut c = Conv2d::new(1, 1, 1, 1, 3);
        c.w.value = Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]);
        c.b.value = Tensor::from_vec(&[1], vec![1.0]);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3., 5., 7., 9.]);
    }

    #[test]
    fn conv_gradient_check() {
        let mut c = Conv2d::new(1, 1, 2, 2, 5);
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32 * 0.1).collect());
        let y0 = c.forward(&x);
        let ones = Tensor::from_vec(y0.shape(), vec![1.0; y0.len()]);
        c.backward(&ones);
        let analytic = c.w.grad.data()[0];
        let eps = 1e-3;
        c.w.value.data_mut()[0] += eps;
        let yp = c.forward(&x).sum();
        c.w.value.data_mut()[0] -= 2.0 * eps;
        let ym = c.forward(&x).sum();
        let numeric = (yp - ym) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn conv_backward_input_grad_shape() {
        let mut c = Conv2d::new(2, 3, 2, 2, 5);
        let x = Tensor::he_init(&[1, 2, 4, 4], 8, 1);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[1, 3, 3, 3]);
        let dx = c.backward(&Tensor::from_vec(y.shape(), vec![1.0; y.len()]));
        assert_eq!(dx.shape(), &[1, 2, 4, 4]);
    }
}
