//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Numerically-stable softmax over the last dimension of a 2-D batch.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "softmax expects [batch, classes]");
    let classes = logits.shape()[1];
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(classes) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean cross-entropy of `logits` against integer `labels`, plus the
/// gradient with respect to the logits (already divided by batch size).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let batch = logits.shape()[0];
    let classes = logits.shape()[1];
    assert_eq!(labels.len(), batch, "one label per batch row");
    let probs = softmax(logits);
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let p = probs.data()[i * classes + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * classes + label] -= 1.0;
    }
    let scale = 1.0 / batch as f32;
    for g in grad.data_mut() {
        *g *= scale;
    }
    (loss * scale, grad)
}

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let classes = logits.shape()[1];
    let correct = logits
        .data()
        .chunks(classes)
        .zip(labels)
        .filter(|(row, label)| {
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            argmax == **label
        })
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let p = softmax(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1000., 1001.]);
        let p = softmax(&logits);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!((p.data()[1] - 0.731).abs() < 0.01);
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(&[1, 3], vec![10., -10., -10.]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-4, "loss = {loss}");
    }

    #[test]
    fn uniform_prediction_has_ln_c_loss() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_points_away_from_wrong_class() {
        let logits = Tensor::zeros(&[1, 2]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(grad.data()[0] < 0.0, "true-class grad must be negative");
        assert!(grad.data()[1] > 0.0);
        // Gradient rows sum to zero for softmax-CE.
        assert!((grad.data()[0] + grad.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn gradient_finite_difference() {
        let logits = Tensor::from_vec(&[1, 3], vec![0.5, -0.3, 0.1]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (up, _) = softmax_cross_entropy(&lp, &[1]);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (um, _) = softmax_cross_entropy(&lm, &[1]);
            let numeric = (up - um) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "component {i}: {} vs {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(&[2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }
}
