//! Deterministic synthetic dataset, standing in for ImageNet.
//!
//! The evaluation never depends on what the images *are* — only that every
//! worker draws a disjoint shard of a common dataset and that training
//! makes progress. Samples are generated from class-dependent Gaussian
//! blobs, so the classification task is genuinely learnable (loss falls,
//! accuracy rises) while remaining fully deterministic under a seed.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One mini-batch (or a worker's shard of one).
#[derive(Clone, Debug)]
pub struct Batch {
    /// Inputs, `[batch, features]`.
    pub inputs: Tensor,
    /// Integer class labels, one per row.
    pub labels: Vec<usize>,
}

/// An infinite, deterministic, class-balanced synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    features: usize,
    classes: usize,
    seed: u64,
}

impl SyntheticDataset {
    /// A dataset with the given feature and class counts.
    pub fn new(features: usize, classes: usize, seed: u64) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(features >= 1, "need at least one feature");
        Self {
            features,
            classes,
            seed,
        }
    }

    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Class centroid: a fixed random direction per class.
    fn centroid(&self, class: usize, dim: usize) -> f32 {
        // Cheap splitmix-style hash → [-1, 1].
        let mut z = self
            .seed
            .wrapping_add((class as u64) << 32)
            .wrapping_add(dim as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        (z as f64 / u64::MAX as f64) as f32 * 2.0 - 1.0
    }

    /// Generate mini-batch number `index` with `size` samples.
    /// Batches with the same index are identical across calls and workers.
    pub fn batch(&self, index: usize, size: usize) -> Batch {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0xA24B_AED4));
        let mut data = Vec::with_capacity(size * self.features);
        let mut labels = Vec::with_capacity(size);
        for _ in 0..size {
            let class = rng.random_range(0..self.classes);
            labels.push(class);
            for d in 0..self.features {
                let noise: f32 = rng.random::<f32>() * 2.0 - 1.0;
                data.push(self.centroid(class, d) * 2.0 + noise * 0.8);
            }
        }
        Batch {
            inputs: Tensor::from_vec(&[size, self.features], data),
            labels,
        }
    }

    /// This worker's shard of global batch `index`: the global batch of
    /// `global_size` samples is cut into `world` contiguous shards and
    /// shard `rank` is materialized. Together the shards tile the global
    /// batch exactly, so gradient averaging across workers is equivalent to
    /// a single large-batch step.
    pub fn shard(&self, index: usize, global_size: usize, rank: usize, world: usize) -> Batch {
        assert!(rank < world, "rank {rank} out of world {world}");
        let full = self.batch(index, global_size);
        let lo = rank * global_size / world;
        let hi = (rank + 1) * global_size / world;
        let data = full.inputs.data()[lo * self.features..hi * self.features].to_vec();
        Batch {
            inputs: Tensor::from_vec(&[hi - lo, self.features], data),
            labels: full.labels[lo..hi].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let ds = SyntheticDataset::new(6, 3, 99);
        let a = ds.batch(5, 10);
        let b = ds.batch(5, 10);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.labels, b.labels);
        let c = ds.batch(6, 10);
        assert_ne!(a.inputs, c.inputs);
    }

    #[test]
    fn labels_in_range() {
        let ds = SyntheticDataset::new(4, 5, 1);
        let b = ds.batch(0, 100);
        assert!(b.labels.iter().all(|&l| l < 5));
        // All classes should appear in a batch of 100.
        for class in 0..5 {
            assert!(b.labels.contains(&class), "class {class} missing");
        }
    }

    #[test]
    fn shards_tile_the_global_batch() {
        let ds = SyntheticDataset::new(3, 2, 7);
        let global = ds.batch(2, 10);
        let mut rebuilt_labels = Vec::new();
        let mut rebuilt_data = Vec::new();
        for rank in 0..4 {
            let s = ds.shard(2, 10, rank, 4);
            rebuilt_labels.extend(s.labels);
            rebuilt_data.extend_from_slice(s.inputs.data());
        }
        assert_eq!(rebuilt_labels, global.labels);
        assert_eq!(rebuilt_data, global.inputs.data());
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let ds = SyntheticDataset::new(2, 2, 3);
        let sizes: Vec<usize> = (0..3).map(|r| ds.shard(0, 10, r, 3).labels.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn classes_are_separable() {
        // Centroids of different classes must differ meaningfully, else the
        // task is unlearnable and training tests become vacuous.
        let ds = SyntheticDataset::new(16, 4, 11);
        for a in 0..4 {
            for b in (a + 1)..4 {
                let dist: f32 = (0..16)
                    .map(|d| (ds.centroid(a, d) - ds.centroid(b, d)).powi(2))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 1.0, "classes {a} and {b} too close: {dist}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of world")]
    fn shard_rank_bounds_checked() {
        SyntheticDataset::new(2, 2, 0).shard(0, 8, 3, 3);
    }
}
