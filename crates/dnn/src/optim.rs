//! SGD with momentum, plus the learning-rate schedules the scaling
//! literature uses (linear scaling + warmup, paper §5's citations [16][22]).

use crate::layers::Param;
use crate::tensor::Tensor;

/// Learning-rate schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// Goyal-style linear scaling with warmup: the rate ramps linearly from
    /// `base` to `base * scale` over `warmup_steps`, then stays there.
    /// `scale` is typically the worker count relative to the reference run.
    LinearWarmup {
        /// Single-worker reference rate.
        base: f32,
        /// Target multiplier (e.g. number of workers).
        scale: f32,
        /// Ramp length in optimizer steps.
        warmup_steps: u64,
    },
    /// A ramp anchored at an absolute step: `from` until `start`, then
    /// linear to `to` over `ramp` steps, then `to`. Elastic training uses
    /// this to re-warm the rate after a membership change mid-run.
    PiecewiseRamp {
        /// Rate before (and at) `start`.
        from: f32,
        /// Rate after the ramp.
        to: f32,
        /// Step at which the ramp begins.
        start: u64,
        /// Ramp length in steps (0 = jump immediately).
        ramp: u64,
    },
}

impl LrSchedule {
    /// The learning rate at optimizer step `step` (0-based).
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::LinearWarmup {
                base,
                scale,
                warmup_steps,
            } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    base * scale
                } else {
                    let t = (step + 1) as f32 / warmup_steps as f32;
                    base * (1.0 + (scale - 1.0) * t)
                }
            }
            LrSchedule::PiecewiseRamp {
                from,
                to,
                start,
                ramp,
            } => {
                if step <= start || ramp == 0 {
                    if step <= start {
                        from
                    } else {
                        to
                    }
                } else if step >= start + ramp {
                    to
                } else {
                    let t = (step - start) as f32 / ramp as f32;
                    from + (to - from) * t
                }
            }
        }
    }
}

/// SGD with classical momentum. Velocity buffers live here, keyed by
/// parameter order — which makes them part of the training state that
/// checkpoints (and new-worker state transfers) must capture.
pub struct Sgd {
    schedule: LrSchedule,
    momentum: f32,
    step: u64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD at a constant rate.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self::with_schedule(LrSchedule::Constant(lr), momentum)
    }

    /// SGD with an explicit schedule.
    pub fn with_schedule(schedule: LrSchedule, momentum: f32) -> Self {
        Self {
            schedule,
            momentum,
            step: 0,
            velocity: Vec::new(),
        }
    }

    /// Optimizer steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The current learning rate.
    pub fn current_lr(&self) -> f32 {
        self.schedule.at(self.step)
    }

    /// Replace the schedule mid-run (elastic LR re-scaling after a
    /// membership change). Velocities and the step counter are preserved.
    pub fn set_schedule(&mut self, schedule: LrSchedule) {
        self.schedule = schedule;
    }

    /// Apply one update from the accumulated gradients, then zero them.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter count changed under the optimizer"
        );
        let lr = self.schedule.at(self.step);
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            for ((vv, pv), g) in v
                .data_mut()
                .iter_mut()
                .zip(p.value.data_mut())
                .zip(p.grad.data())
            {
                *vv = self.momentum * *vv + g;
                *pv -= lr * *vv;
            }
            // Zero the gradient for the next accumulation.
            for g in p.grad.data_mut() {
                *g = 0.0;
            }
        }
        self.step += 1;
    }

    /// Serialize optimizer state (step count + velocities) for checkpoints.
    pub fn state_vec(&self) -> (u64, Vec<Tensor>) {
        (self.step, self.velocity.clone())
    }

    /// Restore optimizer state from a checkpoint.
    pub fn restore(&mut self, step: u64, velocity: Vec<Tensor>) {
        self.step = step;
        self.velocity = velocity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(vals: Vec<f32>, grads: Vec<f32>) -> Param {
        let n = vals.len();
        Param {
            value: Tensor::from_vec(&[n], vals),
            grad: Tensor::from_vec(&[n], grads),
        }
    }

    #[test]
    fn plain_sgd_descends() {
        let mut p = param(vec![1.0], vec![0.5]);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
        assert_eq!(p.grad.data()[0], 0.0, "grad must be zeroed");
    }

    #[test]
    fn momentum_accumulates() {
        let mut p = param(vec![0.0], vec![1.0]);
        let mut opt = Sgd::new(0.1, 0.9);
        opt.step(&mut [&mut p]);
        // v=1, x=-0.1
        p.grad.data_mut()[0] = 1.0;
        opt.step(&mut [&mut p]);
        // v=1.9, x=-0.1-0.19=-0.29
        assert!((p.value.data()[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn warmup_ramps_then_plateaus() {
        let s = LrSchedule::LinearWarmup {
            base: 0.1,
            scale: 4.0,
            warmup_steps: 10,
        };
        assert!(s.at(0) < s.at(5));
        assert!(s.at(5) < s.at(9));
        assert!((s.at(10) - 0.4).abs() < 1e-6);
        assert!((s.at(1000) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn piecewise_ramp_anchors_at_start() {
        let s = LrSchedule::PiecewiseRamp {
            from: 0.1,
            to: 0.4,
            start: 10,
            ramp: 6,
        };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(10), 0.1);
        assert!((s.at(13) - 0.25).abs() < 1e-6);
        assert_eq!(s.at(16), 0.4);
        assert_eq!(s.at(100), 0.4);
    }

    #[test]
    fn piecewise_ramp_zero_length_jumps() {
        let s = LrSchedule::PiecewiseRamp {
            from: 0.1,
            to: 0.3,
            start: 5,
            ramp: 0,
        };
        assert_eq!(s.at(5), 0.1);
        assert_eq!(s.at(6), 0.3);
    }

    #[test]
    fn set_schedule_preserves_velocity_and_step() {
        let mut p = param(vec![0.0], vec![1.0]);
        let mut opt = Sgd::new(0.1, 0.9);
        opt.step(&mut [&mut p]);
        opt.set_schedule(LrSchedule::Constant(0.2));
        assert_eq!(opt.step_count(), 1);
        assert!((opt.current_lr() - 0.2).abs() < 1e-7);
        p.grad.data_mut()[0] = 0.0;
        opt.step(&mut [&mut p]);
        // Momentum carried over: v = 0.9, update = 0.2 * 0.9.
        assert!((p.value.data()[0] - (-0.1 - 0.18)).abs() < 1e-6);
    }

    #[test]
    fn zero_warmup_is_immediate() {
        let s = LrSchedule::LinearWarmup {
            base: 0.1,
            scale: 2.0,
            warmup_steps: 0,
        };
        assert!((s.at(0) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn state_roundtrip_preserves_trajectory() {
        let run = |restore: bool| {
            let mut p = param(vec![1.0], vec![0.3]);
            let mut opt = Sgd::new(0.05, 0.9);
            opt.step(&mut [&mut p]);
            if restore {
                let (step, vel) = opt.state_vec();
                let mut opt2 = Sgd::new(0.05, 0.9);
                opt2.restore(step, vel);
                opt = opt2;
            }
            p.grad.data_mut()[0] = 0.3;
            opt.step(&mut [&mut p]);
            p.value.data()[0]
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn param_count_change_detected() {
        let mut p1 = param(vec![1.0], vec![0.1]);
        let mut p2 = param(vec![1.0], vec![0.1]);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p1]);
        opt.step(&mut [&mut p1, &mut p2]);
    }
}
