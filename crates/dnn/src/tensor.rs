//! Dense row-major `f32` tensors with the handful of operations the layers
//! need. Deliberately simple: correctness and determinism over speed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense row-major tensor of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// A tensor from explicit data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {:?} does not match data length {}",
            shape,
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Deterministic He-style initialization: normal(0, sqrt(2/fan_in)).
    pub fn he_init(shape: &[usize], fan_in: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        let n: usize = shape.iter().product();
        // Box-Muller from uniform draws keeps us independent of rand's
        // distribution API surface.
        let data = (0..n)
            .map(|_| {
                let u1: f32 = rng.random::<f32>().max(1e-7f32);
                let u2: f32 = rng.random::<f32>();
                (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * std
            })
            .collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the tensor empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable data access.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshape in place (element count must be preserved).
    pub fn reshape(&mut self, shape: &[usize]) {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape must preserve element count"
        );
        self.shape = shape.to_vec();
    }

    /// 2-D matrix multiply: `self (m×k) · rhs (k×n) → (m×n)`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Element-wise `self += other * scale`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// L2 norm of the tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![3., 1., 4., 1.]);
        let i = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_check() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn he_init_is_deterministic_and_scaled() {
        let a = Tensor::he_init(&[100, 100], 100, 42);
        let b = Tensor::he_init(&[100, 100], 100, 42);
        let c = Tensor::he_init(&[100, 100], 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Std should be near sqrt(2/100) ≈ 0.141.
        let mean = a.sum() / a.len() as f32;
        let var = a.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / a.len() as f32;
        assert!((var.sqrt() - 0.1414).abs() < 0.02, "std = {}", var.sqrt());
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![10., 10., 10.]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6., 7., 8.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        a.reshape(&[3, 2]);
        assert_eq!(a.shape(), &[3, 2]);
        assert_eq!(a.data()[4], 5.0);
    }

    #[test]
    #[should_panic(expected = "preserve")]
    fn reshape_checks_count() {
        Tensor::zeros(&[2, 2]).reshape(&[5]);
    }

    #[test]
    fn norm_matches_manual() {
        let a = Tensor::from_vec(&[2], vec![3., 4.]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }
}
