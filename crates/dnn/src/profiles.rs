//! The paper's Table 1 model profiles.
//!
//! The evaluation's dependence on the Keras models reduces to three
//! quantities per model: how many trainable tensors a step must allreduce,
//! how many parameters they hold in total (⇒ bytes moved per step and per
//! checkpoint), and the network depth. A [`ModelProfile`] captures exactly
//! those, plus a deterministic synthetic tensor-size distribution that
//! matches the totals, so benches can drive the real collective stack with
//! the real message-size mix without instantiating a 549 MB Keras model.

/// A named model profile (one row of the paper's Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct ModelProfile {
    /// Model name as in the paper.
    pub name: &'static str,
    /// Number of trainable tensors ("Trainable" column) — the number of
    /// allreduce buffers per step before fusion.
    pub trainable_tensors: usize,
    /// Network depth ("Depth" column).
    pub depth: usize,
    /// Total trainable parameters.
    pub total_params: u64,
    /// Checkpoint/state size in MiB ("Size (MB)" column): `params × 4 B`.
    pub size_mb: f64,
}

impl ModelProfile {
    /// VGG-16: few tensors, huge ones (143.7 M parameters, 549 MB).
    pub fn vgg16() -> Self {
        Self {
            name: "VGG-16",
            trainable_tensors: 32,
            depth: 16,
            total_params: 143_700_000,
            size_mb: 549.0,
        }
    }

    /// ResNet50V2: mid-size (25.6 M parameters, 98 MB, 272 tensors).
    pub fn resnet50v2() -> Self {
        Self {
            name: "ResNet50V2",
            trainable_tensors: 272,
            depth: 307,
            total_params: 25_600_000,
            size_mb: 98.0,
        }
    }

    /// NasNetMobile: many tiny tensors (5.3 M parameters, 23 MB, 1126).
    pub fn nasnet_mobile() -> Self {
        Self {
            name: "NasNetMobile",
            trainable_tensors: 1126,
            depth: 389,
            total_params: 5_300_000,
            size_mb: 23.0,
        }
    }

    /// State bytes (f32 parameters).
    pub fn state_bytes(&self) -> u64 {
        self.total_params * 4
    }

    /// Deterministic per-tensor parameter counts: a geometric size ladder
    /// (few large tensors, many small — the shape real CNNs have), scaled
    /// to sum exactly to `total_params`.
    pub fn tensor_sizes(&self) -> Vec<u64> {
        let n = self.trainable_tensors;
        assert!(
            self.total_params >= n as u64,
            "fewer parameters than tensors"
        );
        // Every tensor gets one guaranteed parameter; the remaining budget
        // is split along a geometric ladder whose largest rung is ≈ 1000×
        // the smallest (roughly VGG's fc1-vs-bias spread). Floors keep the
        // split exact-summable; the rounding remainder tops up the largest
        // tensor. The construction is exact, positive, and weakly
        // descending after the final reverse — for any total ≥ n.
        let ratio = 1000.0_f64.powf(1.0 / (n.max(2) - 1) as f64);
        let weights: Vec<f64> = (0..n).map(|i| ratio.powi(i as i32)).collect();
        let total_w: f64 = weights.iter().sum();
        let budget = self.total_params - n as u64;
        let mut sizes: Vec<u64> = weights
            .iter()
            .map(|w| 1 + ((w / total_w) * budget as f64).floor() as u64)
            .collect();
        let assigned: u64 = sizes.iter().sum();
        let largest = sizes.len() - 1;
        sizes[largest] += self.total_params - assigned;
        sizes.reverse(); // largest first, as frameworks typically register
        sizes
    }

    /// A down-scaled copy (for wall-clock benches on the threaded runtime):
    /// divides parameter counts by `factor`, keeping the tensor-count mix.
    pub fn scaled_down(&self, factor: u64) -> ModelProfile {
        assert!(factor >= 1);
        ModelProfile {
            name: self.name,
            trainable_tensors: self.trainable_tensors,
            depth: self.depth,
            total_params: (self.total_params / factor).max(self.trainable_tensors as u64),
            size_mb: self.size_mb / factor as f64,
        }
    }

    /// Per-step allreduce bytes (gradients are f32, one per parameter).
    pub fn gradient_bytes_per_step(&self) -> u64 {
        self.state_bytes()
    }
}

/// The three paper models, in Table 1 order.
pub fn paper_models() -> Vec<ModelProfile> {
    vec![
        ModelProfile::vgg16(),
        ModelProfile::resnet50v2(),
        ModelProfile::nasnet_mobile(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let m = paper_models();
        assert_eq!(m[0].name, "VGG-16");
        assert_eq!(m[0].trainable_tensors, 32);
        assert_eq!(m[0].depth, 16);
        assert_eq!(m[0].total_params, 143_700_000);
        assert_eq!(m[1].name, "ResNet50V2");
        assert_eq!(m[1].trainable_tensors, 272);
        assert_eq!(m[2].name, "NasNetMobile");
        assert_eq!(m[2].trainable_tensors, 1126);
    }

    #[test]
    fn size_mb_consistent_with_params() {
        // Table 1's MB column should be ≈ params × 4 B in MiB.
        for m in paper_models() {
            let mib = m.state_bytes() as f64 / (1024.0 * 1024.0);
            // Keras's quoted sizes include small non-trainable buffers, so
            // allow a modest tolerance (NasNetMobile is ~12% off pure-f32).
            let rel = (mib - m.size_mb).abs() / m.size_mb;
            assert!(
                rel < 0.15,
                "{}: {mib:.1} MiB vs quoted {}",
                m.name,
                m.size_mb
            );
        }
    }

    #[test]
    fn tensor_sizes_sum_exactly() {
        for m in paper_models() {
            let sizes = m.tensor_sizes();
            assert_eq!(sizes.len(), m.trainable_tensors, "{}", m.name);
            assert_eq!(sizes.iter().sum::<u64>(), m.total_params, "{}", m.name);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn tensor_sizes_are_skewed_largest_first() {
        let sizes = ModelProfile::vgg16().tensor_sizes();
        assert!(sizes[0] > sizes[sizes.len() - 1] * 100, "not skewed enough");
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "not sorted descending");
        }
    }

    #[test]
    fn scaled_down_preserves_mix() {
        let m = ModelProfile::vgg16().scaled_down(1000);
        assert_eq!(m.trainable_tensors, 32);
        assert_eq!(m.total_params, 143_700);
        assert_eq!(m.tensor_sizes().len(), 32);
        assert_eq!(m.tensor_sizes().iter().sum::<u64>(), 143_700);
    }

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(
            ModelProfile::nasnet_mobile().tensor_sizes(),
            ModelProfile::nasnet_mobile().tensor_sizes()
        );
    }
}
