//! A minimal-but-real deep-learning framework.
//!
//! The paper trains Keras image models (VGG-16, ResNet50V2, NasNetMobile)
//! on ImageNet across data-parallel workers. Neither Keras nor ImageNet is
//! available here, so this crate provides the two things the evaluation
//! actually depends on:
//!
//! 1. **A trainable network** — real tensors, dense/conv/ReLU layers,
//!    softmax cross-entropy, SGD with momentum, and in-memory checkpoints —
//!    so the elastic engines in the `elastic` crate train something whose
//!    loss genuinely decreases, and whose gradients are real data flowing
//!    through the resilient collectives.
//! 2. **Model profiles** ([`profiles`]) replicating the paper's Table 1
//!    models in the quantities that drive the evaluation: trainable-tensor
//!    count, parameter count, and checkpoint size. Those determine the
//!    number and sizes of allreduce operations per step and the cost of
//!    checkpoint save/load/broadcast — which is all the recovery
//!    experiments measure.
//!
//! Everything is deterministic under a `u64` seed.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod data;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod profiles;
pub mod tensor;

pub use checkpoint::{Checkpoint, InMemoryCheckpointStore};
pub use data::{Batch, SyntheticDataset};
pub use layers::{Conv2d, Dense, Flatten, Layer, ReLU};
pub use model::{Model, TrainReport};
pub use optim::{LrSchedule, Sgd};
pub use profiles::{paper_models, ModelProfile};
pub use tensor::Tensor;
