//! In-memory checkpoints of the full training state.
//!
//! The paper's baseline (Elastic Horovod) recovers by rolling back to a
//! checkpoint taken at minimum every mini-batch (§3.2, Fig. 2); for
//! comparability its evaluation uses **memory** checkpoints, excluding
//! parallel-file-system cost (§4.1). We reproduce that: a checkpoint is a
//! serialized byte image of (step, model parameters, optimizer state), and
//! the store is a shared in-memory slot.

use crate::model::Model;
use crate::optim::Sgd;
use crate::tensor::Tensor;
use std::sync::{Arc, Mutex};
use transport::Wire;

/// A serialized training-state snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Optimizer step at which the snapshot was taken.
    pub step: u64,
    /// Serialized payload.
    pub bytes: Vec<u8>,
}

impl Checkpoint {
    /// Capture model + optimizer into a checkpoint.
    pub fn capture(model: &Model, opt: &Sgd) -> Self {
        let (step, velocity) = opt.state_vec();
        let flat = model.state_flat();
        let mut payload: Vec<u8> = Vec::new();
        // Header: step, #param floats, #velocity tensors.
        step.write(&mut payload);
        (flat.len() as u64).write(&mut payload);
        (velocity.len() as u64).write(&mut payload);
        payload.extend_from_slice(&f32::encode_slice(&flat));
        for v in &velocity {
            (v.len() as u64).write(&mut payload);
            payload.extend_from_slice(&f32::encode_slice(v.data()));
        }
        Self {
            step,
            bytes: payload,
        }
    }

    /// Restore model + optimizer from this checkpoint.
    ///
    /// # Panics
    /// Panics if the byte image does not match the model's architecture —
    /// checkpoints are only valid for the run that produced them.
    pub fn restore(&self, model: &mut Model, opt: &mut Sgd) {
        let b = &self.bytes;
        let mut pos = 0usize;
        let read_u64 = |pos: &mut usize| {
            let v = u64::read(&b[*pos..*pos + 8]);
            *pos += 8;
            v
        };
        let step = read_u64(&mut pos);
        let n_flat = read_u64(&mut pos) as usize;
        let n_vel = read_u64(&mut pos) as usize;
        let flat = f32::decode_slice(&b[pos..pos + n_flat * 4]);
        pos += n_flat * 4;
        model.load_state_flat(&flat);
        let mut velocity = Vec::with_capacity(n_vel);
        for _ in 0..n_vel {
            let len = u64::read(&b[pos..pos + 8]) as usize;
            pos += 8;
            let vals = f32::decode_slice(&b[pos..pos + len * 4]);
            pos += len * 4;
            velocity.push(Tensor::from_vec(&[len], vals));
        }
        assert_eq!(pos, b.len(), "trailing bytes in checkpoint");
        opt.restore(step, velocity);
    }

    /// Size of the serialized image in bytes (drives the cost model).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }
}

/// A shared single-slot in-memory checkpoint store (latest wins), as the
/// paper's memory-checkpoint setup uses.
#[derive(Clone, Default)]
pub struct InMemoryCheckpointStore {
    slot: Arc<Mutex<Option<Checkpoint>>>,
}

impl InMemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Save (replacing any previous checkpoint).
    pub fn save(&self, ckpt: Checkpoint) {
        *self.slot.lock().unwrap() = Some(ckpt);
    }

    /// Load the most recent checkpoint, if any.
    pub fn load(&self) -> Option<Checkpoint> {
        self.slot.lock().unwrap().clone()
    }

    /// The step of the most recent checkpoint.
    pub fn latest_step(&self) -> Option<u64> {
        self.slot.lock().unwrap().as_ref().map(|c| c.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;

    fn trained_pair() -> (Model, Sgd, SyntheticDataset) {
        let mut m = Model::mlp(6, &[12], 3, 5);
        let mut o = Sgd::new(0.05, 0.9);
        let ds = SyntheticDataset::new(6, 3, 8);
        for step in 0..5 {
            m.compute_gradients(&ds.batch(step, 16));
            o.step(&mut m.params_mut());
        }
        (m, o, ds)
    }

    #[test]
    fn capture_restore_roundtrip_bitexact() {
        let (mut m, mut o, ds) = trained_pair();
        let ckpt = Checkpoint::capture(&m, &o);
        assert_eq!(ckpt.step, 5);

        // Continue training the original for 3 steps → trajectory A.
        let mut trajectory_a = Vec::new();
        for step in 5..8 {
            let r = m.compute_gradients(&ds.batch(step, 16));
            o.step(&mut m.params_mut());
            trajectory_a.push(r.loss);
        }

        // Restore into fresh objects and replay → must match bit-exactly.
        let mut m2 = Model::mlp(6, &[12], 3, 999);
        let mut o2 = Sgd::new(0.05, 0.9);
        ckpt.restore(&mut m2, &mut o2);
        assert_eq!(o2.step_count(), 5);
        let mut trajectory_b = Vec::new();
        for step in 5..8 {
            let r = m2.compute_gradients(&ds.batch(step, 16));
            o2.step(&mut m2.params_mut());
            trajectory_b.push(r.loss);
        }
        assert_eq!(trajectory_a, trajectory_b);
    }

    #[test]
    fn checkpoint_size_scales_with_params() {
        let (m, o, _) = trained_pair();
        let ckpt = Checkpoint::capture(&m, &o);
        let params = m.num_params();
        // params + velocities ≈ 2× params of f32, plus small headers.
        let expected = params * 4 * 2;
        assert!(
            ckpt.size_bytes() >= expected && ckpt.size_bytes() < expected + 256,
            "size {} vs expected ≈{}",
            ckpt.size_bytes(),
            expected
        );
    }

    #[test]
    fn store_keeps_latest() {
        let store = InMemoryCheckpointStore::new();
        assert!(store.load().is_none());
        let (m, o, _) = trained_pair();
        let c1 = Checkpoint::capture(&m, &o);
        store.save(c1.clone());
        assert_eq!(store.latest_step(), Some(5));
        let c2 = Checkpoint {
            step: 9,
            bytes: c1.bytes.clone(),
        };
        store.save(c2);
        assert_eq!(store.latest_step(), Some(9));
    }

    #[test]
    fn restore_before_any_velocity_works() {
        // Checkpoint taken before the first optimizer step has no velocity.
        let m = Model::mlp(4, &[], 2, 1);
        let o = Sgd::new(0.1, 0.9);
        let ckpt = Checkpoint::capture(&m, &o);
        let mut m2 = Model::mlp(4, &[], 2, 2);
        let mut o2 = Sgd::new(0.1, 0.9);
        ckpt.restore(&mut m2, &mut o2);
        assert_eq!(m2.state_flat(), m.state_flat());
        assert_eq!(o2.step_count(), 0);
    }
}
