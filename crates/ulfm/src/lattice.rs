//! Lattice-agreement view changes: the fast path for deciding failed sets.
//!
//! The flood-set protocol in [`crate::agree`] runs `p` full-exchange rounds
//! per agreement, and [`crate::Communicator::shrink_with`] re-enters it once
//! per generation — so a burst of `k` concurrent failures, discovered one
//! wave at a time, costs up to `k` re-agreements. This module replaces the
//! hot path with **lattice agreement**: each member proposes its suspicion
//! set, proposals merge by join-semilattice union ([`Proposal::join`]), and
//! a member decides — without total order — as soon as its proposal is
//! *stable* (one full exchange round changed nothing and no new death was
//! observed). Failure-free convergence takes two exchange rounds plus one
//! decide echo, independent of `p`.
//!
//! The protocol is itself survivable. A death observed mid-round (a
//! `PeerDead` on the round's send or receive) **widens the in-flight
//! proposal** — the dead rank joins the suspicion bitmap — instead of
//! restarting the agreement, so `k` concurrent failures, including failures
//! of lattice participants during the round, resolve in one view change.
//! Three named fault points script deaths inside the protocol:
//! `lattice.propose` (entry of each exchange round), `lattice.ack` (between
//! a round's send and receive phases), and `lattice.decide` (before the
//! decide echo).
//!
//! **Uniformity.** Messages carry a `decided` marker. A member that decides
//! broadcasts its decided proposal once more (the *decide echo*) before
//! returning; a member that receives any decided proposal adopts it
//! wholesale — replacing even a locally wider proposal — and echoes in
//! turn. Two members that decide by stability in the same round have
//! exchanged proposals in that round with no change, so their proposals are
//! mutually ≤ and hence equal; a member cannot decide by stability in a
//! later round without first receiving (and adopting) the earlier decider's
//! echo, because the echo goes to every non-suspected peer and a failed
//! echo delivery surfaces as a new death, which blocks stability. A death
//! that a decided proposal does not report is caught by the next agreement
//! — the same doctrine as flood-set (see [`crate::agree::AgreeResult`]),
//! enforced by `shrink_with`'s verify generation.

use crate::agree::AgreeResult;
use crate::error::UlfmError;
use transport::{Endpoint, RankId, TransportError, Wire};

/// Which uniform-agreement protocol a [`crate::Communicator`] runs under
/// [`crate::Communicator::agree`] (and therefore inside every shrink, join
/// commit, and policy commit). Inherited by every derived communicator
/// (shrink candidates, splits, join-merged and spare-promoted groups).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AgreeImpl {
    /// The p-round flood-set protocol — the seed implementation, kept as
    /// the fallback and the conformance oracle for the lattice fast path.
    #[default]
    Flood,
    /// Incremental lattice agreement: decide on proposal stability, absorb
    /// mid-protocol deaths by widening instead of restarting.
    Lattice,
}

impl AgreeImpl {
    /// Stable lowercase name, used in telemetry and bench tables.
    pub fn name(self) -> &'static str {
        match self {
            AgreeImpl::Flood => "flood",
            AgreeImpl::Lattice => "lattice",
        }
    }
}

/// One member's proposal: an element of the product join-semilattice the
/// protocol converges on. `flags` merge by AND, `min` by minimum, and the
/// suspicion `bitmap` by union — the same element the flood-set protocol
/// floods, exposed here so the semilattice laws are directly testable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proposal {
    /// Bitwise-AND-merged flag word.
    pub flags: u64,
    /// Min-merged auxiliary value.
    pub min: u64,
    /// Union-merged suspicion bitmap over group-local indices.
    pub bitmap: Vec<u64>,
}

impl Proposal {
    /// A fresh proposal for a group of `p` members.
    pub fn new(flags: u64, min: u64, p: usize) -> Self {
        Self {
            flags,
            min,
            bitmap: vec![0u64; p.div_ceil(64).max(1)],
        }
    }

    /// Semilattice join: merge `other` into `self`. Associative,
    /// commutative, and idempotent in each component.
    pub fn join(&mut self, other: &Proposal) {
        assert_eq!(
            self.bitmap.len(),
            other.bitmap.len(),
            "lattice proposal width mismatch"
        );
        self.flags &= other.flags;
        self.min = self.min.min(other.min);
        for (b, w) in self.bitmap.iter_mut().zip(&other.bitmap) {
            *b |= w;
        }
    }

    /// Mark group-local index `i` suspected (widen the proposal).
    pub fn suspect(&mut self, i: usize) {
        self.bitmap[i / 64] |= 1 << (i % 64);
    }

    /// Is group-local index `i` suspected?
    pub fn is_suspected(&self, i: usize) -> bool {
        self.bitmap[i / 64] >> (i % 64) & 1 == 1
    }

    fn encode(&self, decided: bool) -> Vec<u8> {
        let mut words = Vec::with_capacity(3 + self.bitmap.len());
        words.push(decided as u64);
        words.push(self.flags);
        words.push(self.min);
        words.extend_from_slice(&self.bitmap);
        u64::encode_slice(&words)
    }

    fn decode(bytes: &[u8], p: usize) -> (bool, Proposal) {
        let words = u64::decode_slice(bytes);
        let width = p.div_ceil(64).max(1);
        assert_eq!(words.len(), 3 + width, "lattice payload mismatch");
        (
            words[0] != 0,
            Proposal {
                flags: words[1],
                min: words[2],
                bitmap: words[3..].to_vec(),
            },
        )
    }

    fn into_result(self, group: &[RankId]) -> AgreeResult {
        let failed = group
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.is_suspected(i))
            .map(|(_, &g)| g)
            .collect();
        AgreeResult {
            flags: self.flags,
            min: self.min,
            failed,
        }
    }
}

/// Run lattice agreement over `group` (global rank ids, dense order).
///
/// `tag_base` must be a fresh recovery-class tag window; the protocol uses
/// offset `r` for exchange round `r` and `r+1` for a round-`r` decider's
/// echo. Returns the uniformly decided [`AgreeResult`]; unlike flood-set,
/// the failed set includes members that die *during* the protocol (their
/// deaths widen the in-flight proposal), which is what lets a `k`-failure
/// burst resolve in a single shrink generation.
///
/// `verify` marks re-entries from `shrink_with`'s candidate-verification
/// loop so their rounds are accounted under `ulfm.shrink.verify_rounds`
/// rather than inflating `ulfm.lattice.rounds`.
pub fn lattice_agree(
    ep: &Endpoint,
    group: &[RankId],
    my_idx: usize,
    tag_base: u64,
    flag: u64,
    min_val: u64,
    verify: bool,
) -> Result<AgreeResult, UlfmError> {
    let p = group.len();
    let mut prop = Proposal::new(flag, min_val, p);
    // Freeze current detector knowledge as the initial proposal; later
    // discoveries widen it in flight.
    for (i, &g) in group.iter().enumerate() {
        if !ep.is_peer_alive(g) && g != ep.rank() {
            prop.suspect(i);
        }
    }
    if p <= 1 {
        return Ok(prop.into_result(group));
    }

    let rounds_ctr = telemetry::counter(if verify {
        "ulfm.shrink.verify_rounds"
    } else {
        "ulfm.lattice.rounds"
    });
    let mut bytes_sent = 0u64;
    let mut round = 0u64;
    loop {
        // Budget: a failure-free run decides in 2 rounds; every extra round
        // is caused by at least one newly observed death or one adopted
        // echo, and there are only p members to lose.
        assert!(
            round < 2 * p as u64 + 4,
            "lattice agreement failed to converge within its round budget"
        );
        rounds_ctr.incr();
        ep.fault_point("lattice.propose").map_err(map_self)?;
        let tag = tag_base + round;
        let payload = prop.encode(false);
        let mut new_death = false;
        for (i, &peer) in group.iter().enumerate() {
            if i == my_idx || prop.is_suspected(i) {
                continue;
            }
            match ep.send(peer, tag, &payload) {
                Ok(()) => bytes_sent += payload.len() as u64,
                Err(TransportError::PeerDead(_)) => {
                    prop.suspect(i);
                    new_death = true;
                }
                Err(TransportError::SelfDied) => return Err(UlfmError::SelfDied),
                Err(e) => unreachable!("lattice send: {e}"),
            }
        }
        ep.fault_point("lattice.ack").map_err(map_self)?;
        let pre = prop.clone();
        let mut adopted = false;
        for (i, &peer) in group.iter().enumerate() {
            // Receive only from peers not already suspected when the round
            // started (they were sent to); peers that died during the send
            // phase still owe nothing we would block on — their mailbox
            // reports the death immediately.
            if i == my_idx || pre.is_suspected(i) {
                continue;
            }
            match ep.recv(peer, tag) {
                Ok(bytes) => {
                    let (decided, theirs) = Proposal::decode(&bytes, p);
                    if adopted {
                        // Already bound to a decided proposal; later
                        // traffic in this round cannot change it.
                    } else if decided {
                        // Adopt wholesale — even over a locally wider
                        // proposal. The extra death we observed is caught
                        // by the next agreement (shrink's verify).
                        prop = theirs;
                        adopted = true;
                    } else {
                        prop.join(&theirs);
                    }
                }
                Err(TransportError::PeerDead(_)) => {
                    if !adopted {
                        prop.suspect(i);
                        new_death = true;
                    }
                }
                Err(TransportError::SelfDied) => return Err(UlfmError::SelfDied),
                Err(e) => unreachable!("lattice recv: {e}"),
            }
        }
        if adopted || (!new_death && prop == pre) {
            if !verify {
                telemetry::histogram("ulfm.lattice.decide_round").record(round + 1);
            }
            break;
        }
        round += 1;
    }

    // Decide echo: one send-only round so stragglers adopt this exact
    // proposal instead of deciding on a wider one of their own.
    ep.fault_point("lattice.decide").map_err(map_self)?;
    let tag = tag_base + round + 1;
    let payload = prop.encode(true);
    for (i, &peer) in group.iter().enumerate() {
        if i == my_idx || prop.is_suspected(i) {
            continue;
        }
        match ep.send(peer, tag, &payload) {
            Ok(()) => bytes_sent += payload.len() as u64,
            Err(TransportError::PeerDead(_)) => {}
            Err(TransportError::SelfDied) => return Err(UlfmError::SelfDied),
            Err(e) => unreachable!("lattice echo: {e}"),
        }
    }
    telemetry::histogram("ulfm.agree.bytes").record(bytes_sent);
    Ok(prop.into_result(group))
}

fn map_self(e: TransportError) -> UlfmError {
    match e {
        TransportError::SelfDied => UlfmError::SelfDied,
        other => unreachable!("fault point returned {other}"),
    }
}

/// Telemetry counters are process-global, so unit tests that assert on
/// `ulfm.lattice.*` deltas must not interleave with other tests that run
/// the protocol. Every lattice-running unit test in this crate takes this
/// lock.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags;
    use std::sync::Arc;
    use transport::{Fabric, FaultInjector, FaultPlan, Topology};

    fn run_lattice(
        n: usize,
        plan: FaultPlan,
        pre_kill: &[usize],
        flag_of: impl Fn(usize) -> u64 + Send + Sync,
        min_of: impl Fn(usize) -> u64 + Send + Sync,
    ) -> Vec<Result<AgreeResult, UlfmError>> {
        let fabric = Fabric::new(Topology::flat(), FaultInjector::new(plan));
        let group = fabric.register_ranks(n);
        for &k in pre_kill {
            fabric.kill_rank(group[k]);
        }
        let flag_of = &flag_of;
        let min_of = &min_of;
        let group_ref = &group;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .filter(|i| !pre_kill.contains(i))
                .map(|i| {
                    let fabric = Arc::clone(&fabric);
                    s.spawn(move || {
                        let ep = Endpoint::new(fabric, group_ref[i]);
                        lattice_agree(
                            &ep,
                            group_ref,
                            i,
                            tags::recovery_base(0, 0),
                            flag_of(i),
                            min_of(i),
                            false,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn assert_uniform(results: &[Result<AgreeResult, UlfmError>]) -> AgreeResult {
        let oks: Vec<&AgreeResult> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        assert!(!oks.is_empty(), "{results:?}");
        for o in &oks[1..] {
            assert_eq!(*o, oks[0], "non-uniform lattice agreement {results:?}");
        }
        oks[0].clone()
    }

    #[test]
    fn failure_free_matches_flood_semantics() {
        let _serial = test_serial();
        let results = run_lattice(
            5,
            FaultPlan::none(),
            &[],
            |i| 0b111 & !(i as u64 & 1),
            |i| 10 + i as u64,
        );
        let r = assert_uniform(&results);
        assert_eq!(r.flags, 0b110);
        assert_eq!(r.min, 10);
        assert!(r.failed.is_empty());
    }

    #[test]
    fn single_member_is_trivial() {
        let _serial = test_serial();
        let results = run_lattice(1, FaultPlan::none(), &[], |_| 7, |_| 3);
        assert_eq!(
            results[0].as_ref().unwrap(),
            &AgreeResult {
                flags: 7,
                min: 3,
                failed: vec![]
            }
        );
    }

    #[test]
    fn pre_dead_members_decided_uniformly() {
        let _serial = test_serial();
        let results = run_lattice(6, FaultPlan::none(), &[2, 4], |_| 1, |_| 0);
        let r = assert_uniform(&results);
        assert_eq!(r.failed, vec![RankId(2), RankId(4)]);
    }

    #[test]
    fn death_at_each_fault_point_keeps_result_uniform() {
        let _serial = test_serial();
        // propose/ack fire once per exchange round; decide fires exactly
        // once (just before the echo), so only occurrence 1 can hit it.
        for (point, max_occ) in [
            ("lattice.propose", 2u64),
            ("lattice.ack", 2),
            ("lattice.decide", 1),
        ] {
            for occurrence in 1..=max_occ {
                let plan = FaultPlan::none().kill_at_point(RankId(1), point, occurrence);
                let results = run_lattice(5, plan, &[], |_| 1, |i| i as u64);
                let r = assert_uniform(&results);
                // The victim may or may not make it into this view's failed
                // set (it can die after the deciders froze), but survivors
                // must agree on whatever the view says.
                assert!(r.failed.is_empty() || r.failed == vec![RankId(1)]);
                assert!(
                    results.iter().any(|r| r == &Err(UlfmError::SelfDied)),
                    "{point}@{occurrence}: victim did not die"
                );
            }
        }
    }

    #[test]
    fn concurrent_burst_widens_in_flight_and_stays_uniform() {
        let _serial = test_serial();
        // Three participants die inside the protocol at different stages;
        // survivors must converge to one decided set without restarting.
        let plan = FaultPlan::none()
            .kill_at_point(RankId(1), "lattice.propose", 1)
            .kill_at_point(RankId(3), "lattice.ack", 1)
            .kill_at_point(RankId(5), "lattice.propose", 2);
        let results = run_lattice(8, plan, &[], |_| 1, |i| i as u64);
        let r = assert_uniform(&results);
        // Deaths at the very first propose happen before the victim sent
        // anything, so every survivor observes them; they must be widened
        // into the decided view rather than deferred.
        assert!(
            r.failed.contains(&RankId(1)),
            "first-round death must be widened into the view: {r:?}"
        );
        assert_eq!(
            results
                .iter()
                .filter(|r| **r == Err(UlfmError::SelfDied))
                .count(),
            3
        );
    }

    #[test]
    fn converges_in_constant_rounds_when_failure_free() {
        let _serial = test_serial();
        // The satellite metric: failure-free lattice agreement decides in 2
        // exchange rounds regardless of p, vs flood's p rounds.
        for n in [2usize, 5, 9, 16] {
            let before = telemetry::counter("ulfm.lattice.rounds").get();
            let results = run_lattice(n, FaultPlan::none(), &[], |_| 1, |_| 0);
            assert_uniform(&results);
            let per_member = (telemetry::counter("ulfm.lattice.rounds").get() - before) / n as u64;
            assert!(
                per_member <= 2,
                "n={n}: {per_member} rounds per member, expected <= 2"
            );
        }
    }
}
