//! Tag-space layout.
//!
//! The transport matches messages on a single 64-bit tag. Communicators
//! namespace their traffic so that no two operations — on the same or
//! different communicators, normal or recovery — can ever confuse their
//! messages:
//!
//! ```text
//!  bits 63..62   bits 61..43        bits 42..20        bits 19..0
//! ┌───────────┬──────────────────┬──────────────────┬───────────────┐
//! │ class     │ communicator id  │ sequence number  │ algo offset   │
//! └───────────┴──────────────────┴──────────────────┴───────────────┘
//!   00 = collective   01 = point-to-point   10 = recovery
//! ```
//!
//! * communicator ids are interned consecutively by the [`crate::Universe`]
//!   (all members derive the same id from the same construction key);
//! * every collective call advances the communicator's sequence number —
//!   collective calls are SPMD-ordered, so all members agree on it;
//! * the algorithm consumes offsets below [`collectives::TAG_SPAN`];
//! * recovery operations (`agree`, and the protocols inside `shrink`) use
//!   their own class and an independent sequence counter, so recovery
//!   traffic can never collide with application traffic even while an
//!   interrupted collective's stale messages are still in flight;
//! * point-to-point traffic carries the user tag in the low bits under its
//!   own class and never advances the collective sequence.

/// Bits for the per-collective algorithm offset.
pub const OFFSET_BITS: u32 = 20;
/// Bits for the per-communicator sequence number.
pub const SEQ_BITS: u32 = 23;
/// Bits for the communicator id.
pub const ID_BITS: u32 = 19;

const CLASS_COLL: u64 = 0;
const CLASS_P2P: u64 = 1;
const CLASS_RECOVERY: u64 = 2;

const _: () = assert!(2 + ID_BITS + SEQ_BITS + OFFSET_BITS == 64);

/// Tag base for a normal collective: `(comm, seq)` with offset 0.
pub fn coll_base(comm_id: u64, seq: u64) -> u64 {
    pack(CLASS_COLL, comm_id, seq, 0)
}

/// Tag base for a recovery operation (agreement, shrink sync).
pub fn recovery_base(comm_id: u64, rec_seq: u64) -> u64 {
    pack(CLASS_RECOVERY, comm_id, rec_seq, 0)
}

/// Tag for a point-to-point message with a user tag.
pub fn p2p(comm_id: u64, user_tag: u64) -> u64 {
    assert!(user_tag < (1 << OFFSET_BITS), "user tag too large");
    pack(CLASS_P2P, comm_id, 0, user_tag)
}

/// Does `tag` belong to communicator `comm_id` (any class)?
pub fn belongs_to(tag: u64, comm_id: u64) -> bool {
    (tag >> (SEQ_BITS + OFFSET_BITS)) & ((1 << ID_BITS) - 1) == comm_id
}

fn pack(class: u64, comm_id: u64, seq: u64, offset: u64) -> u64 {
    assert!(comm_id < (1 << ID_BITS), "communicator id space exhausted");
    assert!(seq < (1 << SEQ_BITS), "sequence number space exhausted");
    (class << 62) | (comm_id << (SEQ_BITS + OFFSET_BITS)) | (seq << OFFSET_BITS) | offset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_disjoint() {
        assert_ne!(coll_base(1, 1), recovery_base(1, 1));
        assert_ne!(coll_base(1, 0), p2p(1, 0));
        assert_ne!(recovery_base(1, 0), p2p(1, 0));
    }

    #[test]
    fn sequences_are_disjoint() {
        assert_ne!(coll_base(1, 1), coll_base(1, 2));
        assert_ne!(coll_base(1, 1), coll_base(2, 1));
    }

    #[test]
    fn offsets_do_not_bleed_into_seq() {
        let base = coll_base(3, 7);
        assert!(belongs_to(base + collectives::TAG_SPAN - 1, 3));
        assert_eq!(
            (base + collectives::TAG_SPAN - 1) >> OFFSET_BITS,
            base >> OFFSET_BITS
        );
    }

    #[test]
    fn belongs_to_sees_all_classes() {
        assert!(belongs_to(recovery_base(5, 0) + 17, 5));
        assert!(belongs_to(p2p(5, 3), 5));
        assert!(!belongs_to(recovery_base(5, 0), 6));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflow_is_caught() {
        coll_base(1 << ID_BITS, 0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn p2p_user_tag_bounded() {
        p2p(0, 1 << OFFSET_BITS);
    }
}
