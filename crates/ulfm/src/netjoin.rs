//! Store-backed join rendezvous for multi-process elastic launches.
//!
//! The in-process [`crate::Universe`] runs its join handshake through a
//! shared [`crate::universe::JoinService`] object. Across real OS processes
//! there is no shared memory, so [`NetJoin`] re-implements the same service
//! surface on top of a [`gloo::Store`] (the rendezvous KV store every
//! worker can already reach): joiners *announce* by publishing a key,
//! members *snapshot* the announced set by scanning a prefix, and a
//! committed admission is materialised as a per-joiner *ticket* key that
//! the joiner polls for. The two-phase commit itself (leader proposal
//! broadcast + uniform agreement) still runs over the collective fabric in
//! [`crate::Communicator::accept_joiners_directed`]; the store only carries
//! the out-of-band rendezvous state, exactly like Horovod's driver store.
//!
//! Key schema under the configured run `prefix`:
//!
//! | key | value |
//! |---|---|
//! | `{prefix}join/announce/{rank:08}` | joiner's dialable address (may be empty) |
//! | `{prefix}join/spare/{rank:08}` | warm spare's dialable address (may be empty) |
//! | `{prefix}join/ticket/{rank:08}` | committed ticket, LE u64 words `[epoch, comm_id+1, n, ranks…]` (`comm_id+1 = 0` encodes `None`), or the `DISMISS` sentinel |
//! | `{prefix}join/abort` | present ⇒ the computation aborted; waiters exit |
//! | `{prefix}addr/{rank:08}` | contact address of an established member |
//!
//! Spare announces live under their own prefix so the epoch-boundary join
//! path never drains the warm pool; a dismissed spare's ticket key holds
//! the `DISMISS` sentinel (which also removes it from future spare
//! snapshots, making dismissal idempotent across processes).
//!
//! Announce keys are never deleted — `announced_total` stays monotone (the
//! leader's give-up heuristic depends on that) and the *pending* set is
//! derived as announced-minus-ticketed, so leader failover re-reads the
//! same pending joiners a dead leader saw.
//!
//! Every store operation is fallible ([`gloo::StoreUnavailable`]) and is
//! wrapped in bounded retry with exponential backoff plus deterministic
//! jitter (hash of operation name and attempt — no wall-clock entropy).
//! Retries are counted under `ulfm.netjoin.store_retries`.

use crate::universe::{JoinService, JoinTicket};
use crate::UlfmError;
use gloo::{Store, StoreUnavailable};
use std::time::{Duration, Instant};
use transport::RankId;

/// Bounded attempts for one logical store operation before giving up.
const STORE_ATTEMPTS: u32 = 64;
/// First backoff sleep; doubles per attempt.
const BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_millis(50);
/// Poll interval while a joiner waits for its ticket.
const TICKET_POLL: Duration = Duration::from_millis(2);

/// Sentinel ticket value marking a *dismissed* spare. Deliberately not a
/// multiple of 8 bytes so it can never be confused with an encoded ticket.
const DISMISS_SENTINEL: &[u8] = b"DISMISS";

/// Deterministic jitter in microseconds for retry `attempt` of operation
/// `what`: FNV-1a over the name, splitmix64-finalised with the attempt
/// index. No `SystemTime`/`rand` — schedules are reproducible.
fn jitter_us(what: &str, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in what.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    let mut z = h
        .wrapping_add(attempt as u64)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 500
}

fn encode_ticket(t: &JoinTicket) -> Vec<u8> {
    let mut words = Vec::with_capacity(3 + t.group.len());
    words.push(t.epoch);
    words.push(t.comm_id.map_or(0, |id| id + 1));
    words.push(t.group.len() as u64);
    words.extend(t.group.iter().map(|r| r.0 as u64));
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn decode_ticket(bytes: &[u8]) -> Option<JoinTicket> {
    if !bytes.len().is_multiple_of(8) || bytes.len() < 24 {
        return None;
    }
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let n = words[2] as usize;
    if words.len() != 3 + n {
        return None;
    }
    Some(JoinTicket {
        group: words[3..].iter().map(|&w| RankId(w as usize)).collect(),
        epoch: words[0],
        comm_id: words[1].checked_sub(1),
    })
}

/// [`JoinService`] over a rendezvous [`Store`]: the network counterpart of
/// the in-process `JoinServer`, used by every rank of a multi-process
/// elastic job (members and joiners alike share the same store prefix).
pub struct NetJoin<S: Store> {
    store: S,
    prefix: String,
    /// This process's dialable listener address; published with announce
    /// (joiners) or via [`NetJoin::publish_contact`] (members) so peers can
    /// establish late links at ticket time.
    contact: Option<String>,
}

impl<S: Store> NetJoin<S> {
    /// A join service rooted at `prefix` (typically `"{run_id}/"`; keys for
    /// distinct runs must not collide).
    pub fn new(store: S, prefix: impl Into<String>) -> Self {
        Self {
            store,
            prefix: prefix.into(),
            contact: None,
        }
    }

    /// Attach this process's dialable address, published alongside its
    /// announce/contact keys.
    pub fn with_contact(mut self, addr: impl Into<String>) -> Self {
        self.contact = Some(addr.into());
        self
    }

    /// Publish this process's contact address under the member-address key
    /// for `rank`. Established members call this once after binding so
    /// late joiners can dial them (see [`JoinService::contact`]).
    pub fn publish_contact(&self, rank: RankId) {
        let addr = self.contact.clone().unwrap_or_default();
        self.retry("publish_contact", || {
            self.store
                .try_set(&self.addr_key(rank), addr.clone().into_bytes())
        });
    }

    fn announce_key(&self, rank: RankId) -> String {
        format!("{}join/announce/{:08}", self.prefix, rank.0)
    }

    fn spare_key(&self, rank: RankId) -> String {
        format!("{}join/spare/{:08}", self.prefix, rank.0)
    }

    fn ticket_key(&self, rank: RankId) -> String {
        format!("{}join/ticket/{:08}", self.prefix, rank.0)
    }

    fn abort_key(&self) -> String {
        format!("{}join/abort", self.prefix)
    }

    fn addr_key(&self, rank: RankId) -> String {
        format!("{}addr/{:08}", self.prefix, rank.0)
    }

    /// Run `op` with bounded retry, exponential backoff and deterministic
    /// jitter. `None` after [`STORE_ATTEMPTS`] consecutive failures — the
    /// caller treats that as "state unknown" and its own polling loop (or
    /// the collective commit) absorbs the gap.
    fn retry<T>(
        &self,
        what: &str,
        mut op: impl FnMut() -> Result<T, StoreUnavailable>,
    ) -> Option<T> {
        let mut backoff = BACKOFF_BASE;
        for attempt in 0..STORE_ATTEMPTS {
            match op() {
                Ok(v) => return Some(v),
                Err(StoreUnavailable) => {
                    telemetry::counter("ulfm.netjoin.store_retries").incr();
                    std::thread::sleep(backoff + Duration::from_micros(jitter_us(what, attempt)));
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
            }
        }
        telemetry::counter("ulfm.netjoin.store_gave_up").incr();
        None
    }

    /// Exact-key read via prefix scan (the store surface has no point get).
    fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.retry("get", || self.store.try_scan_prefix(key))?
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Rank parsed from the zero-padded tail of a schema key.
    fn key_rank(key: &str) -> Option<RankId> {
        key.rsplit('/').next()?.parse::<usize>().ok().map(RankId)
    }
}

impl<S: Store> JoinService for NetJoin<S> {
    fn announce(&self, rank: RankId) {
        let addr = self.contact.clone().unwrap_or_default();
        self.retry("announce", || {
            self.store
                .try_set(&self.announce_key(rank), addr.clone().into_bytes())
        });
        if self.contact.is_some() {
            // Mirror under the member-address key: after the merge commits
            // this joiner *is* a member, and later joiners dial it there.
            self.publish_contact(rank);
        }
    }

    fn announced_total(&self) -> u64 {
        let prefix = format!("{}join/announce/", self.prefix);
        self.retry("announced_total", || self.store.try_count_prefix(&prefix))
            .unwrap_or(0) as u64
    }

    fn snapshot_pending(&self, alive: &dyn Fn(RankId) -> bool) -> Vec<RankId> {
        let ann_prefix = format!("{}join/announce/", self.prefix);
        let tkt_prefix = format!("{}join/ticket/", self.prefix);
        let Some(announced) =
            self.retry("scan_announced", || self.store.try_scan_prefix(&ann_prefix))
        else {
            return Vec::new();
        };
        let ticketed: Vec<RankId> = self
            .retry("scan_ticketed", || self.store.try_scan_prefix(&tkt_prefix))
            .unwrap_or_default()
            .iter()
            .filter_map(|(k, _)| Self::key_rank(k))
            .collect();
        // Zero-padded keys scan in rank order, so the pending set is sorted.
        announced
            .iter()
            .filter_map(|(k, _)| Self::key_rank(k))
            .filter(|r| !ticketed.contains(r) && alive(*r))
            .collect()
    }

    fn pending_count(&self) -> usize {
        self.snapshot_pending(&|_| true).len()
    }

    fn confirm_tickets(&self, joiners: &[RankId], ticket: &JoinTicket) {
        let bytes = encode_ticket(ticket);
        for &j in joiners {
            // Idempotent: every surviving member writes the identical
            // committed ticket, so re-confirmation after leader death is a
            // harmless overwrite.
            self.retry("confirm_ticket", || {
                self.store.try_set(&self.ticket_key(j), bytes.clone())
            });
        }
    }

    fn abort(&self) {
        self.retry("abort", || self.store.try_set(&self.abort_key(), vec![1]));
    }

    fn wait_ticket(
        &self,
        rank: RankId,
        is_alive: &dyn Fn() -> bool,
        deadline: Option<Instant>,
    ) -> Result<JoinTicket, UlfmError> {
        let key = self.ticket_key(rank);
        loop {
            // A transient scan failure is indistinguishable from "no ticket
            // yet"; the poll loop itself is the retry.
            if let Ok(pairs) = self.store.try_scan_prefix(&key) {
                if let Some((_, v)) = pairs.into_iter().find(|(k, _)| k == &key) {
                    if v == DISMISS_SENTINEL {
                        // Dismissed spare: the run completed without
                        // needing this standby; exit instead of idling.
                        return Err(UlfmError::Aborted);
                    }
                    if let Some(t) = decode_ticket(&v) {
                        return Ok(t);
                    }
                }
                if self
                    .store
                    .try_count_prefix(&self.abort_key())
                    .is_ok_and(|n| n > 0)
                {
                    return Err(UlfmError::Aborted);
                }
            } else {
                telemetry::counter("ulfm.netjoin.store_retries").incr();
            }
            if !is_alive() {
                return Err(UlfmError::SelfDied);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(UlfmError::JoinTimeout);
            }
            std::thread::sleep(TICKET_POLL);
        }
    }

    fn contact(&self, rank: RankId) -> Option<String> {
        let bytes = self
            .get(&self.addr_key(rank))
            .or_else(|| self.get(&self.announce_key(rank)))
            .or_else(|| self.get(&self.spare_key(rank)))?;
        if bytes.is_empty() {
            return None;
        }
        String::from_utf8(bytes).ok()
    }

    fn announce_spare(&self, rank: RankId) {
        let addr = self.contact.clone().unwrap_or_default();
        self.retry("announce_spare", || {
            self.store
                .try_set(&self.spare_key(rank), addr.clone().into_bytes())
        });
        if self.contact.is_some() {
            // A promoted spare becomes a member; later joiners dial it via
            // the member-address key, same as a committed joiner.
            self.publish_contact(rank);
        }
    }

    fn spare_total(&self) -> u64 {
        let prefix = format!("{}join/spare/", self.prefix);
        self.retry("spare_total", || self.store.try_count_prefix(&prefix))
            .unwrap_or(0) as u64
    }

    fn snapshot_spares(&self, alive: &dyn Fn(RankId) -> bool) -> Vec<RankId> {
        let spare_prefix = format!("{}join/spare/", self.prefix);
        let tkt_prefix = format!("{}join/ticket/", self.prefix);
        let Some(announced) =
            self.retry("scan_spares", || self.store.try_scan_prefix(&spare_prefix))
        else {
            return Vec::new();
        };
        // A ticketed spare is either promoted or dismissed; both leave the
        // pool. Announce keys stay monotone, like the joiner pending set.
        let ticketed: Vec<RankId> = self
            .retry("scan_ticketed", || self.store.try_scan_prefix(&tkt_prefix))
            .unwrap_or_default()
            .iter()
            .filter_map(|(k, _)| Self::key_rank(k))
            .collect();
        announced
            .iter()
            .filter_map(|(k, _)| Self::key_rank(k))
            .filter(|r| !ticketed.contains(r) && alive(*r))
            .collect()
    }

    fn dismiss_spare(&self, rank: RankId) {
        // The sentinel doubles as the "ticketed" marker that removes the
        // spare from every future snapshot — idempotent by overwrite.
        self.retry("dismiss_spare", || {
            self.store
                .try_set(&self.ticket_key(rank), DISMISS_SENTINEL.to_vec())
        });
    }

    fn forget(&self, rank: RankId) {
        // The dismissal sentinel is the store-backed "ticketed" marker that
        // retires the rank from pending *and* spare snapshots. The rank is
        // dead, so nothing will ever poll the sentinel back — writing it is
        // pure bookkeeping, and idempotent: every survivor installing the
        // same view delta overwrites the same key.
        self.retry("forget", || {
            self.store
                .try_set(&self.ticket_key(rank), DISMISS_SENTINEL.to_vec())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloo::{KvStore, StoreFaults};
    use std::sync::Arc;

    fn ticket() -> JoinTicket {
        JoinTicket {
            group: vec![RankId(0), RankId(1), RankId(3)],
            epoch: 5,
            comm_id: Some(9),
        }
    }

    #[test]
    fn ticket_roundtrips_through_wire_words() {
        let t = ticket();
        assert_eq!(decode_ticket(&encode_ticket(&t)), Some(t));
        let none = JoinTicket {
            group: vec![RankId(2)],
            epoch: 0,
            comm_id: None,
        };
        assert_eq!(decode_ticket(&encode_ticket(&none)), Some(none));
        assert_eq!(decode_ticket(&[1, 2, 3]), None);
        assert_eq!(decode_ticket(&[0u8; 16]), None);
    }

    #[test]
    fn announce_snapshot_confirm_wait() {
        let store = KvStore::shared();
        let j = NetJoin::new(Arc::clone(&store), "run/");
        j.announce(RankId(4));
        j.announce(RankId(3));
        assert_eq!(j.announced_total(), 2);
        assert_eq!(j.snapshot_pending(&|_| true), vec![RankId(3), RankId(4)]);
        assert_eq!(j.snapshot_pending(&|r| r != RankId(4)), vec![RankId(3)]);
        assert_eq!(j.pending_count(), 2);

        let t = ticket();
        j.confirm_tickets(&[RankId(3)], &t);
        // Ticketed joiners leave the pending set; announce stays monotone.
        assert_eq!(j.snapshot_pending(&|_| true), vec![RankId(4)]);
        assert_eq!(j.announced_total(), 2);
        assert_eq!(j.wait_ticket(RankId(3), &|| true, None), Ok(t));
    }

    #[test]
    fn wait_ticket_deadline_alive_and_abort() {
        let store = KvStore::shared();
        let j = NetJoin::new(Arc::clone(&store), "run/");
        let deadline = Some(Instant::now() + Duration::from_millis(15));
        assert_eq!(
            j.wait_ticket(RankId(7), &|| true, deadline),
            Err(UlfmError::JoinTimeout)
        );
        assert_eq!(
            j.wait_ticket(RankId(7), &|| false, None),
            Err(UlfmError::SelfDied)
        );
        j.abort();
        assert_eq!(
            j.wait_ticket(RankId(7), &|| true, None),
            Err(UlfmError::Aborted)
        );
    }

    #[test]
    fn contact_prefers_member_addr_then_announce() {
        let store = KvStore::shared();
        let member = NetJoin::new(Arc::clone(&store), "run/").with_contact("127.0.0.1:9000");
        member.publish_contact(RankId(0));
        let joiner = NetJoin::new(Arc::clone(&store), "run/").with_contact("127.0.0.1:9001");
        joiner.announce(RankId(3));
        let bare = NetJoin::new(Arc::clone(&store), "run/");
        bare.announce(RankId(5));

        let probe = NetJoin::new(Arc::clone(&store), "run/");
        assert_eq!(probe.contact(RankId(0)), Some("127.0.0.1:9000".into()));
        assert_eq!(probe.contact(RankId(3)), Some("127.0.0.1:9001".into()));
        assert_eq!(probe.contact(RankId(5)), None, "empty announce ⇒ no addr");
        assert_eq!(probe.contact(RankId(9)), None, "unknown rank ⇒ no addr");
    }

    #[test]
    fn spare_pool_announce_snapshot_promote_dismiss() {
        let store = KvStore::shared();
        let j = NetJoin::new(Arc::clone(&store), "run/").with_contact("127.0.0.1:9100");
        j.announce_spare(RankId(8));
        let bare = NetJoin::new(Arc::clone(&store), "run/");
        bare.announce_spare(RankId(6));
        assert_eq!(j.spare_total(), 2);
        // Spares live apart from the joiner pending set.
        assert_eq!(j.pending_count(), 0);
        assert_eq!(j.snapshot_spares(&|_| true), vec![RankId(6), RankId(8)]);
        assert_eq!(j.snapshot_spares(&|r| r != RankId(6)), vec![RankId(8)]);
        // A spare with a contact is dialable like a member.
        assert_eq!(j.contact(RankId(8)), Some("127.0.0.1:9100".into()));

        // Promotion: a committed ticket removes the spare from the pool and
        // wakes it exactly like a joiner.
        let t = ticket();
        j.confirm_tickets(&[RankId(8)], &t);
        assert_eq!(j.snapshot_spares(&|_| true), vec![RankId(6)]);
        assert_eq!(j.wait_ticket(RankId(8), &|| true, None), Ok(t));

        // Dismissal: the sentinel wakes the waiter with Aborted and keeps
        // the spare out of future snapshots (idempotent).
        j.dismiss_spare(RankId(6));
        j.dismiss_spare(RankId(6));
        assert!(j.snapshot_spares(&|_| true).is_empty());
        assert_eq!(
            j.wait_ticket(RankId(6), &|| true, None),
            Err(UlfmError::Aborted)
        );
        // Announce totals stay monotone through promote/dismiss.
        assert_eq!(j.spare_total(), 2);
    }

    #[test]
    fn transient_store_failures_are_retried_and_counted() {
        let before = telemetry::counter("ulfm.netjoin.store_retries").get();
        let store = KvStore::shared_flaky(StoreFaults::rate(0.8, 11));
        let j = NetJoin::new(Arc::clone(&store), "flaky/");
        j.announce(RankId(2));
        let t = ticket();
        j.confirm_tickets(&[RankId(2)], &t);
        // max_consecutive bounds failure runs, so bounded retry always
        // lands the writes; the poll loop then finds the ticket.
        assert_eq!(j.wait_ticket(RankId(2), &|| true, None), Ok(t));
        assert!(
            telemetry::counter("ulfm.netjoin.store_retries").get() > before,
            "injected store faults must surface as counted retries"
        );
    }
}
