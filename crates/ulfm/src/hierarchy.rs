//! Node structure for hierarchical (two-level) collectives.
//!
//! This is Horovod's hierarchical-allreduce optimization, which exploits
//! exactly the node structure the paper's Summit setup has (6 GPUs per
//! node): intra-node traffic is cheap, so only one rank per node
//! participates in the expensive cross-node exchange.
//!
//! A [`Hierarchy`] is a *local, communication-free* snapshot of the
//! communicator's node map: which group ranks share a node, and who each
//! node's leader is. Earlier revisions built split sub-communicators
//! here; that was abandoned because a revocation of the parent does not
//! propagate into splits — a non-leader blocked inside a sub-communicator
//! broadcast would sleep through the parent's revoke while its leader
//! died in the cross-node ring, deadlocking recovery. Instead the
//! hierarchical collective ([`Communicator::hier_allreduce`]) runs on the
//! **flat** communicator through subgroup index views, so every failure
//! and every revocation reaches every rank through the unchanged
//! revoke → agree → shrink path.
//!
//! Because the build is local and deterministic in (group, topology),
//! every survivor of a shrink — and every member of a join — rebuilds an
//! identical hierarchy from the agreed membership alone. Rebuild after
//! *every* membership change; [`Communicator::hier_allreduce`] asserts
//! the epoch matches.

use crate::comm::Communicator;
use crate::error::UlfmError;
use collectives::NodeMap;

/// Node map of one communicator epoch. Cheap to build (no communication);
/// rebuild after any shrink/join/promotion.
pub struct Hierarchy {
    map: NodeMap,
    my_rank: usize,
    comm_id: u64,
}

impl Hierarchy {
    /// Derive the node map from `comm`'s group and its endpoint's static
    /// topology. Local and deterministic: all members compute the same
    /// map without communicating.
    ///
    /// Returns [`UlfmError::HierarchyUnmapped`] if a group member cannot
    /// be placed on a node (instead of panicking, so callers can fall
    /// back to flat collectives).
    pub fn build(comm: &Communicator) -> Result<Self, UlfmError> {
        let ep = comm.endpoint();
        let me = comm.global_rank();
        let group = comm.group();
        if !group.contains(&me) {
            return Err(UlfmError::HierarchyUnmapped { global: me });
        }
        let colors: Vec<u64> = group.iter().map(|&g| ep.node_of(g).0 as u64).collect();
        Ok(Self {
            map: NodeMap::from_colors(&colors),
            my_rank: comm.rank(),
            comm_id: comm.comm_id(),
        })
    }

    /// The underlying node map over flat group ranks.
    pub fn map(&self) -> &NodeMap {
        &self.map
    }

    /// Is this rank its node's leader (participant in the cross-node
    /// exchange)?
    pub fn is_leader(&self) -> bool {
        self.map.is_leader(self.my_rank)
    }

    /// Number of ranks on this rank's node.
    pub fn local_size(&self) -> usize {
        self.map.node_members(self.my_rank).len()
    }

    /// Number of distinct nodes in the communicator.
    pub fn n_nodes(&self) -> usize {
        self.map.n_nodes()
    }

    /// Number of group ranks the map covers (the communicator size at
    /// build time).
    pub fn n_ranks(&self) -> usize {
        self.map.n_ranks()
    }

    /// True when every rank sits alone on its node: the hierarchy buys
    /// nothing over the flat collective.
    pub fn is_flat(&self) -> bool {
        self.map.is_flat()
    }

    /// Was this hierarchy built from `comm`'s current membership epoch?
    /// `false` after any shrink/join/promotion replaced the communicator —
    /// the signal to rebuild before the next hierarchical collective.
    pub fn is_current_for(&self, comm: &Communicator) -> bool {
        self.comm_id == comm.comm_id() && self.map.n_ranks() == comm.size()
    }

    pub(crate) fn comm_id(&self) -> u64 {
        self.comm_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Proc, Universe};
    use collectives::{AllreduceAlgo, ReduceOp};
    use transport::{FaultPlan, RankId, Topology};

    fn input_for(rank: usize, len: usize) -> Vec<i64> {
        (0..len).map(|i| (rank * 31 + i * 7) as i64 - 40).collect()
    }

    #[test]
    fn hierarchical_equals_flat_for_integers() {
        // 3 nodes × 3 ranks.
        let u = Universe::without_faults(Topology::new(3));
        let handles = u
            .spawn_batch(9, |p: Proc| {
                let comm = p.init_comm();
                let h = Hierarchy::build(&comm).unwrap();
                let mut hier = input_for(comm.rank(), 25);
                comm.hier_allreduce(&h, &mut hier, ReduceOp::Sum, AllreduceAlgo::Ring)
                    .unwrap();
                let mut flat = input_for(comm.rank(), 25);
                comm.allreduce(&mut flat, ReduceOp::Sum, AllreduceAlgo::Ring)
                    .unwrap();
                (hier, flat, h.is_leader(), h.local_size())
            })
            .unwrap();
        let mut leaders = 0;
        for h in handles {
            let (hier, flat, leader, local_size) = h.join();
            assert_eq!(hier, flat);
            assert_eq!(local_size, 3);
            leaders += usize::from(leader);
        }
        assert_eq!(leaders, 3, "one leader per node");
    }

    #[test]
    fn works_with_partial_last_node() {
        // 7 ranks over 3-per-node: nodes of 3, 3, 1.
        let u = Universe::without_faults(Topology::new(3));
        let handles = u
            .spawn_batch(7, |p: Proc| {
                let comm = p.init_comm();
                let h = Hierarchy::build(&comm).unwrap();
                let mut buf = vec![comm.rank() as i64];
                comm.hier_allreduce(
                    &h,
                    &mut buf,
                    ReduceOp::Sum,
                    AllreduceAlgo::RecursiveDoubling,
                )
                .unwrap();
                buf[0]
            })
            .unwrap();
        for h in handles {
            assert_eq!(h.join(), (0..7).sum::<i64>());
        }
    }

    #[test]
    fn max_and_min_ops() {
        let u = Universe::without_faults(Topology::new(2));
        let handles = u
            .spawn_batch(4, |p: Proc| {
                let comm = p.init_comm();
                let h = Hierarchy::build(&comm).unwrap();
                let mut buf = vec![comm.rank() as i64 * 10];
                comm.hier_allreduce(&h, &mut buf, ReduceOp::Max, AllreduceAlgo::Ring)
                    .unwrap();
                buf[0]
            })
            .unwrap();
        for h in handles {
            assert_eq!(h.join(), 30);
        }
    }

    /// Regression (issue 9 satellite): when the dead rank was a node
    /// *leader*, survivors must rebuild the hierarchy from the shrunk
    /// communicator — promoting the node's next rank to leader — and the
    /// retried hierarchical allreduce must equal the sum over survivors.
    #[test]
    fn rebuild_after_shrink_promotes_new_leader() {
        // 3 nodes × 2 ranks; kill rank 2 — the leader of node 1 — at its
        // first cross-ring step ("allreduce.step" only fires for leaders
        // inside the cross-node exchange).
        let plan = FaultPlan::none().kill_at_point(RankId(2), "allreduce.step", 1);
        let u = Universe::new(Topology::new(2), plan);
        let handles = u
            .spawn_batch(6, |p: Proc| {
                let orig = p.rank().0;
                let mut comm = p.init_comm();
                loop {
                    let h = Hierarchy::build(&comm).unwrap();
                    let mut buf = vec![orig as i64];
                    let attempt =
                        comm.hier_allreduce(&h, &mut buf, ReduceOp::Sum, AllreduceAlgo::Ring);
                    let ok = match &attempt {
                        Ok(_) => true,
                        Err(UlfmError::SelfDied) => return None,
                        Err(_) => {
                            comm.revoke();
                            false
                        }
                    };
                    let agreed = match comm.agree(ok as u64, 0) {
                        Ok(r) => r,
                        Err(UlfmError::SelfDied) => return None,
                        Err(e) => panic!("agree must tolerate peer death: {e}"),
                    };
                    if agreed.flags == 1 {
                        return Some((buf[0], h.is_leader(), h.n_nodes(), comm.size()));
                    }
                    comm.revoke();
                    comm = match comm.shrink() {
                        Ok(c) => c,
                        Err(UlfmError::SelfDied) => return None,
                        Err(e) => panic!("survivor shrink failed: {e}"),
                    };
                }
            })
            .unwrap();
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        assert!(results[2].is_none(), "victim must die");
        let survivor_sum: i64 = [0, 1, 3, 4, 5].iter().sum();
        let mut leaders = 0;
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            let (sum, leader, n_nodes, world) = r.expect("survivor died");
            assert_eq!(sum, survivor_sum, "rank {rank}");
            assert_eq!(world, 5, "rank {rank} world");
            assert_eq!(n_nodes, 3, "node survives at size 1");
            leaders += usize::from(leader);
            if rank == 3 {
                assert!(leader, "rank 3 must be promoted to node 1's leader");
            }
        }
        assert_eq!(leaders, 3, "one leader per node after rebuild");
    }

    /// The build failure is a typed error, not a panic (issue 9
    /// satellite): `UlfmError::HierarchyUnmapped` exists and is terminal
    /// (not recoverable via revoke/shrink).
    #[test]
    fn unmapped_rank_is_a_typed_error() {
        let e = UlfmError::HierarchyUnmapped { global: RankId(7) };
        assert!(!e.is_recoverable());
        assert!(e.to_string().contains("node color"));
    }
}
