//! Hierarchical allreduce: node-local reduce → cross-node allreduce among
//! node leaders → node-local broadcast.
//!
//! This is Horovod's hierarchical-allreduce optimization, which exploits
//! exactly the node structure the paper's Summit setup has (6 GPUs per
//! node): intra-node traffic is cheap, so only one rank per node
//! participates in the expensive cross-node exchange. Provided here both
//! as a genuinely useful collective and as the natural consumer of
//! [`Communicator::split`].

use crate::comm::Communicator;
use crate::error::UlfmError;
use collectives::{AllreduceAlgo, Elem, ReduceOp};

/// Cached split communicators for hierarchical collectives over a parent
/// communicator. Build once per membership epoch (splits are collective
/// and not free); rebuild after any shrink/join.
pub struct Hierarchy {
    /// Node-local communicator (always present; may be size 1).
    local: Communicator,
    /// Cross-node communicator of node leaders (present iff this rank is
    /// its node's leader).
    cross: Option<Communicator>,
}

impl Hierarchy {
    /// Build the node-local and leader communicators from `comm`.
    /// Collective over `comm`.
    pub fn build(comm: &Communicator) -> Result<Self, UlfmError> {
        let node = comm.endpoint().node_of(comm.global_rank()).0 as u64;
        let local = comm
            .split(node, comm.rank() as u64)?
            .expect("every rank has a node color");
        let leader = local.rank() == 0;
        let cross_color = if leader {
            0
        } else {
            Communicator::SPLIT_UNDEFINED
        };
        let cross = comm.split(cross_color, node)?;
        Ok(Self { local, cross })
    }

    /// The node-local communicator.
    pub fn local(&self) -> &Communicator {
        &self.local
    }

    /// Is this rank its node's leader (participant in the cross-node
    /// exchange)?
    pub fn is_leader(&self) -> bool {
        self.cross.is_some()
    }

    /// Hierarchical in-place allreduce: reduce onto the node leader,
    /// allreduce among leaders, broadcast back within the node. The result
    /// equals a flat allreduce up to floating-point reassociation (bit-
    /// exact for integer elements).
    pub fn allreduce<E: Elem>(
        &self,
        buf: &mut [E],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> Result<(), UlfmError> {
        self.local.reduce(0, buf, op)?;
        if let Some(cross) = &self.cross {
            cross.allreduce(buf, op, algo)?;
        }
        // Node-local broadcast of the final values.
        let mut bytes = if self.local.rank() == 0 {
            E::encode_slice(buf)
        } else {
            Vec::new()
        };
        self.local.bcast(0, &mut bytes)?;
        if self.local.rank() != 0 {
            buf.copy_from_slice(&E::decode_slice(&bytes));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Proc, Universe};
    use transport::Topology;

    fn input_for(rank: usize, len: usize) -> Vec<i64> {
        (0..len).map(|i| (rank * 31 + i * 7) as i64 - 40).collect()
    }

    #[test]
    fn hierarchical_equals_flat_for_integers() {
        // 3 nodes × 3 ranks.
        let u = Universe::without_faults(Topology::new(3));
        let handles = u
            .spawn_batch(9, |p: Proc| {
                let comm = p.init_comm();
                let h = Hierarchy::build(&comm).unwrap();
                let mut hier = input_for(comm.rank(), 25);
                h.allreduce(&mut hier, ReduceOp::Sum, AllreduceAlgo::Ring)
                    .unwrap();
                let mut flat = input_for(comm.rank(), 25);
                comm.allreduce(&mut flat, ReduceOp::Sum, AllreduceAlgo::Ring)
                    .unwrap();
                (hier, flat, h.is_leader(), h.local().size())
            })
            .unwrap();
        let mut leaders = 0;
        for h in handles {
            let (hier, flat, leader, local_size) = h.join();
            assert_eq!(hier, flat);
            assert_eq!(local_size, 3);
            leaders += usize::from(leader);
        }
        assert_eq!(leaders, 3, "one leader per node");
    }

    #[test]
    fn works_with_partial_last_node() {
        // 7 ranks over 3-per-node: nodes of 3, 3, 1.
        let u = Universe::without_faults(Topology::new(3));
        let handles = u
            .spawn_batch(7, |p: Proc| {
                let comm = p.init_comm();
                let h = Hierarchy::build(&comm).unwrap();
                let mut buf = vec![comm.rank() as i64];
                h.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling)
                    .unwrap();
                buf[0]
            })
            .unwrap();
        for h in handles {
            assert_eq!(h.join(), (0..7).sum::<i64>());
        }
    }

    #[test]
    fn max_and_min_ops() {
        let u = Universe::without_faults(Topology::new(2));
        let handles = u
            .spawn_batch(4, |p: Proc| {
                let comm = p.init_comm();
                let h = Hierarchy::build(&comm).unwrap();
                let mut buf = vec![comm.rank() as i64 * 10];
                h.allreduce(&mut buf, ReduceOp::Max, AllreduceAlgo::Ring)
                    .unwrap();
                buf[0]
            })
            .unwrap();
        for h in handles {
            assert_eq!(h.join(), 30);
        }
    }
}
