//! ULFM error classes.

use std::fmt;
use transport::RankId;

/// Errors reported by operations on a [`crate::Communicator`].
///
/// Mirrors ULFM's error classes: the error is local to the operation that
/// raised it; the communicator object itself stays usable for the recovery
/// constructs (`revoke`, `agree`, `shrink`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UlfmError {
    /// `MPI_ERR_PROC_FAILED`: the operation could not complete because a
    /// member process failed. Carries the first failed peer this rank
    /// observed (group-local index and global id).
    ProcFailed {
        /// Group-local index of the observed failed peer.
        peer: usize,
        /// Global rank id of the observed failed peer.
        global: RankId,
    },
    /// `MPI_ERR_REVOKED`: the communicator was revoked; only `agree` and
    /// `shrink` remain usable.
    Revoked,
    /// The calling rank itself was killed by the fault plan; it must unwind.
    SelfDied,
    /// The rank was excluded from the shrunk communicator by the recovery
    /// policy (e.g. drop-node evicting healthy ranks of a failed node) and
    /// must leave the computation.
    Excluded,
    /// The computation was aborted (e.g. a failure cascade shrank the world
    /// below the configured minimum); the rank must exit cleanly instead of
    /// waiting on peers that will never come back.
    Aborted,
    /// A joiner's wait for its admission ticket passed its deadline: the
    /// accepting group completed, degraded to running shrunk, or
    /// partitioned away without ever committing the join. Terminal for the
    /// joiner — it must exit instead of hanging on a rendezvous that will
    /// never answer.
    JoinTimeout,
    /// [`crate::Hierarchy::build`] could not assign a node to every member
    /// of the communicator's group (e.g. the endpoint's topology does not
    /// cover a member's global rank, or the calling rank is missing from
    /// its own group). Carries the first unmappable global rank. The
    /// caller should fall back to flat collectives rather than panic.
    HierarchyUnmapped {
        /// First global rank that could not be placed on a node.
        global: RankId,
    },
    /// An in-process-only operation (spawning threads, killing ranks,
    /// reading the shared alive table) was requested on a *multi-process*
    /// universe, which has no shared fabric. A misconfigured launch should
    /// observe this and exit the worker cleanly instead of crashing; real
    /// process management belongs to the launcher.
    NoSharedFabric,
}

impl UlfmError {
    /// Is this an error the ULFM recovery path (revoke + shrink + retry)
    /// can absorb? `SelfDied`/`Excluded`/`Aborted` are terminal for the
    /// local rank.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, UlfmError::ProcFailed { .. } | UlfmError::Revoked)
    }
}

impl fmt::Display for UlfmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UlfmError::ProcFailed { peer, global } => {
                write!(f, "process failed: group peer #{peer} (global {global})")
            }
            UlfmError::Revoked => write!(f, "communicator revoked"),
            UlfmError::SelfDied => write!(f, "local rank died"),
            UlfmError::Excluded => write!(f, "rank excluded from shrunk communicator"),
            UlfmError::Aborted => write!(f, "computation aborted"),
            UlfmError::JoinTimeout => write!(f, "join ticket wait timed out"),
            UlfmError::HierarchyUnmapped { global } => {
                write!(
                    f,
                    "no node color for global rank {global} in hierarchy build"
                )
            }
            UlfmError::NoSharedFabric => {
                write!(f, "multi-process universe has no shared in-process fabric")
            }
        }
    }
}

impl std::error::Error for UlfmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverability() {
        assert!(UlfmError::ProcFailed {
            peer: 1,
            global: RankId(3)
        }
        .is_recoverable());
        assert!(UlfmError::Revoked.is_recoverable());
        assert!(!UlfmError::SelfDied.is_recoverable());
        assert!(!UlfmError::Excluded.is_recoverable());
        assert!(!UlfmError::Aborted.is_recoverable());
        assert!(!UlfmError::JoinTimeout.is_recoverable());
        assert!(!UlfmError::HierarchyUnmapped { global: RankId(2) }.is_recoverable());
        assert!(!UlfmError::NoSharedFabric.is_recoverable());
    }
}
