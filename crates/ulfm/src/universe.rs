//! The [`Universe`]: rank threads, communicator-id interning, revocation
//! board, and the join service for dynamic process spawn.
//!
//! The universe plays the role of the MPI runtime environment (PRRTE on a
//! real machine): it launches workers, assigns permanent rank ids, lets an
//! external driver inject failures, and provides the out-of-band channel
//! through which *new* workers join a running computation (the paper's
//! replacement and upscaling scenarios).

use crate::comm::Communicator;
use crate::error::UlfmError;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use transport::{Endpoint, Fabric, FaultInjector, FaultPlan, NodeId, RankId, Topology};

/// Construction key for a communicator; every member derives the identical
/// key, so interning yields the identical id without communication.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum CommKey {
    /// Initial communicator of spawn batch `batch` over `group`.
    Init { batch: u64, group: Vec<RankId> },
    /// Shrink iteration `generation` of parent `parent` onto `group`.
    Shrink {
        parent: u64,
        generation: u64,
        group: Vec<RankId>,
    },
    /// Join epoch `epoch` merging into `group`.
    Join { epoch: u64, group: Vec<RankId> },
    /// Split number `split_seq` of `parent` with `color` onto `group`.
    Split {
        parent: u64,
        split_seq: u64,
        color: u64,
        group: Vec<RankId>,
    },
}

/// Information a joining worker needs to construct the merged communicator.
/// Issued out-of-band by the accepting leader through the join service —
/// modelling the rendezvous/PMIx channel real elastic runtimes use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinTicket {
    /// Merged group (existing members first, joiners appended in rank order).
    pub group: Vec<RankId>,
    /// Join epoch (used to derive the merged communicator's identity).
    pub epoch: u64,
    /// The communicator id the accepting members interned for the merged
    /// group. A joiner *process* runs its own comm-id interner starting
    /// from zero, while members have been interning ids since launch;
    /// adopting the members' id (and bumping the interner past it) keeps
    /// the SPMD id sequence aligned from the merge onward. `None` on
    /// tickets minted by code predating this field (the in-process test
    /// helpers), in which case the joiner interns the key itself — correct
    /// there because the interner is shared.
    pub comm_id: Option<u64>,
}

/// The out-of-band join rendezvous, abstracted: how a new worker announces
/// itself, how members discover and ticket pending joiners, and how a
/// joiner learns its admission. Two implementations exist — the in-process
/// [`JoinServer`] (one shared instance per [`Universe`]) and the
/// store-backed [`crate::NetJoin`] used by multi-process jobs, where every
/// process holds its own handle onto a shared KV namespace.
///
/// All methods must be callable from multiple threads; `announce` totals
/// must be monotone so members can wait for an expected joiner count
/// without racing admission timing.
pub trait JoinService: Send + Sync {
    /// A new worker announces itself as ready to join.
    fn announce(&self, rank: RankId);

    /// Total announcements ever made (monotone).
    fn announced_total(&self) -> u64;

    /// Sorted snapshot of joiners awaiting admission, filtered by `alive`
    /// so dead joiners are not re-proposed forever. Non-destructive: a
    /// pending entry is only cleared by a committed
    /// [`JoinService::confirm_tickets`].
    fn snapshot_pending(&self, alive: &dyn Fn(RankId) -> bool) -> Vec<RankId>;

    /// How many workers are waiting to join.
    fn pending_count(&self) -> usize;

    /// A *committed* admission: issue the merged-group ticket to each
    /// joiner and retire it from the pending set. Idempotent — every
    /// surviving member issues the identical ticket after the commit
    /// agreement, so no single leader death can strand a decided joiner.
    fn confirm_tickets(&self, joiners: &[RankId], ticket: &JoinTicket);

    /// Abort the join service: wake and dismiss every pending joiner.
    fn abort(&self);

    /// A joiner blocks until its ticket arrives, it dies, the computation
    /// aborts, or `deadline` passes (`Err(JoinTimeout)` — an orphaned
    /// joiner must exit rather than hang when the accepting group has
    /// completed or given up without aborting explicitly).
    fn wait_ticket(
        &self,
        rank: RankId,
        is_alive: &dyn Fn() -> bool,
        deadline: Option<Instant>,
    ) -> Result<JoinTicket, UlfmError>;

    /// The published contact address of `rank`, if the service knows one
    /// (the network implementation records each announcer's dialable
    /// listener address so late links can be established at ticket time).
    /// In-process there is nothing to dial.
    fn contact(&self, rank: RankId) -> Option<String> {
        let _ = rank;
        None
    }

    /// A standby worker announces itself into the *warm spare pool* — a
    /// namespace separate from the joiner pending set, so epoch-boundary
    /// admission never drains workers being held back to absorb failures.
    /// A spare waits for its promotion ticket via
    /// [`JoinService::wait_ticket`], exactly like a joiner.
    fn announce_spare(&self, rank: RankId);

    /// Total spare announcements ever made (monotone, like
    /// [`JoinService::announced_total`]) — lets members wait
    /// deterministically for an expected spare-pool size before training.
    fn spare_total(&self) -> u64;

    /// Sorted snapshot of spares awaiting promotion, filtered by `alive`.
    /// Non-destructive: a spare leaves the pool only through a committed
    /// [`JoinService::confirm_tickets`] or [`JoinService::dismiss_spare`].
    fn snapshot_spares(&self, alive: &dyn Fn(RankId) -> bool) -> Vec<RankId>;

    /// Dismiss one waiting spare: it wakes from
    /// [`JoinService::wait_ticket`] with [`UlfmError::Aborted`] and exits.
    /// Called by completing workers so unused spares do not idle until
    /// their deadline. Idempotent.
    fn dismiss_spare(&self, rank: RankId);

    /// Retire a rank the view change agreed is **dead** from join-side
    /// bookkeeping: remove it from the pending-joiner set and the warm
    /// spare pool. Unlike [`JoinService::dismiss_spare`] there is nothing
    /// to wake — the rank no longer exists — so no dismissal marker is
    /// left behind and the id could in principle be reused. Called by
    /// view-delta installation so a burst that kills a parked spare does
    /// not leave a ghost entry to be re-proposed forever. Idempotent.
    fn forget(&self, rank: RankId);
}

#[derive(Default)]
struct JoinState {
    /// Announced joiners whose admission has not yet *committed*. The set
    /// is deliberately non-destructive: a leader snapshots it without
    /// draining, so if the leader dies mid-handshake the surviving lowest
    /// rank still sees the same pending joiners and re-tickets them
    /// (join-leader failover).
    pending: BTreeSet<RankId>,
    tickets: HashMap<RankId, JoinTicket>,
    /// Warm spares awaiting promotion — kept apart from `pending` so the
    /// epoch-boundary join path never drains the spare pool.
    spares: BTreeSet<RankId>,
    /// Spares individually dismissed by a completing run; their
    /// `wait_ticket` returns `Aborted` so they exit instead of idling to
    /// their deadline.
    dismissed: BTreeSet<RankId>,
    /// Set when the computation aborts (e.g. shrunk below the minimum
    /// world size): pending joiners must stop waiting and exit.
    aborted: bool,
}

/// Out-of-band join service (the "rendezvous" of the MPI world).
pub(crate) struct JoinServer {
    state: Mutex<JoinState>,
    cv: Condvar,
    /// Monotone count of announcements ever made — lets existing members
    /// wait deterministically for an expected number of joiners without
    /// racing against admission timing.
    announced: AtomicU64,
    /// Monotone count of spare-pool announcements ever made.
    spare_announced: AtomicU64,
}

impl JoinServer {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(JoinState::default()),
            cv: Condvar::new(),
            announced: AtomicU64::new(0),
            spare_announced: AtomicU64::new(0),
        }
    }
}

impl JoinService for JoinServer {
    fn announce(&self, rank: RankId) {
        self.state.lock().pending.insert(rank);
        self.announced.fetch_add(1, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn announced_total(&self) -> u64 {
        self.announced.load(Ordering::SeqCst)
    }

    fn snapshot_pending(&self, alive: &dyn Fn(RankId) -> bool) -> Vec<RankId> {
        self.state
            .lock()
            .pending
            .iter()
            .copied()
            .filter(|&r| alive(r))
            .collect()
    }

    fn pending_count(&self) -> usize {
        self.state.lock().pending.len()
    }

    fn confirm_tickets(&self, joiners: &[RankId], ticket: &JoinTicket) {
        let mut st = self.state.lock();
        for &j in joiners {
            st.pending.remove(&j);
            // A promoted spare leaves the pool the same way a joiner
            // leaves the pending set: through the committed ticket.
            st.spares.remove(&j);
            st.tickets.insert(j, ticket.clone());
        }
        self.cv.notify_all();
    }

    fn abort(&self) {
        self.state.lock().aborted = true;
        self.cv.notify_all();
    }

    fn wait_ticket(
        &self,
        rank: RankId,
        is_alive: &dyn Fn() -> bool,
        deadline: Option<Instant>,
    ) -> Result<JoinTicket, UlfmError> {
        let mut st = self.state.lock();
        loop {
            if let Some(t) = st.tickets.remove(&rank) {
                return Ok(t);
            }
            if st.aborted || st.dismissed.contains(&rank) {
                return Err(UlfmError::Aborted);
            }
            if !is_alive() {
                return Err(UlfmError::SelfDied);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(UlfmError::JoinTimeout);
            }
            self.cv.wait_for(&mut st, Duration::from_micros(200));
        }
    }

    fn announce_spare(&self, rank: RankId) {
        self.state.lock().spares.insert(rank);
        self.spare_announced.fetch_add(1, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn spare_total(&self) -> u64 {
        self.spare_announced.load(Ordering::SeqCst)
    }

    fn snapshot_spares(&self, alive: &dyn Fn(RankId) -> bool) -> Vec<RankId> {
        self.state
            .lock()
            .spares
            .iter()
            .copied()
            .filter(|&r| alive(r))
            .collect()
    }

    fn dismiss_spare(&self, rank: RankId) {
        let mut st = self.state.lock();
        st.spares.remove(&rank);
        st.dismissed.insert(rank);
        self.cv.notify_all();
    }

    fn forget(&self, rank: RankId) {
        let mut st = self.state.lock();
        st.pending.remove(&rank);
        st.spares.remove(&rank);
    }
}

/// How this universe's process relates to the job: either it *is* the job
/// (threads-as-ranks over one shared fabric), or it is a single rank of a
/// multi-process job reached through a distributed backend.
pub(crate) enum Runtime {
    /// The classic mode: every rank is a thread over one [`Fabric`].
    InProc(Arc<Fabric>),
    /// This process hosts exactly one rank; the universe state (revocation
    /// board, comm-id interner, join service) is process-local, and
    /// revocations propagate to peer processes as control-plane signals
    /// through the endpoint's backend.
    Peer(Endpoint),
}

/// Signal-payload discriminant for a communicator revocation broadcast.
const SIGNAL_REVOKE: u8 = 1;

pub(crate) struct Shared {
    pub(crate) runtime: Runtime,
    pub(crate) revoked: RwLock<HashSet<u64>>,
    comm_ids: Mutex<HashMap<CommKey, u64>>,
    next_comm_id: AtomicU64,
    pub(crate) join: Arc<dyn JoinService>,
    next_batch: AtomicU64,
    join_epoch: AtomicU64,
}

impl Shared {
    /// The in-process fabric. In peer (multi-process) mode no shared fabric
    /// exists, so this returns [`UlfmError::NoSharedFabric`] — callers
    /// surface the typed error (and a worker can exit cleanly) instead of
    /// crashing the process on a misconfigured launch.
    pub(crate) fn fabric(&self) -> Result<&Arc<Fabric>, UlfmError> {
        match &self.runtime {
            Runtime::InProc(f) => Ok(f),
            Runtime::Peer(_) => Err(UlfmError::NoSharedFabric),
        }
    }

    fn wake_all(&self) {
        match &self.runtime {
            Runtime::InProc(f) => f.wake_all(),
            Runtime::Peer(ep) => ep.wake_all(),
        }
    }

    /// All members calling with the same key receive the same dense id.
    ///
    /// In peer mode every *process* runs its own interner, and the ids
    /// still agree: communicator construction keys are derived from
    /// SPMD-agreed protocol state (spawn batches, shrink agreements,
    /// splits), so every surviving member interns the same sequence of
    /// distinct keys in the same order.
    pub(crate) fn intern_comm(&self, key: CommKey) -> u64 {
        let mut ids = self.comm_ids.lock();
        let next = &self.next_comm_id;
        *ids.entry(key)
            .or_insert_with(|| next.fetch_add(1, Ordering::SeqCst))
    }

    /// Adopt a communicator id decided by *other* processes (the accepting
    /// members of a join, whose interner has been running since launch) and
    /// advance the local interner past it, so ids this process interns
    /// afterwards continue the same SPMD sequence as everyone else's.
    pub(crate) fn adopt_comm_id(&self, key: CommKey, id: u64) {
        let mut ids = self.comm_ids.lock();
        let prev = ids.insert(key, id);
        debug_assert!(prev.is_none_or(|p| p == id), "comm-id adoption conflict");
        self.next_comm_id.fetch_max(id + 1, Ordering::SeqCst);
    }

    pub(crate) fn is_revoked(&self, comm_id: u64) -> bool {
        self.revoked.read().contains(&comm_id)
    }

    pub(crate) fn revoke(&self, comm_id: u64) {
        let newly = self.revoked.write().insert(comm_id);
        if newly {
            // Propagate first, then interrupt every local pending receive
            // so members observe the revocation promptly (the
            // reliable-broadcast part of MPIX_Comm_revoke). In-process the
            // revocation board itself is shared; across processes the
            // signal broadcast carries it, and a peer that misses the
            // signal (sender died mid-broadcast) still converges through
            // failure suspicion on the stalled collective.
            if let Runtime::Peer(ep) = &self.runtime {
                let mut payload = [0u8; 9];
                payload[0] = SIGNAL_REVOKE;
                payload[1..].copy_from_slice(&comm_id.to_le_bytes());
                ep.broadcast_signal(&payload);
            }
            self.wake_all();
        }
    }

    /// Handle a control-plane signal from a peer process (installed as the
    /// backend's signal handler in peer mode). Runs on a backend service
    /// thread: record and wake, nothing blocking.
    pub(crate) fn handle_signal(&self, payload: &[u8]) {
        if payload.len() == 9 && payload[0] == SIGNAL_REVOKE {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&payload[1..]);
            let comm_id = u64::from_le_bytes(raw);
            let newly = self.revoked.write().insert(comm_id);
            if newly {
                // Wake local receivers only; the originator already
                // broadcast to everyone (no re-flood).
                self.wake_all();
            }
        }
    }

    pub(crate) fn next_join_epoch(&self) -> u64 {
        self.join_epoch.fetch_add(1, Ordering::SeqCst)
    }
}

/// Handle to a spawned worker thread.
pub struct WorkerHandle<R> {
    /// The worker's permanent global rank.
    pub rank: RankId,
    thread: JoinHandle<R>,
}

impl<R> WorkerHandle<R> {
    /// Wait for the worker to finish and take its result.
    ///
    /// # Panics
    /// Panics if the worker thread itself panicked (a bug, not a simulated
    /// failure — simulated failures return normally through error values).
    pub fn join(self) -> R {
        self.thread
            .join()
            .expect("worker thread panicked (bug, not a simulated failure)")
    }

    /// Is the worker still running?
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }
}

/// Per-rank context handed to a worker function.
pub struct Proc {
    pub(crate) ep: Endpoint,
    pub(crate) shared: Arc<Shared>,
    initial_group: Vec<RankId>,
    batch: u64,
}

impl Proc {
    /// This worker's permanent global rank.
    pub fn rank(&self) -> RankId {
        self.ep.rank()
    }

    /// The node hosting this worker.
    pub fn node(&self) -> NodeId {
        self.ep.node_of(self.ep.rank())
    }

    /// The transport endpoint (for custom protocols and fault points).
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// The communicator spanning this worker's spawn batch (the
    /// `MPI_COMM_WORLD` of its launch).
    pub fn init_comm(&self) -> Communicator {
        let id = self.shared.intern_comm(CommKey::Init {
            batch: self.batch,
            group: self.initial_group.clone(),
        });
        Communicator::construct(
            Arc::clone(&self.shared),
            self.ep.clone(),
            id,
            self.initial_group.clone(),
        )
    }

    /// Join a running computation: announce to the join service, block for
    /// the merged-group ticket, and construct the merged communicator.
    /// Pairs with [`Communicator::accept_joiners`] on the existing members.
    ///
    /// Fails with [`UlfmError::SelfDied`] if the fault plan kills this rank
    /// at the `join.ticket` point (or while waiting), and with
    /// [`UlfmError::Aborted`] if the computation shuts down before the join
    /// commits — the joiner must exit instead of waiting forever.
    pub fn join_training(&self) -> Result<Communicator, UlfmError> {
        self.join_training_deadline(None)
    }

    /// [`Proc::join_training`] with an upper bound on the ticket wait:
    /// after `wait`, gives up with [`UlfmError::JoinTimeout`] — the
    /// accepting group may have completed, degraded to running shrunk, or
    /// partitioned away, and an orphaned joiner must exit rather than hang.
    pub fn join_training_deadline(
        &self,
        wait: Option<Duration>,
    ) -> Result<Communicator, UlfmError> {
        self.join_training_inner(wait, false)
    }

    /// Join the *warm spare pool*: announce as a standby and block until a
    /// failure promotes this worker (the members commit a promotion ticket,
    /// exactly a join ticket), the pool is dismissed ([`UlfmError::Aborted`]
    /// — the run completed without needing this spare), or `wait` expires
    /// ([`UlfmError::JoinTimeout`]). A promoted spare bootstraps like any
    /// joiner: state sync first, then the training loop.
    pub fn join_training_as_spare(
        &self,
        wait: Option<Duration>,
    ) -> Result<Communicator, UlfmError> {
        self.join_training_inner(wait, true)
    }

    fn join_training_inner(
        &self,
        wait: Option<Duration>,
        spare: bool,
    ) -> Result<Communicator, UlfmError> {
        if spare {
            telemetry::counter("ulfm.universe.spare_joins").incr();
            self.shared.join.announce_spare(self.rank());
        } else {
            telemetry::counter("ulfm.universe.joins").incr();
            self.shared.join.announce(self.rank());
        }
        // Named fault point: a joiner can be scripted to die after it has
        // announced but before it consumes its ticket — the admission
        // protocol must not strand the rest of the group on it.
        if self.ep.fault_point("join.ticket").is_err() {
            return Err(UlfmError::SelfDied);
        }
        let deadline = wait.map(|w| Instant::now() + w);
        let ticket = telemetry::time("ulfm.universe.join_wait_ns", || {
            self.shared
                .join
                .wait_ticket(self.rank(), &|| self.ep.is_self_alive(), deadline)
        })?;
        // The merge may have committed before this process ever linked to
        // some group members (it only pre-dials the addresses it saw
        // published before announcing). Close the residual gaps: dial every
        // lower-id member we have a contact for, and register the rest so
        // sends on the merged communicator retry against a live (buffering)
        // link instead of failing with UnknownRank. In-process both calls
        // are no-ops.
        for &g in &ticket.group {
            if g == self.rank() {
                continue;
            }
            if g.0 < self.rank().0 {
                if let Some(addr) = self.shared.join.contact(g) {
                    self.ep.connect_peer(g, &addr);
                }
            }
            self.ep.expect_rank(g);
        }
        // Named fault point on the joiner's side of the merge: it holds a
        // committed ticket but dies before the merged communicator does any
        // work — members must detect the EOF and shrink the merge back out.
        if self.ep.fault_point("join.merge").is_err() {
            return Err(UlfmError::SelfDied);
        }
        Ok(Communicator::from_join_ticket(
            Arc::clone(&self.shared),
            self.ep.clone(),
            &ticket,
        ))
    }

    /// Abort the join service: wakes every joiner still waiting for a
    /// ticket so they exit with [`UlfmError::Aborted`] instead of hanging.
    /// Called when the computation shuts down below its minimum world size.
    pub fn abort_joins(&self) {
        self.shared.join.abort();
    }

    /// Voluntarily leave the computation (drop-node policy evictions).
    pub fn retire(&self) {
        self.ep.retire();
    }

    /// Total joiner announcements ever made on this universe (monotone).
    /// Lets training loops wait deterministically for expected joiners
    /// before calling [`Communicator::accept_joiners`].
    pub fn announced_joiners(&self) -> u64 {
        self.shared.join.announced_total()
    }

    /// Total spare-pool announcements ever made on this universe (monotone).
    /// Members wait on this before training so the warm pool is actually
    /// warm when the first failure hits.
    pub fn announced_spares(&self) -> u64 {
        self.shared.join.spare_total()
    }

    /// Spares currently waiting in the pool (announced, not yet promoted
    /// or dismissed). This is the policy engine's "can promotion absorb
    /// this failure" signal; the commit round re-checks liveness, so a
    /// slightly stale count here only costs a fallback, never correctness.
    pub fn waiting_spares(&self) -> usize {
        self.shared.join.snapshot_spares(&|_| true).len()
    }

    /// Dismiss every spare still waiting in the pool (the run completed
    /// without needing them): each wakes from its ticket wait with
    /// [`UlfmError::Aborted`] and exits cleanly. Idempotent.
    pub fn dismiss_spares(&self) {
        for r in self.shared.join.snapshot_spares(&|_| true) {
            self.shared.join.dismiss_spare(r);
        }
    }
}

/// The runtime: owns the fabric and spawns worker threads.
pub struct Universe {
    shared: Arc<Shared>,
}

impl Universe {
    /// Create a universe over `topology` with a scripted fault plan.
    pub fn new(topology: Topology, plan: FaultPlan) -> Self {
        Self {
            shared: Arc::new(Shared {
                runtime: Runtime::InProc(Fabric::new(topology, FaultInjector::new(plan))),
                revoked: RwLock::new(HashSet::new()),
                comm_ids: Mutex::new(HashMap::new()),
                next_comm_id: AtomicU64::new(0),
                join: Arc::new(JoinServer::new()),
                next_batch: AtomicU64::new(0),
                join_epoch: AtomicU64::new(0),
            }),
        }
    }

    /// A fault-free universe.
    pub fn without_faults(topology: Topology) -> Self {
        Self::new(topology, FaultPlan::none())
    }

    /// Build a universe view for one rank of a *multi-process* job over an
    /// already-established distributed backend (e.g.
    /// `transport::SocketBackend`), returning it together with this rank's
    /// [`Proc`]. `group` is the job's initial world, identical on every
    /// process.
    ///
    /// The universe state is process-local: communicator ids come out of a
    /// per-process interner (deterministic across processes, see
    /// [`Shared::intern_comm`]) and revocations are relayed to peers as
    /// backend signals. The join service defaults to a process-local
    /// [`JoinServer`], which no other process can reach — dynamic joins in
    /// multi-process mode need a shared service; see
    /// [`Universe::for_backend_with_join`] and [`crate::NetJoin`].
    /// `spawn_*`, `kill_*`, and [`Universe::fabric`] return
    /// [`UlfmError::NoSharedFabric`], because there is no shared fabric to
    /// operate on; real process management belongs to the launcher.
    pub fn for_backend(ep: Endpoint, group: Vec<RankId>) -> (Self, Proc) {
        Self::for_backend_with_join(ep, group, Arc::new(JoinServer::new()))
    }

    /// [`Universe::for_backend`] with an explicit join service — pass a
    /// store-backed [`crate::NetJoin`] (every process holding a handle onto
    /// the same KV namespace) to enable Replace/Upscale joins across real
    /// process boundaries.
    pub fn for_backend_with_join(
        ep: Endpoint,
        group: Vec<RankId>,
        join: Arc<dyn JoinService>,
    ) -> (Self, Proc) {
        assert!(
            group.contains(&ep.rank()),
            "rank {} not part of the initial group {group:?}",
            ep.rank()
        );
        let shared = Arc::new(Shared {
            runtime: Runtime::Peer(ep.clone()),
            revoked: RwLock::new(HashSet::new()),
            comm_ids: Mutex::new(HashMap::new()),
            next_comm_id: AtomicU64::new(0),
            join,
            next_batch: AtomicU64::new(1),
            join_epoch: AtomicU64::new(0),
        });
        // The handler holds a Weak: the backend must not keep the Shared
        // (which holds the endpoint, which holds the backend) alive forever.
        let weak = Arc::downgrade(&shared);
        ep.set_signal_handler(Box::new(move |payload| {
            if let Some(shared) = weak.upgrade() {
                shared.handle_signal(payload);
            }
        }));
        let proc = Proc {
            ep,
            shared: Arc::clone(&shared),
            initial_group: group,
            batch: 0,
        };
        (Self { shared }, proc)
    }

    /// Build the universe view for a *joining* process of a multi-process
    /// job: it is not part of any initial group (its `init_comm` spans just
    /// itself) and is expected to call [`Proc::join_training`] — announcing
    /// through the shared `join` service — to merge into the running
    /// computation.
    pub fn joiner_for_backend(ep: Endpoint, join: Arc<dyn JoinService>) -> (Self, Proc) {
        let rank = ep.rank();
        Self::for_backend_with_join(ep, vec![rank], join)
    }

    /// Install a message-perturbation plan on the underlying transport
    /// (adversarial links healed by the retransmission layer).
    pub fn set_perturbation(&self, plan: transport::PerturbPlan) {
        match &self.shared.runtime {
            Runtime::InProc(f) => f.set_perturbation(plan),
            Runtime::Peer(ep) => ep.set_perturbation(plan),
        }
    }

    /// Configure timeout-based failure suspicion: a collective that stalls
    /// on a silent peer past `timeout` treats that peer as failed
    /// (`ProcFailed`), feeding the revoke → agree → shrink recovery path.
    pub fn set_suspicion_timeout(&self, timeout: std::time::Duration) {
        match &self.shared.runtime {
            Runtime::InProc(f) => f.set_suspicion_timeout(Some(timeout)),
            Runtime::Peer(ep) => ep.set_suspicion_timeout(Some(timeout)),
        }
    }

    /// Configure the suspicion batching window: once a failure is
    /// suspected, recovery waits until no further suspicion has landed
    /// within `window` before agreeing on the failed set, so a node-level
    /// burst is reported as **one** set and resolved by one view change.
    pub fn set_suspicion_batch_window(&self, window: std::time::Duration) {
        match &self.shared.runtime {
            Runtime::InProc(f) => f.set_suspicion_batch_window(Some(window)),
            Runtime::Peer(ep) => ep.set_suspicion_batch_window(Some(window)),
        }
    }

    /// Spawn `n` workers as one batch; each runs `f` and sees the whole
    /// batch as its [`Proc::init_comm`] group.
    ///
    /// In-process mode only: a multi-process ([`Universe::for_backend`])
    /// universe has no shared fabric to spawn threads onto, and returns
    /// [`UlfmError::NoSharedFabric`] — real process management belongs to
    /// the launcher.
    pub fn spawn_batch<R, F>(&self, n: usize, f: F) -> Result<Vec<WorkerHandle<R>>, UlfmError>
    where
        R: Send + 'static,
        F: Fn(Proc) -> R + Send + Sync + Clone + 'static,
    {
        telemetry::counter("ulfm.universe.spawned_workers").add(n as u64);
        let _span = telemetry::span("ulfm.universe.spawn_batch_ns");
        let ranks = self.shared.fabric()?.register_ranks(n);
        let batch = self.shared.next_batch.fetch_add(1, Ordering::SeqCst);
        Ok(ranks
            .iter()
            .map(|&rank| {
                let shared = Arc::clone(&self.shared);
                let group = ranks.clone();
                let f = f.clone();
                let thread = std::thread::Builder::new()
                    .name(format!("rank-{}", rank.0))
                    .spawn(move || {
                        // Checked by the outer `fabric()?` before any thread
                        // was spawned; the runtime mode never changes.
                        let fabric =
                            Arc::clone(shared.fabric().expect("spawn_batch verified in-proc"));
                        let proc = Proc {
                            ep: Endpoint::new(Arc::clone(&fabric), rank),
                            shared,
                            initial_group: group,
                            batch,
                        };
                        let out = f(proc);
                        // Model MPI process termination: once the worker
                        // function returns, the rank is gone; peers blocked
                        // on it observe the failure instead of hanging.
                        fabric.kill_rank(rank);
                        out
                    })
                    .expect("failed to spawn worker thread");
                WorkerHandle { rank, thread }
            })
            .collect())
    }

    /// Spawn `k` *joining* workers (replacement or upscale); they should
    /// call [`Proc::join_training`] to merge into the running computation.
    /// In-process mode only, like [`Universe::spawn_batch`].
    pub fn spawn_joiners<R, F>(&self, k: usize, f: F) -> Result<Vec<WorkerHandle<R>>, UlfmError>
    where
        R: Send + 'static,
        F: Fn(Proc) -> R + Send + Sync + Clone + 'static,
    {
        self.spawn_batch(k, f)
    }

    /// Kill a rank from the outside (hardware failure). In-process mode
    /// only ([`UlfmError::NoSharedFabric`] otherwise): a multi-process
    /// job's ranks die by actual process death.
    pub fn kill_rank(&self, rank: RankId) -> Result<(), UlfmError> {
        self.shared.fabric()?.kill_rank(rank);
        Ok(())
    }

    /// Kill every rank on a node. In-process mode only
    /// ([`UlfmError::NoSharedFabric`] otherwise).
    pub fn kill_node(&self, node: NodeId) -> Result<(), UlfmError> {
        self.shared.fabric()?.kill_node(node);
        Ok(())
    }

    /// The underlying fabric (stats, alive table). In-process mode only;
    /// [`UlfmError::NoSharedFabric`] for a [`Universe::for_backend`]
    /// universe.
    pub fn fabric(&self) -> Result<&Arc<Fabric>, UlfmError> {
        self.shared.fabric()
    }

    /// Workers currently waiting on the join service.
    pub fn pending_joiners(&self) -> usize {
        self.shared.join.pending_count()
    }

    /// Abort the join service from the outside (driver-initiated shutdown):
    /// wakes every joiner still waiting for a ticket so they exit with
    /// [`UlfmError::Aborted`] instead of hanging.
    pub fn abort_joins(&self) {
        self.shared.join.abort();
    }

    #[allow(dead_code)] // exercised by unit tests
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_batch_assigns_dense_ranks() {
        let u = Universe::without_faults(Topology::flat());
        let handles = u.spawn_batch(4, |p| p.rank().0).unwrap();
        let got: Vec<usize> = handles.into_iter().map(|h| h.join()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn init_comm_ids_are_shared_within_batch() {
        let u = Universe::without_faults(Topology::flat());
        let handles = u.spawn_batch(3, |p| p.init_comm().id()).unwrap();
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();
        assert!(ids.iter().all(|&i| i == ids[0]));
    }

    #[test]
    fn separate_batches_get_separate_comm_ids() {
        let u = Universe::without_faults(Topology::flat());
        let a = u.spawn_batch(2, |p| p.init_comm().id()).unwrap();
        let ids_a: Vec<u64> = a.into_iter().map(|h| h.join()).collect();
        let b = u.spawn_batch(2, |p| p.init_comm().id()).unwrap();
        let ids_b: Vec<u64> = b.into_iter().map(|h| h.join()).collect();
        assert_ne!(ids_a[0], ids_b[0]);
    }

    #[test]
    fn intern_is_idempotent() {
        let u = Universe::without_faults(Topology::flat());
        let key = CommKey::Init {
            batch: 9,
            group: vec![RankId(0), RankId(1)],
        };
        let a = u.shared().intern_comm(key.clone());
        let b = u.shared().intern_comm(key);
        assert_eq!(a, b);
    }

    #[test]
    fn join_server_handshake() {
        let u = Universe::without_faults(Topology::flat());
        let shared = Arc::clone(u.shared());
        let t = std::thread::spawn(move || {
            shared.join.announce(RankId(7));
            shared.join.wait_ticket(RankId(7), &|| true, None)
        });
        // Leader side: wait for the announcement, then confirm the ticket.
        while u.pending_joiners() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Snapshots are non-destructive: repeated snapshots see the same
        // pending joiner until an admission commits.
        let pending = u.shared().join.snapshot_pending(&|_| true);
        assert_eq!(pending, vec![RankId(7)]);
        assert_eq!(u.shared().join.snapshot_pending(&|_| true), pending);
        // A dead joiner is filtered out of the proposal set.
        assert!(u.shared().join.snapshot_pending(&|_| false).is_empty());
        let ticket = JoinTicket {
            group: vec![RankId(0), RankId(7)],
            epoch: 0,
            comm_id: None,
        };
        u.shared().join.confirm_tickets(&pending, &ticket);
        assert_eq!(u.pending_joiners(), 0);
        // Redundant confirmation (another surviving member re-issuing the
        // same committed ticket) is harmless.
        u.shared().join.confirm_tickets(&pending, &ticket);
        assert_eq!(t.join().unwrap().unwrap(), ticket);
    }

    #[test]
    fn wait_ticket_unblocks_on_death_and_abort() {
        let u = Universe::without_faults(Topology::flat());
        // Death while waiting: the alive probe flips to false.
        let shared = Arc::clone(u.shared());
        let alive = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let alive2 = Arc::clone(&alive);
        let t = std::thread::spawn(move || {
            shared
                .join
                .wait_ticket(RankId(3), &|| alive2.load(Ordering::SeqCst), None)
        });
        alive.store(false, Ordering::SeqCst);
        assert_eq!(t.join().unwrap(), Err(UlfmError::SelfDied));
        // Abort while waiting: every waiter is dismissed.
        let shared = Arc::clone(u.shared());
        let t = std::thread::spawn(move || shared.join.wait_ticket(RankId(4), &|| true, None));
        u.abort_joins();
        assert_eq!(t.join().unwrap(), Err(UlfmError::Aborted));
    }

    #[test]
    fn wait_ticket_deadline_times_out_instead_of_hanging() {
        let u = Universe::without_faults(Topology::flat());
        // Nobody will ever ticket rank 5: the deadline must bail it out.
        let deadline = Some(Instant::now() + Duration::from_millis(20));
        let got = u.shared().join.wait_ticket(RankId(5), &|| true, deadline);
        assert_eq!(got, Err(UlfmError::JoinTimeout));
        // A ticket issued before the deadline is consumed normally.
        let ticket = JoinTicket {
            group: vec![RankId(0), RankId(5)],
            epoch: 1,
            comm_id: None,
        };
        u.shared().join.announce(RankId(5));
        u.shared().join.confirm_tickets(&[RankId(5)], &ticket);
        let deadline = Some(Instant::now() + Duration::from_secs(5));
        assert_eq!(
            u.shared().join.wait_ticket(RankId(5), &|| true, deadline),
            Ok(ticket)
        );
    }

    #[test]
    fn kill_rank_via_universe() {
        let u = Universe::without_faults(Topology::flat());
        let handles = u
            .spawn_batch(2, |p| {
                // Rank 1 waits until killed.
                if p.rank() == RankId(1) {
                    while p.endpoint().is_self_alive() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    "killed"
                } else {
                    "fine"
                }
            })
            .unwrap();
        u.kill_rank(RankId(1)).unwrap();
        let results: Vec<&str> = handles.into_iter().map(|h| h.join()).collect();
        assert_eq!(results, vec!["fine", "killed"]);
    }
}
