//! The resilient communicator.

use crate::agree::{flood_agree, AgreeResult};
use crate::error::UlfmError;
use crate::hierarchy::Hierarchy;
use crate::lattice::{lattice_agree, AgreeImpl};
use crate::tags;
use crate::universe::{CommKey, JoinTicket, Shared};
use collectives::{
    allgather, allreduce, binomial_bcast, binomial_reduce, dissemination_barrier, fused_allreduce,
    gather, hier_allreduce, hier_fused_allreduce, plan_buckets, scatter, AllgatherAlgo,
    AllreduceAlgo, CollError, Elem, PeerComm, ReduceOp,
};
use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::sync::Arc;
use transport::{Endpoint, RankId, TransportError, Wire};

/// Result of [`Communicator::shrink_with`]: either this rank is a member of
/// the shrunk communicator, or the recovery policy excluded it and it must
/// leave the computation.
pub enum ShrinkOutcome {
    /// This rank belongs to the shrunk communicator.
    Member(Communicator),
    /// This rank was excluded (e.g. healthy rank on a failed node under the
    /// drop-node policy) and must retire.
    Excluded,
}

/// A ULFM-style communicator: a dense group of global ranks with
/// collectives, per-operation failure reporting, and the recovery triad
/// (revoke / agree / shrink).
///
/// A communicator value is owned by its rank's thread (it is deliberately
/// `!Sync`: sequence counters use `Cell`). All members must issue
/// collective calls in the same order — the usual MPI SPMD contract — which
/// keeps the tag sequence numbers aligned without communication.
pub struct Communicator {
    shared: Arc<Shared>,
    ep: Endpoint,
    id: u64,
    group: Vec<RankId>,
    my_idx: usize,
    seq: Cell<u64>,
    rec_seq: Cell<u64>,
    shrink_calls: Cell<u64>,
    split_calls: Cell<u64>,
    acked: RefCell<BTreeSet<RankId>>,
    /// Which uniform-agreement protocol `agree` runs. Inherited by every
    /// derived communicator (shrink candidate, split, join merge, spare
    /// promotion); a `Cell` so engines can select it after construction.
    agree_impl: Cell<AgreeImpl>,
}

impl Communicator {
    pub(crate) fn construct(
        shared: Arc<Shared>,
        ep: Endpoint,
        id: u64,
        group: Vec<RankId>,
    ) -> Self {
        let me = ep.rank();
        let my_idx = group
            .iter()
            .position(|&g| g == me)
            .unwrap_or_else(|| panic!("rank {me} is not a member of communicator {id}"));
        Self {
            shared,
            ep,
            id,
            group,
            my_idx,
            seq: Cell::new(0),
            rec_seq: Cell::new(0),
            shrink_calls: Cell::new(0),
            split_calls: Cell::new(0),
            acked: RefCell::new(BTreeSet::new()),
            agree_impl: Cell::new(AgreeImpl::Flood),
        }
    }

    /// Derive a child communicator that inherits this one's agreement
    /// implementation — every membership transition (shrink candidate,
    /// split, join merge, spare promotion) flows through here so the
    /// flood/lattice selection survives arbitrarily long recovery chains.
    fn derive(&self, id: u64, group: Vec<RankId>) -> Self {
        let child = Self::construct(Arc::clone(&self.shared), self.ep.clone(), id, group);
        child.agree_impl.set(self.agree_impl.get());
        child
    }

    pub(crate) fn from_join_ticket(shared: Arc<Shared>, ep: Endpoint, ticket: &JoinTicket) -> Self {
        let key = CommKey::Join {
            epoch: ticket.epoch,
            group: ticket.group.clone(),
        };
        let id = match ticket.comm_id {
            // Adopt the members' interned id so this (possibly fresh)
            // process's id sequence aligns with theirs from here on.
            Some(id) => {
                shared.adopt_comm_id(key, id);
                id
            }
            None => shared.intern_comm(key),
        };
        Self::construct(shared, ep, id, ticket.group.clone())
    }

    /// Group-local rank of this process.
    pub fn rank(&self) -> usize {
        self.my_idx
    }

    /// Number of members (alive or failed — membership is static between
    /// shrinks, as in MPI).
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Global rank ids of the members, in group order.
    pub fn group(&self) -> &[RankId] {
        &self.group
    }

    /// This communicator's interned identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This process's global rank id.
    pub fn global_rank(&self) -> RankId {
        self.ep.rank()
    }

    /// The transport endpoint (fault points, liveness queries).
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// Has this communicator been revoked (by any member)?
    pub fn is_revoked(&self) -> bool {
        self.shared.is_revoked(self.id)
    }

    /// `MPIX_Comm_revoke`: permanently poison this communicator for every
    /// member and interrupt their pending operations. Idempotent; only
    /// `agree` and `shrink` remain usable afterwards.
    pub fn revoke(&self) {
        telemetry::counter("ulfm.revokes").incr();
        telemetry::time("ulfm.revoke.duration_ns", || self.shared.revoke(self.id));
    }

    /// `MPIX_Comm_failure_ack`: acknowledge all failures currently known to
    /// the local detector.
    pub fn failure_ack(&self) {
        let mut acked = self.acked.borrow_mut();
        for &g in &self.group {
            if !self.ep.is_peer_alive(g) {
                acked.insert(g);
            }
        }
    }

    /// `MPIX_Comm_failure_get_acked`: the failures acknowledged so far.
    pub fn get_acked(&self) -> Vec<RankId> {
        self.acked.borrow().iter().copied().collect()
    }

    /// Members currently observed alive by the local detector.
    pub fn alive_members(&self) -> Vec<RankId> {
        self.group
            .iter()
            .copied()
            .filter(|&g| self.ep.is_peer_alive(g))
            .collect()
    }

    // ---- tag/sequence management -------------------------------------

    fn next_coll_base(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        tags::coll_base(self.id, s)
    }

    /// Reserve `n` consecutive collective tag windows (one per fusion
    /// bucket) and return the first. `n` is a pure function of the tensor
    /// sizes and the cap, so every member reserves identically.
    fn reserve_coll_span(&self, n: u64) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + n.max(1));
        tags::coll_base(self.id, s)
    }

    fn next_recovery_base(&self) -> u64 {
        let s = self.rec_seq.get();
        self.rec_seq.set(s + 1);
        tags::recovery_base(self.id, s)
    }

    // ---- point-to-point ----------------------------------------------

    /// Send bytes to a group-local peer with a user tag.
    pub fn send(&self, peer: usize, user_tag: u64, data: &[u8]) -> Result<(), UlfmError> {
        if self.is_revoked() {
            return Err(UlfmError::Revoked);
        }
        self.ep
            .send(self.group[peer], tags::p2p(self.id, user_tag), data)
            .map_err(|e| self.map_transport(e))
    }

    /// Receive bytes from a group-local peer with a user tag.
    pub fn recv(&self, peer: usize, user_tag: u64) -> Result<Vec<u8>, UlfmError> {
        if self.is_revoked() {
            return Err(UlfmError::Revoked);
        }
        let stop = || self.shared.is_revoked(self.id);
        self.ep
            .recv_stoppable(self.group[peer], tags::p2p(self.id, user_tag), &stop)
            .map_err(|e| self.map_transport(e))
    }

    fn map_transport(&self, e: TransportError) -> UlfmError {
        match e {
            TransportError::PeerDead(g) => UlfmError::ProcFailed {
                peer: self
                    .group
                    .iter()
                    .position(|&x| x == g)
                    .unwrap_or(usize::MAX),
                global: g,
            },
            TransportError::SelfDied => UlfmError::SelfDied,
            TransportError::Stopped => UlfmError::Revoked,
            other => unreachable!("unexpected transport error: {other}"),
        }
    }

    fn map_coll(&self, e: CollError) -> UlfmError {
        match e {
            CollError::PeerFailed { peer } => UlfmError::ProcFailed {
                peer,
                global: self.group.get(peer).copied().unwrap_or(RankId(usize::MAX)),
            },
            CollError::SelfDied => UlfmError::SelfDied,
            CollError::Revoked => UlfmError::Revoked,
            CollError::Aborted => unreachable!("ULFM communicators are never aborted"),
        }
    }

    // ---- collectives ---------------------------------------------------

    /// In-place allreduce across the group.
    pub fn allreduce<E: Elem>(
        &self,
        buf: &mut [E],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> Result<(), UlfmError> {
        let base = self.next_coll_base();
        allreduce(&self.adapter(), buf, op, algo, base).map_err(|e| self.map_coll(e))
    }

    /// Broadcast bytes from group-local `root`.
    pub fn bcast(&self, root: usize, buf: &mut Vec<u8>) -> Result<(), UlfmError> {
        let base = self.next_coll_base();
        binomial_bcast(&self.adapter(), root, buf, base).map_err(|e| self.map_coll(e))
    }

    /// Gather every member's block to every member.
    pub fn allgather(&self, mine: &[u8], algo: AllgatherAlgo) -> Result<Vec<Vec<u8>>, UlfmError> {
        let base = self.next_coll_base();
        allgather(&self.adapter(), mine, algo, base).map_err(|e| self.map_coll(e))
    }

    /// Synchronize all members.
    pub fn barrier(&self) -> Result<(), UlfmError> {
        let base = self.next_coll_base();
        dissemination_barrier(&self.adapter(), base).map_err(|e| self.map_coll(e))
    }

    /// Reduce onto group-local `root`.
    pub fn reduce<E: Elem>(
        &self,
        root: usize,
        buf: &mut [E],
        op: ReduceOp,
    ) -> Result<(), UlfmError> {
        let base = self.next_coll_base();
        binomial_reduce(&self.adapter(), root, buf, op, base).map_err(|e| self.map_coll(e))
    }

    /// Gather byte blocks to `root`.
    pub fn gather(&self, root: usize, mine: &[u8]) -> Result<Option<Vec<Vec<u8>>>, UlfmError> {
        let base = self.next_coll_base();
        gather(&self.adapter(), root, mine, base).map_err(|e| self.map_coll(e))
    }

    /// Scatter byte blocks from `root`.
    pub fn scatter(&self, root: usize, blocks: Option<&[Vec<u8>]>) -> Result<Vec<u8>, UlfmError> {
        let base = self.next_coll_base();
        scatter(&self.adapter(), root, blocks, base).map_err(|e| self.map_coll(e))
    }

    /// In-place hierarchical (two-level) allreduce: intra-node reduce onto
    /// each node leader, flat exchange among leaders, intra-node broadcast
    /// back. `hier` must have been built from *this* communicator epoch
    /// ([`Hierarchy::build`]); rebuild it after any shrink/join.
    ///
    /// Runs entirely on this (flat) communicator — node subgroups are
    /// index views, not sub-communicators — so a failure anywhere surfaces
    /// exactly like a flat collective's ([`UlfmError::ProcFailed`] /
    /// [`UlfmError::Revoked`]) and feeds the unchanged
    /// revoke → agree → shrink path.
    pub fn hier_allreduce<E: Elem>(
        &self,
        hier: &Hierarchy,
        buf: &mut [E],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> Result<(), UlfmError> {
        assert_eq!(
            (hier.comm_id(), hier.n_ranks()),
            (self.id, self.group.len()),
            "hierarchy was built for a different communicator epoch; rebuild after shrink/join"
        );
        let base = self.next_coll_base();
        hier_allreduce(&self.adapter(), hier.map(), buf, op, algo, base)
            .map_err(|e| self.map_coll(e))
    }

    /// Fused allreduce: greedily bucket `tensors` under `cap_bytes` and
    /// allreduce each bucket (Horovod's tensor fusion). Each bucket gets
    /// its own collective tag window.
    pub fn fused_allreduce<E: Elem>(
        &self,
        tensors: &mut [Vec<E>],
        op: ReduceOp,
        algo: AllreduceAlgo,
        cap_bytes: usize,
    ) -> Result<(), UlfmError> {
        let base = self.reserve_coll_span(Self::bucket_count::<E>(tensors, cap_bytes));
        fused_allreduce(&self.adapter(), tensors, op, algo, cap_bytes, base)
            .map_err(|e| self.map_coll(e))
    }

    /// Two-level analogue of [`Communicator::fused_allreduce`]: every
    /// bucket runs through [`Communicator::hier_allreduce`]'s intra-reduce
    /// → cross-exchange → intra-broadcast pipeline. Same epoch contract as
    /// `hier_allreduce`.
    pub fn hier_fused_allreduce<E: Elem>(
        &self,
        hier: &Hierarchy,
        tensors: &mut [Vec<E>],
        op: ReduceOp,
        algo: AllreduceAlgo,
        cap_bytes: usize,
    ) -> Result<(), UlfmError> {
        assert_eq!(
            (hier.comm_id(), hier.n_ranks()),
            (self.id, self.group.len()),
            "hierarchy was built for a different communicator epoch; rebuild after shrink/join"
        );
        let base = self.reserve_coll_span(Self::bucket_count::<E>(tensors, cap_bytes));
        hier_fused_allreduce(
            &self.adapter(),
            hier.map(),
            tensors,
            op,
            algo,
            cap_bytes,
            base,
        )
        .map_err(|e| self.map_coll(e))
    }

    /// How many buckets the fusion plan produces — deterministic in the
    /// tensor sizes, so every member advances its tag sequence identically.
    fn bucket_count<E: Elem>(tensors: &[Vec<E>], cap_bytes: usize) -> u64 {
        let sizes: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
        plan_buckets(&sizes, E::WIDTH, cap_bytes).len() as u64
    }

    pub(crate) fn comm_id(&self) -> u64 {
        self.id
    }

    fn adapter(&self) -> Adapter<'_> {
        Adapter {
            comm: self,
            respect_revoke: true,
        }
    }

    // ---- recovery -------------------------------------------------------

    /// `MPIX_Comm_agree`: fault-tolerant uniform agreement. Works on a
    /// revoked communicator (that is the point). `flag` contributions are
    /// AND-ed; `min_val` contributions are min-merged; the returned failed
    /// set is the union of failure knowledge (entry-time under
    /// [`AgreeImpl::Flood`]; additionally widened by deaths observed
    /// mid-protocol under [`AgreeImpl::Lattice`]).
    pub fn agree(&self, flag: u64, min_val: u64) -> Result<AgreeResult, UlfmError> {
        self.agree_inner(flag, min_val, false)
    }

    fn agree_inner(&self, flag: u64, min_val: u64, verify: bool) -> Result<AgreeResult, UlfmError> {
        let base = self.next_recovery_base();
        if !verify {
            telemetry::counter("ulfm.agree.ops").incr();
            // Concurrent suspicions within the transport's batching window
            // settle before inputs freeze, so a burst enters the agreement
            // as one set instead of one discovery wave per member.
            self.ep.settle_suspicions();
        }
        let t0 = std::time::Instant::now();
        let out = telemetry::time("ulfm.agree.duration_ns", || match self.agree_impl.get() {
            AgreeImpl::Flood => flood_agree(
                &self.ep,
                &self.group,
                self.my_idx,
                base,
                flag,
                min_val,
                verify,
            ),
            AgreeImpl::Lattice => lattice_agree(
                &self.ep,
                &self.group,
                self.my_idx,
                base,
                flag,
                min_val,
                verify,
            ),
        });
        if !verify {
            telemetry::histogram("ulfm.agree.wall").record_duration(t0.elapsed());
        }
        out
    }

    /// Select the uniform-agreement protocol this communicator (and every
    /// communicator derived from it) runs. Every member must select the
    /// same implementation — the usual SPMD contract; engines set it from
    /// the shared `TrainSpec`.
    pub fn set_agree_impl(&self, imp: AgreeImpl) {
        self.agree_impl.set(imp);
    }

    /// The currently selected agreement implementation.
    pub fn agree_impl(&self) -> AgreeImpl {
        self.agree_impl.get()
    }

    /// `MPIX_Comm_shrink`: agree on the failed set and construct a new,
    /// dense communicator of survivors.
    pub fn shrink(&self) -> Result<Communicator, UlfmError> {
        match self.shrink_with(|_| Vec::new())? {
            ShrinkOutcome::Member(c) => Ok(c),
            ShrinkOutcome::Excluded => unreachable!("no exclusion policy was supplied"),
        }
    }

    /// Shrink with a recovery policy: `exclude` receives the agreed failed
    /// set (cumulative over iterations) and returns *additional* ranks to
    /// evict — deterministically, since every member computes it locally.
    /// The paper's drop-node policy evicts every rank co-located with a
    /// failure; evicted healthy ranks get [`ShrinkOutcome::Excluded`] and
    /// must leave the computation.
    ///
    /// The shrink iterates (agree → build candidate → verify by agreement
    /// on the candidate) until a candidate verifies with no new failures,
    /// mirroring ULFM `MPIX_Comm_shrink`'s internal retry. The iteration
    /// count is bounded by the group size: every extra generation is caused
    /// by at least one *new* failure, and there are only `size()` members
    /// to lose — so a cascade that kills a member during every generation
    /// still terminates. Each generation passes the `shrink.attempt` fault
    /// point, so `FaultPlan` can script exactly such cascades.
    pub fn shrink_with(
        &self,
        exclude: impl Fn(&[RankId]) -> Vec<RankId>,
    ) -> Result<ShrinkOutcome, UlfmError> {
        let call = self.shrink_calls.get();
        self.shrink_calls.set(call + 1);
        telemetry::counter("ulfm.shrink.ops").incr();
        let _span = telemetry::span("ulfm.shrink.duration_ns");

        // Iteration 0: agree on the failed set over *this* communicator.
        let first = self.agree(u64::MAX, u64::MAX)?;
        let mut all_failed: BTreeSet<RankId> = first.failed.into_iter().collect();
        let me = self.ep.rank();
        let mut generation = 0u64;
        let mut parent_group: Vec<RankId> = self.group.clone();

        loop {
            assert!(
                generation <= self.group.len() as u64,
                "shrink generations exceeded group size — a generation \
                 without a new failure must have terminated the loop"
            );
            // Named fault point: a rank can be scripted to die between
            // shrink generations (mid-recovery cascade). The survivors'
            // candidate agreement observes the death and iterates.
            self.ep
                .fault_point("shrink.attempt")
                .map_err(|e| self.map_transport(e))?;
            let excluded: BTreeSet<RankId> =
                exclude(&all_failed.iter().copied().collect::<Vec<_>>())
                    .into_iter()
                    .collect();
            if excluded.contains(&me) {
                return Ok(ShrinkOutcome::Excluded);
            }
            let survivors: Vec<RankId> = parent_group
                .iter()
                .copied()
                .filter(|g| !all_failed.contains(g) && !excluded.contains(g))
                .collect();
            assert!(
                survivors.contains(&me),
                "shrink survivor list must contain the caller"
            );

            let id = self.shared.intern_comm(CommKey::Shrink {
                parent: self.id,
                generation: call << 16 | generation,
                group: survivors.clone(),
            });
            let candidate = self.derive(id, survivors);

            // Verify the candidate: a fault-tolerant agreement doubles as a
            // sync point and uniformly reports any member that was already
            // dead when we built it. Marked as a verify re-entry so its
            // rounds land under `ulfm.shrink.verify_rounds` instead of
            // double-counting the primary agreement's round telemetry.
            let verdict = candidate.agree_inner(u64::MAX, u64::MAX, true)?;
            if verdict.failed.is_empty() {
                // Install the view as a delta against the parent: drop the
                // parent's stale traffic, retire the lost ranks from the
                // join service's pending/spare bookkeeping (a dead parked
                // spare must never be proposed for promotion), and let the
                // interned id above serve as the epoch bump. `Hierarchy`
                // handles are invalidated implicitly — they pin the parent
                // comm id and epoch, so the next hier collective on the new
                // view refuses them until rebuilt.
                self.ep.purge_tags(|t| tags::belongs_to(t, self.id));
                for &g in &all_failed {
                    self.shared.join.forget(g);
                }
                telemetry::counter("ulfm.view.delta_installs").incr();
                telemetry::counter("ulfm.shrink.completions").incr();
                telemetry::counter("ulfm.shrink.iterations").add(generation + 1);
                telemetry::histogram("ulfm.shrink.generations").record(generation + 1);
                return Ok(ShrinkOutcome::Member(candidate));
            }
            all_failed.extend(verdict.failed.iter().copied());
            parent_group = candidate.group.clone();
            generation += 1;
        }
    }

    /// `MPI_Comm_split`: partition the members by `color`; within a color,
    /// new ranks order by `(key, old rank)`. Members passing
    /// [`Communicator::SPLIT_UNDEFINED`] get `Ok(None)`. Collective.
    pub fn split(&self, color: u64, key: u64) -> Result<Option<Communicator>, UlfmError> {
        let call = self.split_calls.get();
        self.split_calls.set(call + 1);
        let mine = u64::encode_slice(&[color, key]);
        let blocks = self.allgather(&mine, AllgatherAlgo::Bruck)?;
        if color == Self::SPLIT_UNDEFINED {
            return Ok(None);
        }
        // Members of my color, ordered by (key, old group index).
        let mut members: Vec<(u64, usize)> = blocks
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let words = u64::decode_slice(b);
                (words[0] == color).then_some((words[1], idx))
            })
            .collect();
        members.sort_unstable();
        let group: Vec<RankId> = members.iter().map(|&(_, idx)| self.group[idx]).collect();
        let id = self.shared.intern_comm(CommKey::Split {
            parent: self.id,
            split_seq: call,
            color,
            group: group.clone(),
        });
        Ok(Some(self.derive(id, group)))
    }

    /// Color value meaning "I do not join any split communicator"
    /// (`MPI_UNDEFINED`).
    pub const SPLIT_UNDEFINED: u64 = u64::MAX;

    // ---- dynamic membership (replacement / upscale) ---------------------

    /// Accept any workers waiting on the universe's join service and build
    /// the merged communicator. Collective over this communicator; returns
    /// `Ok(None)` if nobody is waiting. Group-local rank 0 acts as leader.
    ///
    /// The admission is all-or-none: the leader *snapshots* (never drains)
    /// the pending set, proposes `(epoch, joiners)` by broadcast, and the
    /// proposal only takes effect if a uniform commit agreement succeeds
    /// with no observed failures. On commit, *every* member issues the
    /// (identical) tickets, so a leader dying right after the decision
    /// cannot strand a decided joiner; on a failed commit nothing changed —
    /// the pending joiners stay pending, the caller runs its normal
    /// revoke → shrink recovery on *this* communicator and retries, and the
    /// shrunk group's new lowest rank takes over as join leader.
    ///
    /// Joiners call [`crate::Proc::join_training`]; the first collective on
    /// the merged communicator synchronizes old and new members.
    pub fn accept_joiners(&self) -> Result<Option<Communicator>, UlfmError> {
        match self.accept_joiners_directed(true)? {
            JoinOutcome::Merged(c) => Ok(Some(c)),
            JoinOutcome::NoneYet | JoinOutcome::StopWaiting => Ok(None),
        }
    }

    /// [`Communicator::accept_joiners`] with an explicit waiting directive,
    /// for engines that poll the join service at an epoch boundary under a
    /// deadline. `give_up` is this member's *local* hint that waiting
    /// should end (expected joiners all announced, or the deadline passed)
    /// — but only the leader's hint matters: it travels inside the
    /// committed proposal, so every member makes the identical
    /// keep-waiting/stop decision no matter how their local clocks
    /// disagree. Pending joiners always win over the hint — a last-moment
    /// arrival is admitted, not abandoned.
    pub fn accept_joiners_directed(&self, give_up: bool) -> Result<JoinOutcome, UlfmError> {
        // Named fault point: scripts can kill the join leader (or any
        // member) mid-handshake, before the proposal is broadcast.
        self.ep
            .fault_point("join.merge")
            .map_err(|e| self.map_transport(e))?;

        // Leader proposes (epoch, stop-flag, joiners). Dead joiners are
        // filtered out of the snapshot so the group proceeds without them.
        // A rank beyond the leader's table is one whose announcement raced
        // ahead of its first inbound link (network joiners dial before they
        // announce, but the accept thread may not have installed the stream
        // yet) — never seen dying, so it counts as alive; post-commit sends
        // buffer on its pending link until the stream lands.
        let mut payload = Vec::new();
        if self.my_idx == 0 {
            let table = self.ep.total_ranks();
            let pending = self
                .shared
                .join
                .snapshot_pending(&|r| r.0 >= table || self.ep.is_peer_alive(r));
            let epoch = self.shared.next_join_epoch();
            let mut words = vec![epoch, give_up as u64, pending.len() as u64];
            words.extend(pending.iter().map(|r| r.0 as u64));
            payload = u64::encode_slice(&words);
        }
        // The broadcast tears itself down reliably on failure (poison
        // frames unwind the tree), so no member stays blocked and — just
        // as important — nothing here revokes the communicator: a revoke
        // would yank a straggler still finishing the previous step's
        // collectives into the *training* recovery path while we run the
        // commit agreement, desynchronizing the per-communicator
        // agreement streams.
        let proposal = self.bcast(0, &mut payload);
        if matches!(proposal, Err(UlfmError::SelfDied)) {
            return Err(UlfmError::SelfDied);
        }

        // Uniform commit: every member contributes whether it holds the
        // proposal; any bcast failure or member death aborts the admission
        // on *all* members alike (no rank may act on a half-delivered
        // proposal while its peers retry).
        let ok = proposal.is_ok();
        let verdict = self.agree(ok as u64, u64::MAX)?;
        if verdict.flags != 1 || !verdict.failed.is_empty() {
            telemetry::counter("ulfm.join.failed_commits").incr();
            // Surface the failure that broke the commit so the caller's
            // recovery path (revoke → shrink → retry) takes over.
            if let Some(&g) = verdict.failed.first() {
                return Err(self.map_transport(TransportError::PeerDead(g)));
            }
            if let Some(&g) = self.group.iter().find(|&&g| !self.ep.is_peer_alive(g)) {
                return Err(self.map_transport(TransportError::PeerDead(g)));
            }
            self.revoke();
            return Err(UlfmError::Revoked);
        }

        let words = u64::decode_slice(&payload);
        let epoch = words[0];
        let stop = words[1] != 0;
        let joiners: Vec<RankId> = words[3..3 + words[2] as usize]
            .iter()
            .map(|&w| RankId(w as usize))
            .collect();
        if joiners.is_empty() {
            return Ok(if stop {
                JoinOutcome::StopWaiting
            } else {
                JoinOutcome::NoneYet
            });
        }

        let mut merged = self.group.clone();
        merged.extend(joiners.iter().copied());
        // Register every joiner with the local transport *before* anyone
        // can address it: the first collective on the merged communicator
        // must find a known (if still-connecting) rank, never UnknownRank.
        for &j in &joiners {
            self.ep.expect_rank(j);
        }
        // Intern the merged communicator's id first so the ticket can carry
        // it: a joiner process's own interner starts at zero and must adopt
        // the members' id sequence (see JoinTicket::comm_id).
        let id = self.shared.intern_comm(CommKey::Join {
            epoch,
            group: merged.clone(),
        });
        let ticket = JoinTicket {
            group: merged.clone(),
            epoch,
            comm_id: Some(id),
        };
        // Committed: every member confirms the identical tickets
        // (idempotent), so no single death after the decision can leave a
        // joiner waiting forever.
        self.shared.join.confirm_tickets(&joiners, &ticket);
        telemetry::counter("ulfm.join.accepted").add(joiners.len() as u64);
        Ok(JoinOutcome::Merged(self.derive(id, merged)))
    }

    /// Commit a recovery-policy decision uniformly across the (already
    /// shrunk) group. Collective; group-local rank 0 is the policy leader
    /// and `hint` is *its* scored choice — every other member's hint is
    /// ignored, because the decision travels inside the committed proposal
    /// (exactly the join-commit pattern: leader proposal broadcast →
    /// uniform agreement → idempotent ticket confirmation), so SPMD
    /// control flow cannot diverge on locally-scored inputs.
    ///
    /// For [`RecoveryArm::PromoteSpares`] the leader snapshots up to `want`
    /// live warm spares from the join service; if the pool turns out empty
    /// the committed decision *is* the downgrade to shrink (counted under
    /// `ulfm.policy.spare_unavailable`), never a wedge. On a committed
    /// promotion every member expects and tickets the spares like joiners
    /// and the merged communicator is returned.
    ///
    /// Any failure during the round (proposal broadcast, commit agreement)
    /// surfaces as the usual recoverable errors — the caller re-enters its
    /// revoke → agree → shrink recovery and retries or falls back
    /// (`ulfm.policy.failed_commits`).
    pub fn commit_recovery_policy(
        &self,
        hint: RecoveryArm,
        want: usize,
    ) -> Result<PolicyCommit, UlfmError> {
        // Named fault point: scripts can kill the policy leader (or any
        // member) mid-round, before the decision is committed.
        self.ep
            .fault_point("policy.round")
            .map_err(|e| self.map_transport(e))?;

        let mut payload = Vec::new();
        if self.my_idx == 0 {
            let table = self.ep.total_ranks();
            let (arm, spares) = match hint {
                RecoveryArm::PromoteSpares => {
                    // Same alive filter as the join snapshot: a rank beyond
                    // the leader's peer table raced its announce ahead of
                    // its first inbound link and counts as alive.
                    let mut pool = self
                        .shared
                        .join
                        .snapshot_spares(&|r| r.0 >= table || self.ep.is_peer_alive(r));
                    pool.truncate(want.max(1));
                    if pool.is_empty() {
                        // The pool is cold (never filled, drained, or every
                        // spare died): commit the downgrade so all members
                        // fall to shrink together.
                        telemetry::counter("ulfm.policy.spare_unavailable").incr();
                        (RecoveryArm::Shrink, Vec::new())
                    } else {
                        (RecoveryArm::PromoteSpares, pool)
                    }
                }
                arm => (arm, Vec::new()),
            };
            let epoch = self.shared.next_join_epoch();
            let mut words = vec![epoch, arm.to_wire(), spares.len() as u64];
            words.extend(spares.iter().map(|r| r.0 as u64));
            payload = u64::encode_slice(&words);
        }
        // Reliable-teardown broadcast + uniform agreement, verbatim from
        // the join handshake (see accept_joiners_directed for why nothing
        // here may revoke).
        let proposal = self.bcast(0, &mut payload);
        if matches!(proposal, Err(UlfmError::SelfDied)) {
            return Err(UlfmError::SelfDied);
        }
        let ok = proposal.is_ok();
        let verdict = self.agree(ok as u64, u64::MAX)?;
        if verdict.flags != 1 || !verdict.failed.is_empty() {
            telemetry::counter("ulfm.policy.failed_commits").incr();
            if let Some(&g) = verdict.failed.first() {
                return Err(self.map_transport(TransportError::PeerDead(g)));
            }
            if let Some(&g) = self.group.iter().find(|&&g| !self.ep.is_peer_alive(g)) {
                return Err(self.map_transport(TransportError::PeerDead(g)));
            }
            self.revoke();
            return Err(UlfmError::Revoked);
        }

        let words = u64::decode_slice(&payload);
        let epoch = words[0];
        let arm = RecoveryArm::from_wire(words[1]);
        let spares: Vec<RankId> = words[3..3 + words[2] as usize]
            .iter()
            .map(|&w| RankId(w as usize))
            .collect();
        match arm {
            RecoveryArm::Shrink => Ok(PolicyCommit::Shrink),
            RecoveryArm::Rollback => Ok(PolicyCommit::Rollback),
            RecoveryArm::PromoteSpares => {
                let mut merged = self.group.clone();
                merged.extend(spares.iter().copied());
                for &s in &spares {
                    self.ep.expect_rank(s);
                }
                let id = self.shared.intern_comm(CommKey::Join {
                    epoch,
                    group: merged.clone(),
                });
                let ticket = JoinTicket {
                    group: merged.clone(),
                    epoch,
                    comm_id: Some(id),
                };
                self.shared.join.confirm_tickets(&spares, &ticket);
                telemetry::counter("ulfm.policy.promoted").add(spares.len() as u64);
                Ok(PolicyCommit::Promoted(self.derive(id, merged)))
            }
        }
    }
}

/// Result of one [`Communicator::accept_joiners_directed`] round.
pub enum JoinOutcome {
    /// Joiners were committed; train on the merged communicator from now on.
    Merged(Communicator),
    /// Nobody was pending and the committed directive says keep waiting.
    NoneYet,
    /// Nobody was pending and the committed directive says stop waiting:
    /// proceed (possibly shrunk) rather than stall at this epoch boundary.
    StopWaiting,
}

/// The recovery arms a policy engine can choose between after a failure.
/// Wire-encoded inside the committed policy proposal so every member acts
/// on the *leader's* choice, never its own locally-scored one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryArm {
    /// Continue forward on the shrunk group, redoing the interrupted step
    /// from retained inputs (the paper's forward-shrink engine).
    Shrink,
    /// Promote warm spares from the standby pool into the group, absorbing
    /// the failure with no shrink.
    PromoteSpares,
    /// Roll every survivor back to the last checkpoint and recompute.
    Rollback,
}

impl RecoveryArm {
    pub(crate) fn to_wire(self) -> u64 {
        match self {
            RecoveryArm::Shrink => 0,
            RecoveryArm::PromoteSpares => 1,
            RecoveryArm::Rollback => 2,
        }
    }

    pub(crate) fn from_wire(w: u64) -> Self {
        match w {
            1 => RecoveryArm::PromoteSpares,
            2 => RecoveryArm::Rollback,
            // Unknown encodings degrade to the always-available arm.
            _ => RecoveryArm::Shrink,
        }
    }

    /// Stable lowercase name, used in telemetry counters and breakdowns.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryArm::Shrink => "shrink",
            RecoveryArm::PromoteSpares => "spare",
            RecoveryArm::Rollback => "rollback",
        }
    }
}

/// Result of one [`Communicator::commit_recovery_policy`] round: the
/// uniformly-committed decision every member must now act on.
pub enum PolicyCommit {
    /// Proceed with forward-shrink on the current (shrunk) communicator.
    Shrink,
    /// Roll back to the last checkpoint on the current communicator.
    Rollback,
    /// Spares were committed in: train on the merged communicator.
    Promoted(Communicator),
}

/// `PeerComm` adapter: maps group-local indices to global ranks, enforces
/// revocation, and translates transport errors into collective errors.
struct Adapter<'a> {
    comm: &'a Communicator,
    respect_revoke: bool,
}

impl Adapter<'_> {
    fn map(&self, e: TransportError) -> CollError {
        match e {
            TransportError::PeerDead(g) => CollError::PeerFailed {
                peer: self
                    .comm
                    .group
                    .iter()
                    .position(|&x| x == g)
                    .unwrap_or(usize::MAX),
            },
            TransportError::SelfDied => CollError::SelfDied,
            TransportError::Stopped => CollError::Revoked,
            other => unreachable!("unexpected transport error: {other}"),
        }
    }
}

impl PeerComm for Adapter<'_> {
    fn size(&self) -> usize {
        self.comm.group.len()
    }
    fn rank(&self) -> usize {
        self.comm.my_idx
    }
    fn send(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), CollError> {
        if self.respect_revoke && self.comm.is_revoked() {
            return Err(CollError::Revoked);
        }
        self.comm
            .ep
            .send(self.comm.group[peer], tag, data)
            .map_err(|e| self.map(e))
    }
    fn recv(&self, peer: usize, tag: u64) -> Result<Vec<u8>, CollError> {
        if self.respect_revoke && self.comm.is_revoked() {
            return Err(CollError::Revoked);
        }
        let stop = || self.respect_revoke && self.comm.is_revoked();
        self.comm
            .ep
            .recv_stoppable(self.comm.group[peer], tag, &stop)
            .map_err(|e| self.map(e))
    }
    fn fault_point(&self, name: &str) -> Result<(), CollError> {
        self.comm.ep.fault_point(name).map_err(|e| self.map(e))
    }
}
