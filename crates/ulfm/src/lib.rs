//! A ULFM-style resilient MPI runtime over the in-memory transport.
//!
//! This crate reproduces, in Rust, the User-Level Failure Mitigation
//! extension of MPI that the paper builds on (§2.3): MPI programs keep
//! running across process failures, errors are reported *per operation* at
//! the local rank, and a small set of recovery constructs restores full
//! collective capability:
//!
//! | ULFM construct | Here |
//! |---|---|
//! | `MPI_ERR_PROC_FAILED` per operation | [`UlfmError::ProcFailed`] returned by the failing operation only |
//! | `MPIX_Comm_revoke` | [`Communicator::revoke`] — poisons the communicator for all members and interrupts pending operations |
//! | `MPIX_Comm_agree` | [`Communicator::agree`] — fault-tolerant uniform agreement (bitwise AND of flags + union of known failures) |
//! | `MPIX_Comm_shrink` | [`Communicator::shrink`] — agreement on the failed set, then a new, dense, working communicator of survivors |
//! | `MPIX_Comm_failure_ack` / `get_acked` | [`Communicator::failure_ack`] / [`Communicator::get_acked`] |
//! | `MPI_Comm_spawn` + merge (for replacement/upscale) | [`Universe::spawn_joiners`] + [`Communicator::accept_joiners`] / [`Proc::join_training`] |
//!
//! Ranks are OS threads inside a [`Universe`]; the transport provides the
//! reliable fabric and the (perfect) failure detector. Collective
//! algorithms come from the `collectives` crate and surface peer death as
//! per-operation errors, which is all the recovery machinery above needs.
//!
//! ## Divergences from real ULFM, and why they are harmless here
//!
//! * **Failure detection is perfect and immediate** (a shared alive table),
//!   where Open MPI's RTE detector is eventually-perfect with a tunable
//!   timeout. This shifts *when* recovery starts by a constant, not the
//!   recovery protocol itself; the `simnet` crate models detection latency
//!   explicitly for the paper-scale figures.
//! * **Revocation propagates through shared state** (a revocation board)
//!   rather than a reliable broadcast. Observable semantics are the same:
//!   eventually every member's pending and future operations on the
//!   communicator fail with `Revoked`.
//! * **Agreement is a p-round flood-set protocol**, simple and obviously
//!   uniform under crash faults with a perfect detector, where ULFM
//!   implementations use the logarithmic ERA protocol. The threaded
//!   runtime cares about correctness, not message counts; `simnet` uses
//!   ERA's logarithmic cost for timing.

#![warn(missing_docs)]

mod agree;
mod comm;
mod error;
mod hierarchy;
mod lattice;
mod netjoin;
mod tags;
mod universe;

pub use agree::AgreeResult;
pub use comm::{Communicator, JoinOutcome, PolicyCommit, RecoveryArm, ShrinkOutcome};
pub use error::UlfmError;
pub use hierarchy::Hierarchy;
pub use lattice::{lattice_agree, AgreeImpl, Proposal};
pub use netjoin::NetJoin;
pub use universe::{JoinService, JoinTicket, Proc, Universe, WorkerHandle};

pub use transport::{NodeId, RankId, Topology};
