//! Fault-tolerant uniform agreement (`MPIX_Comm_agree`).
//!
//! The paper relies on `MPIX_Comm_agree` to reach consensus about failures
//! before shrinking (§3.1). We implement agreement as a **flood-set**
//! protocol: inputs are frozen on entry, and for `p` rounds every member
//! broadcasts its accumulated state to every other member and merges what
//! it receives. Merging is a semilattice (bitwise AND on flags, `min` on
//! the auxiliary value, union on the failure bitmap), and with at most
//! `p-1` crash faults at least one round is failure-free, after which all
//! survivors' states are equal and remain equal — the classic flood-set
//! uniformity argument under crash faults with reliable channels.
//!
//! ULFM implementations use the logarithmic ERA protocol instead; we trade
//! message count for obviousness of correctness in the threaded runtime
//! (the `simnet` crate models ERA's cost for the paper-scale figures).
//!
//! **Caller contract:** every *alive* member of the group must eventually
//! call agree with the same tag base (the recovery layer guarantees this:
//! a failure or revocation drives every member into recovery).

use crate::error::UlfmError;
use transport::{Endpoint, RankId, TransportError, Wire};

/// Outcome of an agreement: uniform across every member that returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgreeResult {
    /// Bitwise AND of every contributed flag word.
    pub flags: u64,
    /// Minimum of every contributed auxiliary value (the elastic layer uses
    /// this to agree on the earliest collective to re-execute).
    pub min: u64,
    /// Union of every member's *entry-time* failure knowledge — the agreed
    /// failed set used by shrink. Knowledge is frozen per member when it
    /// enters the agreement, so a member that dies *during* the agreement
    /// is included exactly when some participant had already observed the
    /// death on entry; either way the union (a semilattice merge flooded
    /// for `p` rounds) is identical on every member that returns, so the
    /// set is uniform even when deaths land between flood rounds. A death
    /// the agreement does not report is caught by the next one — which is
    /// why [`crate::Communicator::shrink_with`] iterates until a generation
    /// verifies with no new failures.
    pub failed: Vec<RankId>,
}

struct State {
    flags: u64,
    min: u64,
    bitmap: Vec<u64>,
}

impl State {
    fn encode(&self) -> Vec<u8> {
        let mut words = Vec::with_capacity(2 + self.bitmap.len());
        words.push(self.flags);
        words.push(self.min);
        words.extend_from_slice(&self.bitmap);
        u64::encode_slice(&words)
    }

    fn merge_bytes(&mut self, bytes: &[u8]) {
        let words = u64::decode_slice(bytes);
        assert_eq!(words.len(), 2 + self.bitmap.len(), "agree payload mismatch");
        self.flags &= words[0];
        self.min = self.min.min(words[1]);
        for (b, w) in self.bitmap.iter_mut().zip(&words[2..]) {
            *b |= w;
        }
    }
}

/// Run flood-set agreement over `group` (global rank ids, dense order).
///
/// `tag_base` must be a fresh recovery-class tag window; the protocol uses
/// offsets `0..group.len()`.
///
/// `verify` marks re-entries from `shrink_with`'s candidate-verification
/// loop: their rounds count under `ulfm.shrink.verify_rounds` so a
/// multi-generation shrink no longer double-counts `ulfm.agree.rounds`
/// against a single logical recovery.
pub(crate) fn flood_agree(
    ep: &Endpoint,
    group: &[RankId],
    my_idx: usize,
    tag_base: u64,
    flag: u64,
    min_val: u64,
    verify: bool,
) -> Result<AgreeResult, UlfmError> {
    let p = group.len();
    let words = p.div_ceil(64);
    let mut state = State {
        flags: flag,
        min: min_val,
        bitmap: vec![0u64; words.max(1)],
    };
    // Freeze inputs on entry: known failures now. Later failures are
    // (uniformly) caught by the flooding itself or by the next agreement.
    for (i, &g) in group.iter().enumerate() {
        if !ep.is_peer_alive(g) && g != ep.rank() {
            state.bitmap[i / 64] |= 1 << (i % 64);
        }
    }

    if p > 1 {
        let rounds_ctr = telemetry::counter(if verify {
            "ulfm.shrink.verify_rounds"
        } else {
            "ulfm.agree.rounds"
        });
        let mut bytes_sent = 0u64;
        for round in 0..p {
            rounds_ctr.incr();
            ep.fault_point("agree.round").map_err(map_self)?;
            let tag = tag_base + round as u64;
            let payload = state.encode();
            for (i, &peer) in group.iter().enumerate() {
                if i == my_idx {
                    continue;
                }
                match ep.send(peer, tag, &payload) {
                    Ok(()) => bytes_sent += payload.len() as u64,
                    Err(TransportError::PeerDead(_)) => {}
                    Err(TransportError::SelfDied) => return Err(UlfmError::SelfDied),
                    Err(e) => unreachable!("agree send: {e}"),
                }
            }
            for (i, &peer) in group.iter().enumerate() {
                if i == my_idx {
                    continue;
                }
                match ep.recv(peer, tag) {
                    Ok(bytes) => state.merge_bytes(&bytes),
                    Err(TransportError::PeerDead(_)) => {}
                    Err(TransportError::SelfDied) => return Err(UlfmError::SelfDied),
                    Err(e) => unreachable!("agree recv: {e}"),
                }
            }
        }
        telemetry::histogram("ulfm.agree.bytes").record(bytes_sent);
    }

    let failed = group
        .iter()
        .enumerate()
        .filter(|(i, _)| state.bitmap[i / 64] >> (i % 64) & 1 == 1)
        .map(|(_, &g)| g)
        .collect();
    Ok(AgreeResult {
        flags: state.flags,
        min: state.min,
        failed,
    })
}

fn map_self(e: TransportError) -> UlfmError {
    match e {
        TransportError::SelfDied => UlfmError::SelfDied,
        other => unreachable!("fault point returned {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags;
    use std::sync::Arc;
    use transport::{Fabric, FaultInjector, FaultPlan, Topology};

    fn run_agree(
        n: usize,
        plan: FaultPlan,
        pre_kill: &[usize],
        flag_of: impl Fn(usize) -> u64 + Send + Sync,
        min_of: impl Fn(usize) -> u64 + Send + Sync,
    ) -> Vec<Result<AgreeResult, UlfmError>> {
        let fabric = Fabric::new(Topology::flat(), FaultInjector::new(plan));
        let group = fabric.register_ranks(n);
        for &k in pre_kill {
            fabric.kill_rank(group[k]);
        }
        let flag_of = &flag_of;
        let min_of = &min_of;
        let group_ref = &group;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .filter(|i| !pre_kill.contains(i))
                .map(|i| {
                    let fabric = Arc::clone(&fabric);
                    s.spawn(move || {
                        let ep = Endpoint::new(fabric, group_ref[i]);
                        flood_agree(
                            &ep,
                            group_ref,
                            i,
                            tags::recovery_base(0, 0),
                            flag_of(i),
                            min_of(i),
                            false,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn failure_free_agreement_ands_flags_and_mins() {
        let results = run_agree(
            5,
            FaultPlan::none(),
            &[],
            |i| 0b111 & !(i as u64 & 1),
            |i| 10 + i as u64,
        );
        for r in &results {
            let r = r.as_ref().unwrap();
            assert_eq!(r.flags, 0b110);
            assert_eq!(r.min, 10);
            assert!(r.failed.is_empty());
        }
    }

    #[test]
    fn single_member_is_trivial() {
        let results = run_agree(1, FaultPlan::none(), &[], |_| 7, |_| 3);
        assert_eq!(
            results[0].as_ref().unwrap(),
            &AgreeResult {
                flags: 7,
                min: 3,
                failed: vec![]
            }
        );
    }

    #[test]
    fn pre_dead_member_lands_in_failed_set_uniformly() {
        let results = run_agree(6, FaultPlan::none(), &[2, 4], |_| 1, |_| 0);
        for r in &results {
            let r = r.as_ref().unwrap();
            assert_eq!(r.failed, vec![RankId(2), RankId(4)]);
            assert_eq!(r.flags, 1);
        }
    }

    #[test]
    fn death_mid_agreement_keeps_result_uniform() {
        // Rank 1 dies during round 2 of the agreement. All survivors must
        // still return the *same* result.
        let plan = FaultPlan::none().kill_at_point(RankId(1), "agree.round", 2);
        let results = run_agree(
            5,
            plan,
            &[],
            |i| if i == 3 { 0b01 } else { 0b11 },
            |i| i as u64,
        );
        let survivors: Vec<&AgreeResult> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        assert!(survivors.len() >= 3, "{results:?}");
        for s in &survivors[1..] {
            assert_eq!(*s, survivors[0], "non-uniform agreement");
        }
        assert!(results.iter().any(|r| r == &Err(UlfmError::SelfDied)));
    }

    #[test]
    fn agreement_uniform_under_many_overlapping_deaths() {
        for seed in 0..8u64 {
            let n = 7;
            let mut plan = FaultPlan::none();
            // Two scripted deaths at pseudo-random rounds.
            let a = (seed % 5 + 1) as usize;
            let b = ((seed * 3) % 5 + 1) as usize;
            plan = plan
                .kill_at_point(RankId(a), "agree.round", 1 + seed % 4)
                .kill_at_point(RankId(b), "agree.round", 1 + (seed / 2) % 4);
            let results = run_agree(n, plan, &[], |i| !(i as u64), |i| 100 - i as u64);
            let oks: Vec<&AgreeResult> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
            assert!(!oks.is_empty());
            for o in &oks[1..] {
                assert_eq!(*o, oks[0], "seed {seed}: non-uniform agreement {results:?}");
            }
        }
    }
}
