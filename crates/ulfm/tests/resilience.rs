//! End-to-end tests of the ULFM runtime: failures mid-collective, the
//! revoke → agree → shrink → retry cycle, recovery policies, and dynamic
//! joins. These exercise the exact mechanism the paper's §3 builds on.

use collectives::{AllgatherAlgo, AllreduceAlgo, ReduceOp};
use transport::{FaultPlan, LinkPerturb, PerturbPlan, RetryPolicy};
use ulfm::{Proc, RankId, ShrinkOutcome, Topology, UlfmError, Universe};

fn input_for(rank: usize, len: usize) -> Vec<f32> {
    (0..len).map(|i| (rank * 13 + i) as f32 * 0.5).collect()
}

fn sum_over(ranks: &[usize], len: usize) -> Vec<f32> {
    let mut out = vec![0.0; len];
    for &r in ranks {
        for (o, v) in out.iter_mut().zip(input_for(r, len)) {
            *o += v;
        }
    }
    out
}

#[test]
fn fault_free_allreduce_all_algorithms() {
    for algo in [
        AllreduceAlgo::Ring,
        AllreduceAlgo::RecursiveDoubling,
        AllreduceAlgo::Rabenseifner,
    ] {
        let u = Universe::without_faults(Topology::flat());
        let handles = u
            .spawn_batch(6, move |p: Proc| {
                let comm = p.init_comm();
                let mut buf = input_for(comm.rank(), 40);
                comm.allreduce(&mut buf, ReduceOp::Sum, algo).unwrap();
                buf
            })
            .unwrap();
        let want = sum_over(&[0, 1, 2, 3, 4, 5], 40);
        for h in handles {
            assert_eq!(h.join(), want, "{algo:?}");
        }
    }
}

#[test]
fn sequence_of_collectives_stays_matched() {
    let u = Universe::without_faults(Topology::flat());
    let handles = u
        .spawn_batch(4, |p: Proc| {
            let comm = p.init_comm();
            let mut a = vec![comm.rank() as f32];
            comm.allreduce(&mut a, ReduceOp::Sum, AllreduceAlgo::Ring)
                .unwrap();
            comm.barrier().unwrap();
            let mut b = vec![1u8 + comm.rank() as u8];
            let blocks = comm.allgather(&b, AllgatherAlgo::Bruck).unwrap();
            comm.bcast(2, &mut b).unwrap();
            (a[0], blocks, b)
        })
        .unwrap();
    for h in handles {
        let (sum, blocks, b) = h.join();
        assert_eq!(sum, 6.0);
        assert_eq!(blocks, vec![vec![1], vec![2], vec![3], vec![4]]);
        assert_eq!(b, vec![3]);
    }
}

/// The paper's core mechanism (§3.2): a worker dies mid-allreduce; the
/// survivors revoke, shrink, and *re-execute the failed allreduce from
/// their retained inputs* on the shrunk communicator — no rollback.
#[test]
fn forward_recovery_after_death_mid_allreduce() {
    let n = 6;
    let victim = 3usize;
    let plan = FaultPlan::none().kill_at_point(RankId(victim), "allreduce.step", 3);
    let u = Universe::new(Topology::flat(), plan);
    let handles = u
        .spawn_batch(n, move |p: Proc| {
            let comm = p.init_comm();
            let saved = input_for(comm.rank(), 48); // retained input (the gradient)
            let mut buf = saved.clone();
            match comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                Ok(()) => {
                    // This rank did not observe the failure; it will observe the
                    // revocation on its next operation and must join recovery.
                    match comm.barrier() {
                        Ok(()) => {} // possible if it raced ahead of the revoke
                        Err(e) => assert!(e.is_recoverable(), "{e:?}"),
                    }
                }
                Err(UlfmError::SelfDied) => return None,
                Err(e) => assert!(e.is_recoverable(), "{e:?}"),
            }
            // Recovery: revoke, shrink, retry from the retained input.
            comm.revoke();
            let shrunk = comm.shrink().expect("survivor must shrink");
            assert_eq!(shrunk.size(), n - 1);
            let mut buf = saved;
            shrunk
                .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring)
                .expect("retry on shrunk communicator must succeed");
            Some((shrunk.rank(), buf))
        })
        .unwrap();
    let want = sum_over(&[0, 1, 2, 4, 5], 48);
    let mut seen_ranks = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        match h.join() {
            None => assert_eq!(i, victim),
            Some((new_rank, buf)) => {
                assert_eq!(buf, want, "survivor {i} retry result");
                seen_ranks.push(new_rank);
            }
        }
    }
    seen_ranks.sort_unstable();
    assert_eq!(seen_ranks, vec![0, 1, 2, 3, 4], "dense re-ranking");
}

/// Timeout-based failure suspicion: no process ever *crashes* here — one
/// rank merely falls silent (total inbound link loss). Its peers' retry
/// budgets run dry, the silence is converted into `ProcFailed`, and the
/// ordinary revoke → agree → shrink recovery runs instead of a hang.
#[test]
fn silent_peer_is_suspected_and_shrunk_away() {
    let n = 4;
    let victim = 2usize;
    let u = Universe::without_faults(Topology::flat());
    u.set_perturbation(
        PerturbPlan::seeded(0x51_1E47)
            .links_into(RankId(victim), n, LinkPerturb::clean().drop(1.0))
            .retry(RetryPolicy {
                max_retries: 6,
                base: std::time::Duration::from_micros(100),
                cap: std::time::Duration::from_millis(1),
            }),
    );
    u.set_suspicion_timeout(std::time::Duration::from_millis(500));
    let handles = u
        .spawn_batch(n, move |p: Proc| {
            let comm = p.init_comm();
            let saved = input_for(comm.rank(), 32);
            let mut buf = saved.clone();
            match comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                // The silenced rank is eventually suspected (killed) and must
                // observe its own declared death rather than block forever.
                Err(UlfmError::SelfDied) => return None,
                Ok(()) => match comm.barrier() {
                    Ok(()) | Err(UlfmError::Revoked) => {}
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => assert!(e.is_recoverable(), "{e:?}"),
                },
                Err(e) => assert!(
                    e.is_recoverable(),
                    "suspicion must map to ProcFailed: {e:?}"
                ),
            }
            // The victim can reach this point too (a survivor's revoke wakes
            // its blocked receive before the suspicion lands), so every
            // recovery stage must tolerate SelfDied.
            comm.revoke();
            let mut cur = match comm.shrink() {
                Ok(c) => c,
                Err(UlfmError::SelfDied) => return None,
                Err(e) => panic!("{e}"),
            };
            assert_eq!(cur.size(), n - 1, "suspected rank must be excluded");
            loop {
                let mut buf = saved.clone();
                match cur.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                    Ok(()) => return Some(buf),
                    Err(UlfmError::SelfDied) => return None,
                    Err(_) => {
                        cur.revoke();
                        cur = match cur.shrink() {
                            Ok(c) => c,
                            Err(UlfmError::SelfDied) => return None,
                            Err(e) => panic!("{e}"),
                        };
                    }
                }
            }
        })
        .unwrap();
    let want = sum_over(&[0, 1, 3], 32);
    for (i, h) in handles.into_iter().enumerate() {
        match h.join() {
            None => assert_eq!(i, victim, "only the silenced rank may die"),
            Some(buf) => assert_eq!(buf, want, "survivor {i}"),
        }
    }
    assert!(
        u.fabric().unwrap().stats().suspicions >= 1,
        "death must have come from the failure detector"
    );
}

#[test]
fn revoke_interrupts_blocked_receiver() {
    // Rank 1 blocks receiving a p2p message that will never come; rank 0
    // revokes; rank 1 must unblock with Revoked.
    let u = Universe::without_faults(Topology::flat());
    let handles = u
        .spawn_batch(2, |p: Proc| {
            let comm = p.init_comm();
            if comm.rank() == 1 {
                comm.recv(0, 7).map(|_| ())
            } else {
                std::thread::sleep(std::time::Duration::from_millis(30));
                comm.revoke();
                Ok(())
            }
        })
        .unwrap();
    let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
    assert_eq!(results[0], Ok(()));
    assert_eq!(results[1], Err(UlfmError::Revoked));
}

#[test]
fn operations_on_revoked_comm_fail_but_shrink_works() {
    let u = Universe::without_faults(Topology::flat());
    let handles = u
        .spawn_batch(3, |p: Proc| {
            let comm = p.init_comm();
            // (No pre-revoke collective: a peer's revoke may interrupt it —
            // that interruption semantics is covered by other tests.)
            comm.revoke();
            let mut buf = vec![0.0f32; 4];
            assert_eq!(
                comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring),
                Err(UlfmError::Revoked)
            );
            // Nobody failed: shrink must return a same-size working communicator.
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), 3);
            let mut buf = vec![1.0f32];
            shrunk
                .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring)
                .unwrap();
            buf[0]
        })
        .unwrap();
    for h in handles {
        assert_eq!(h.join(), 3.0);
    }
}

/// Drop-node policy (§3.3.1): healthy ranks sharing a node with the victim
/// are excluded and must retire; the shrunk comm holds only other nodes.
#[test]
fn shrink_with_drop_node_policy() {
    let rpn = 3; // 3 ranks per node, 9 ranks = 3 nodes
    let topo = Topology::new(rpn);
    let victim = RankId(4); // node 1 (ranks 3,4,5)
    let plan = FaultPlan::none().kill_at_point(victim, "allreduce.step", 2);
    let u = Universe::new(topo, plan);
    let handles = u
        .spawn_batch(9, move |p: Proc| {
            let comm = p.init_comm();
            let mut buf = vec![1.0f32; 16];
            match comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                Err(UlfmError::SelfDied) => return "died",
                r => {
                    if r.is_ok() {
                        let _ = comm.barrier();
                    }
                }
            }
            comm.revoke();
            let outcome = comm
                .shrink_with(|failed| {
                    // Evict every rank co-located with a failure.
                    let mut evicted = Vec::new();
                    for &f in failed {
                        evicted.extend(topo.node_peers(f, 9));
                    }
                    evicted
                })
                .expect("shrink_with failed");
            match outcome {
                ShrinkOutcome::Excluded => {
                    p.retire();
                    "excluded"
                }
                ShrinkOutcome::Member(c) => {
                    assert_eq!(c.size(), 6, "two full nodes remain");
                    let mut b = vec![1.0f32];
                    c.allreduce(&mut b, ReduceOp::Sum, AllreduceAlgo::Ring)
                        .unwrap();
                    assert_eq!(b[0], 6.0);
                    "member"
                }
            }
        })
        .unwrap();
    let results: Vec<&str> = handles.into_iter().map(|h| h.join()).collect();
    assert_eq!(results[4], "died");
    assert_eq!(results[3], "excluded");
    assert_eq!(results[5], "excluded");
    for r in [0, 1, 2, 6, 7, 8] {
        assert_eq!(results[r], "member", "rank {r}");
    }
}

/// Replacement / upscale (§3.3.2–3.3.3): new workers join through the join
/// service and the merged communicator spans old + new.
#[test]
fn joiners_merge_into_running_group() {
    let u = Universe::without_faults(Topology::flat());
    let old = u
        .spawn_batch(3, |p: Proc| {
            let comm = p.init_comm();
            // Epoch boundary: wait until *both* joiners have announced (the
            // monotone counter makes this deterministic), then everyone calls
            // accept_joiners collectively.
            while p.announced_joiners() < 2 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let merged = comm.accept_joiners().unwrap().expect("joiners pending");
            let mut buf = vec![1.0f32];
            merged
                .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling)
                .unwrap();
            (merged.size(), buf[0], merged.rank())
        })
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let new = u
        .spawn_joiners(2, |p: Proc| {
            let merged = p.join_training().expect("fault-free join must succeed");
            let mut buf = vec![1.0f32];
            merged
                .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling)
                .unwrap();
            (merged.size(), buf[0], merged.rank())
        })
        .unwrap();
    let mut ranks = Vec::new();
    for h in old.into_iter().chain(new) {
        let (size, sum, rank) = h.join();
        assert_eq!(size, 5);
        assert_eq!(sum, 5.0);
        ranks.push(rank);
    }
    ranks.sort_unstable();
    assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
}

#[test]
fn accept_joiners_with_nobody_waiting_returns_none() {
    let u = Universe::without_faults(Topology::flat());
    let handles = u
        .spawn_batch(2, |p: Proc| {
            let comm = p.init_comm();
            comm.accept_joiners().unwrap().is_none()
        })
        .unwrap();
    for h in handles {
        assert!(h.join());
    }
}

#[test]
fn agree_min_supports_restart_index() {
    // Survivors agree on the earliest failed collective index: the elastic
    // layer uses the min-merge to decide where to resume.
    let u = Universe::without_faults(Topology::flat());
    let handles = u
        .spawn_batch(4, |p: Proc| {
            let comm = p.init_comm();
            let my_failed_op = 10 + comm.rank() as u64 * 3;
            let res = comm.agree(u64::MAX, my_failed_op).unwrap();
            (res.min, res.flags)
        })
        .unwrap();
    for h in handles {
        let (min, flags) = h.join();
        assert_eq!(min, 10);
        assert_eq!(flags, u64::MAX);
    }
}

#[test]
fn double_failure_shrink_iterates() {
    // Two victims die at different points; a single recovery episode must
    // still converge to a working communicator of the 4 survivors.
    let plan = FaultPlan::none()
        .kill_at_point(RankId(1), "allreduce.step", 2)
        .kill_at_point(RankId(4), "agree.round", 2);
    let u = Universe::new(Topology::flat(), plan);
    let handles = u
        .spawn_batch(6, |p: Proc| {
            let comm = p.init_comm();
            let mut buf = input_for(comm.rank(), 24);
            match comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                Err(UlfmError::SelfDied) => return None,
                r => {
                    if r.is_ok() {
                        if let Err(UlfmError::SelfDied) = comm.barrier() {
                            return None;
                        }
                    }
                }
            }
            comm.revoke();
            let mut cur = match comm.shrink() {
                Ok(c) => c,
                Err(UlfmError::SelfDied) => return None,
                Err(e) => panic!("{e}"),
            };
            // Retry until the collective completes (additional failures during
            // recovery trigger further shrinks).
            loop {
                let mut retry = input_for(p.rank().0, 24);
                match cur.allreduce(&mut retry, ReduceOp::Sum, AllreduceAlgo::Ring) {
                    Ok(()) => return Some((cur.size(), retry)),
                    Err(UlfmError::SelfDied) => return None,
                    Err(_) => {
                        cur.revoke();
                        cur = match cur.shrink() {
                            Ok(c) => c,
                            Err(UlfmError::SelfDied) => return None,
                            Err(e) => panic!("{e}"),
                        };
                    }
                }
            }
        })
        .unwrap();
    let want = sum_over(&[0, 2, 3, 5], 24);
    let mut survivors = 0;
    for (i, h) in handles.into_iter().enumerate() {
        if let Some((size, buf)) = h.join() {
            assert_eq!(size, 4, "rank {i}");
            assert_eq!(buf, want, "rank {i}");
            survivors += 1;
        }
    }
    assert_eq!(survivors, 4);
}

/// A member dies at its `shrink.attempt` fault point — i.e. *inside* the
/// recovery it was supposed to take part in. When the death is observed
/// before the candidate verification, a single `shrink()` call iterates
/// generations and excludes both victims; when it races the verification
/// (ULFM semantics: shrink may return a communicator containing members
/// that failed *concurrently*), the corpse surfaces on the next
/// collective and one more revoke → shrink round lands on the clean
/// group. Either way every survivor must converge to the same 4-member
/// communicator with the same reduction.
#[test]
fn shrink_iterates_when_member_dies_mid_shrink() {
    let plan = FaultPlan::none()
        .kill_at_point(RankId(1), "allreduce.step", 2)
        .kill_at_point(RankId(2), "shrink.attempt", 1);
    let u = Universe::new(Topology::flat(), plan);
    let handles = u
        .spawn_batch(6, |p: Proc| {
            let comm = p.init_comm();
            let saved = input_for(comm.rank(), 24);
            let mut buf = saved.clone();
            match comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                Err(UlfmError::SelfDied) => return None,
                r => {
                    if r.is_ok() {
                        if let Err(UlfmError::SelfDied) = comm.barrier() {
                            return None;
                        }
                    }
                }
            }
            let mut cur = comm;
            loop {
                cur.revoke();
                cur = match cur.shrink() {
                    Ok(c) => c,
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => panic!("{e}"),
                };
                let mut retry = input_for(p.rank().0, 24);
                match cur.allreduce(&mut retry, ReduceOp::Sum, AllreduceAlgo::Ring) {
                    Ok(()) => return Some((cur.size(), retry)),
                    Err(UlfmError::SelfDied) => return None,
                    // The mid-shrink death raced the candidate verification
                    // and leaked into the shrunk group; go around again.
                    Err(_) => {}
                }
            }
        })
        .unwrap();
    let want = sum_over(&[0, 3, 4, 5], 24);
    let mut survivors = 0;
    for (i, h) in handles.into_iter().enumerate() {
        if let Some((size, buf)) = h.join() {
            assert_eq!(size, 4, "rank {i} must land on the clean group");
            assert_eq!(buf, want, "rank {i}");
            survivors += 1;
        }
    }
    assert_eq!(survivors, 4);
}

/// Cascade on the join path: the join *leader* (lowest surviving rank)
/// dies at the `join.merge` fault point, mid-handshake. The uniform commit
/// aborts the half-delivered admission on every survivor; they revoke →
/// shrink, and the new lowest rank re-runs the handshake — the pending
/// joiner's ticket is re-issued and the merge still completes.
#[test]
fn join_leader_death_mid_handshake_reissues_tickets() {
    let plan = FaultPlan::none().kill_at_point(RankId(0), "join.merge", 1);
    let u = Universe::new(Topology::flat(), plan);
    let old = u
        .spawn_batch(4, |p: Proc| {
            let comm = p.init_comm();
            while p.announced_joiners() < 1 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let mut cur = comm;
            let merged = loop {
                match cur.accept_joiners() {
                    Ok(Some(m)) => break m,
                    Ok(None) => panic!("pending joiner lost without being admitted"),
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => {
                        assert!(e.is_recoverable(), "{e:?}");
                        cur.revoke();
                        cur = match cur.shrink() {
                            Ok(c) => c,
                            Err(UlfmError::SelfDied) => return None,
                            Err(e) => panic!("{e}"),
                        };
                    }
                }
            };
            let mut buf = vec![1.0f32];
            merged
                .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling)
                .unwrap();
            Some((merged.size(), buf[0]))
        })
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    let new = u
        .spawn_joiners(1, |p: Proc| {
            let merged = p
                .join_training()
                .expect("surviving members must re-issue the ticket");
            let mut buf = vec![1.0f32];
            merged
                .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling)
                .unwrap();
            Some((merged.size(), buf[0]))
        })
        .unwrap();
    let mut admitted = 0;
    for (i, h) in old.into_iter().chain(new).enumerate() {
        match h.join() {
            None => assert_eq!(i, 0, "only the scripted leader may die"),
            Some((size, sum)) => {
                assert_eq!(size, 4, "worker {i}: three survivors + one joiner");
                assert_eq!(sum, 4.0, "worker {i}");
                admitted += 1;
            }
        }
    }
    assert_eq!(admitted, 4);
}

/// A joiner announces itself and then dies *before* its ticket is issued.
/// The admission snapshot filters the corpse, so the group proceeds with
/// only the live joiner — nobody blocks on a ticket the dead rank will
/// never collect.
#[test]
fn dead_joiner_is_filtered_from_admission() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    // Ranks 0..2 are the running batch; the first joiner registers as
    // rank 3 and is killed right after announcing (`join.ticket`).
    let plan = FaultPlan::none().kill_at_point(RankId(3), "join.ticket", 1);
    let u = Universe::new(Topology::flat(), plan);
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let old = u
        .spawn_batch(3, move |p: Proc| {
            let comm = p.init_comm();
            // Wait until both joiners have announced *and* the main thread has
            // confirmed the doomed one is dead, so the snapshot must filter it.
            while p.announced_joiners() < 2 || !g.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let merged = comm
                .accept_joiners()
                .expect("admission with a live joiner must commit")
                .expect("live joiner must be pending");
            let mut buf = vec![1.0f32];
            merged
                .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling)
                .unwrap();
            Some((merged.size(), buf[0]))
        })
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));
    let new = u
        .spawn_joiners(2, |p: Proc| match p.join_training() {
            Ok(merged) => {
                let mut buf = vec![1.0f32];
                merged
                    .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling)
                    .unwrap();
                Some((merged.size(), buf[0]))
            }
            Err(UlfmError::SelfDied) => None,
            Err(e) => panic!("unexpected joiner exit: {e:?}"),
        })
        .unwrap();
    while u.fabric().unwrap().dead_ranks().is_empty() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    gate.store(true, Ordering::SeqCst);
    let mut results = Vec::new();
    for h in old.into_iter().chain(new) {
        results.push(h.join());
    }
    assert_eq!(results[3], None, "the doomed joiner must observe its death");
    for (i, r) in results.iter().enumerate() {
        if i == 3 {
            continue;
        }
        assert_eq!(
            *r,
            Some((4, 4.0)),
            "worker {i}: three members + the live joiner"
        );
    }
}
