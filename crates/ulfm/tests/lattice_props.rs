//! Property tests for the lattice-agreement fast path.
//!
//! Three layers, matching the protocol's correctness argument:
//!
//! 1. **Semilattice laws** — [`Proposal::join`] must be associative,
//!    commutative, and idempotent for arbitrary proposals; the uniformity
//!    proof leans on merges being order-insensitive.
//! 2. **Decide uniformity** — for arbitrary group sizes, pre-dead members,
//!    and deaths scripted at arbitrary `lattice.*` fault points and
//!    occurrences (on top of the thread scheduler's own interleaving),
//!    every member that returns `Ok` must hold the *same* decided result.
//! 3. **Oracle conformance** — in the failure-free case the lattice
//!    protocol must agree on exactly what the flood-set oracle agrees on,
//!    for arbitrary per-rank flag words and auxiliary values.

use proptest::prelude::*;
use std::sync::Arc;
use transport::{Endpoint, Fabric, FaultInjector, FaultPlan, RankId, Topology};
use ulfm::{lattice_agree, AgreeImpl, AgreeResult, Proc, Proposal, UlfmError, Universe};

/// Fresh recovery-class tag window for a standalone fabric (no communicator
/// allocates tags here, so any wide base works).
const TAG_BASE: u64 = 1 << 32;

fn proposal_from(flags: u64, min: u64, bitmap: Vec<u64>) -> Proposal {
    Proposal { flags, min, bitmap }
}

fn joined(a: &Proposal, b: &Proposal) -> Proposal {
    let mut out = a.clone();
    out.join(b);
    out
}

/// Run `lattice_agree` over `n` threads with scripted deaths and pre-dead
/// ranks; returns one result slot per *spawned* (non-pre-killed) member.
fn run_lattice(
    n: usize,
    plan: FaultPlan,
    pre_kill: &[usize],
    flag_of: impl Fn(usize) -> u64 + Send + Sync,
    min_of: impl Fn(usize) -> u64 + Send + Sync,
) -> Vec<Result<AgreeResult, UlfmError>> {
    let fabric = Fabric::new(Topology::flat(), FaultInjector::new(plan));
    let group = fabric.register_ranks(n);
    for &k in pre_kill {
        fabric.kill_rank(group[k]);
    }
    let flag_of = &flag_of;
    let min_of = &min_of;
    let group_ref = &group;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .filter(|i| !pre_kill.contains(i))
            .map(|i| {
                let fabric = Arc::clone(&fabric);
                s.spawn(move || {
                    let ep = Endpoint::new(fabric, group_ref[i]);
                    lattice_agree(&ep, group_ref, i, TAG_BASE, flag_of(i), min_of(i), false)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Decode one scripted death from a raw word: a victim rank in `1..n`
/// (rank 0 is never killed so at least one member always decides), one of
/// the three in-protocol fault points, and a small occurrence. Occurrences
/// past what the run reaches simply never fire — the victim survives.
fn decode_death(word: u64, n: usize) -> (RankId, &'static str, u64) {
    let rank = 1 + (word as usize % (n - 1));
    let point = match (word >> 8) % 3 {
        0 => "lattice.propose",
        1 => "lattice.ack",
        _ => "lattice.decide",
    };
    let occurrence = 1 + (word >> 16) % 3;
    (RankId(rank), point, occurrence)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Associativity: `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)`.
    #[test]
    fn join_is_associative(
        fa in any::<u64>(), fb in any::<u64>(), fc in any::<u64>(),
        ma in any::<u64>(), mb in any::<u64>(), mc in any::<u64>(),
        width in 1usize..4,
        seed in any::<u64>(),
    ) {
        let word = |i: u64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32 * 7);
        let a = proposal_from(fa, ma, (0..width).map(|i| word(i as u64)).collect());
        let b = proposal_from(fb, mb, (0..width).map(|i| word(i as u64 + 10)).collect());
        let c = proposal_from(fc, mc, (0..width).map(|i| word(i as u64 + 20)).collect());
        prop_assert_eq!(joined(&joined(&a, &b), &c), joined(&a, &joined(&b, &c)));
    }

    /// Commutativity: `a ⊔ b == b ⊔ a`.
    #[test]
    fn join_is_commutative(
        fa in any::<u64>(), fb in any::<u64>(),
        ma in any::<u64>(), mb in any::<u64>(),
        width in 1usize..4,
        seed in any::<u64>(),
    ) {
        let word = |i: u64| seed.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(i as u32 * 11);
        let a = proposal_from(fa, ma, (0..width).map(|i| word(i as u64)).collect());
        let b = proposal_from(fb, mb, (0..width).map(|i| word(i as u64 + 5)).collect());
        prop_assert_eq!(joined(&a, &b), joined(&b, &a));
    }

    /// Idempotence: `a ⊔ a == a`, and re-joining an absorbed element is a
    /// no-op (`(a ⊔ b) ⊔ b == a ⊔ b`).
    #[test]
    fn join_is_idempotent(
        fa in any::<u64>(), fb in any::<u64>(),
        ma in any::<u64>(), mb in any::<u64>(),
        width in 1usize..4,
        seed in any::<u64>(),
    ) {
        let word = |i: u64| seed.wrapping_mul(0x94D0_49BB_1331_11EB).rotate_left(i as u32 * 13);
        let a = proposal_from(fa, ma, (0..width).map(|i| word(i as u64)).collect());
        let b = proposal_from(fb, mb, (0..width).map(|i| word(i as u64 + 3)).collect());
        prop_assert_eq!(joined(&a, &a), a.clone());
        let ab = joined(&a, &b);
        prop_assert_eq!(joined(&ab, &b), ab.clone());
        prop_assert_eq!(joined(&ab, &a), ab);
    }

    /// Joins only widen: every suspicion present in either operand is
    /// present in the join, and none appear from nowhere.
    #[test]
    fn join_is_exactly_the_union_of_suspicions(
        seed in any::<u64>(),
        p in 1usize..130,
    ) {
        let mut a = Proposal::new(u64::MAX, u64::MAX, p);
        let mut b = Proposal::new(u64::MAX, u64::MAX, p);
        for i in 0..p {
            if seed.rotate_left(i as u32) & 1 == 1 {
                a.suspect(i);
            }
            if seed.rotate_right(i as u32 + 1) & 1 == 1 {
                b.suspect(i);
            }
        }
        let ab = joined(&a, &b);
        for i in 0..p {
            prop_assert_eq!(
                ab.is_suspected(i),
                a.is_suspected(i) || b.is_suspected(i),
                "index {}", i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniformity under arbitrary interleavings: random group size, random
    /// pre-dead members, and up to three deaths scripted at random
    /// in-protocol fault points. Every `Ok` result must be identical, and
    /// members every participant knew were dead on entry must be in it.
    #[test]
    fn decides_uniformly_under_arbitrary_fault_schedules(
        n in 4usize..9,
        death_words in proptest::collection::vec(any::<u64>(), 0..4),
        pre_words in proptest::collection::vec(any::<u64>(), 0..3),
        seed in any::<u64>(),
    ) {
        let mut plan = FaultPlan::none();
        for &w in &death_words {
            let (rank, point, occurrence) = decode_death(w, n);
            plan = plan.kill_at_point(rank, point, occurrence);
        }
        let pre_kill: Vec<usize> = {
            let mut v: Vec<usize> = pre_words.iter().map(|w| 1 + (*w as usize % (n - 1))).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let results = run_lattice(
            n,
            plan,
            &pre_kill,
            |i| seed.rotate_left(i as u32) | 1 << (i % 64),
            |i| seed.wrapping_add(i as u64 * 977),
        );
        let oks: Vec<&AgreeResult> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        prop_assert!(!oks.is_empty(), "rank 0 is never killed yet nobody decided");
        for o in &oks[1..] {
            prop_assert_eq!(*o, oks[0], "non-uniform decision");
        }
        for &k in &pre_kill {
            prop_assert!(
                oks[0].failed.contains(&RankId(k)),
                "entry-dead rank {} missing from the decided view {:?}", k, oks[0].failed
            );
        }
        // Errors can only be scripted suicides, never protocol failures.
        for r in &results {
            if let Err(e) = r {
                prop_assert_eq!(e, &UlfmError::SelfDied);
            }
        }
    }

    /// Failure-free conformance against the flood-set oracle: identical
    /// inputs through `Communicator::agree` under both implementations
    /// must produce identical `AgreeResult`s on every rank.
    #[test]
    fn failure_free_lattice_matches_flood_oracle(
        n in 2usize..7,
        seed in any::<u64>(),
    ) {
        let run = move |impl_: AgreeImpl| -> Vec<AgreeResult> {
            let u = Universe::without_faults(Topology::flat());
            let handles = u
                .spawn_batch(n, move |p: Proc| {
                    let comm = p.init_comm();
                    comm.set_agree_impl(impl_);
                    let i = comm.rank();
                    comm.agree(
                        seed.rotate_left(i as u32) | 1 << (i % 64),
                        seed.wrapping_add(i as u64 * 131),
                    )
                    .expect("failure-free agreement")
                })
                .expect("in-process spawn");
            handles.into_iter().map(|h| h.join()).collect()
        };
        let flood = run(AgreeImpl::Flood);
        let lattice = run(AgreeImpl::Lattice);
        prop_assert_eq!(&flood, &lattice, "lattice diverged from the flood oracle");
        for r in &flood[1..] {
            prop_assert_eq!(r, &flood[0], "oracle itself non-uniform");
        }
    }
}
