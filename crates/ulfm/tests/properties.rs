//! Property tests for the ULFM runtime: agreement uniformity under random
//! fault schedules, and shrink invariants.

use proptest::prelude::*;
use transport::{FaultPlan, RankId, Topology};
use ulfm::{Proc, Universe};

proptest! {
    // Each case spawns real threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Agreement uniformity: under any schedule of up to two scripted
    /// deaths at arbitrary agreement rounds, every survivor that returns a
    /// result returns the *same* result.
    #[test]
    fn agreement_uniform_under_random_faults(
        p in 3usize..=7,
        v1_pick in any::<usize>(),
        v2_pick in any::<usize>(),
        r1 in 1u64..=6,
        r2 in 1u64..=6,
        flags in proptest::collection::vec(any::<u64>(), 7),
    ) {
        let v1 = v1_pick % p;
        let v2 = v2_pick % p;
        let plan = FaultPlan::none()
            .kill_at_point(RankId(v1), "agree.round", r1)
            .kill_at_point(RankId(v2), "agree.round", r2);
        let u = Universe::new(Topology::flat(), plan);
        let flags = std::sync::Arc::new(flags);
        let fl = std::sync::Arc::clone(&flags);
        let handles = u.spawn_batch(p, move |proc: Proc| {
            let comm = proc.init_comm();
            comm.agree(fl[proc.rank().0 % fl.len()], proc.rank().0 as u64).ok()
        }).unwrap();
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        let oks: Vec<_> = results.iter().flatten().collect();
        prop_assert!(!oks.is_empty(), "at least one rank survives two faults");
        for o in &oks[1..] {
            prop_assert_eq!(*o, oks[0], "agreement must be uniform: {:?}", results);
        }
    }

    /// Shrink invariants: for any victim/timing, the shrunk communicator at
    /// every survivor has (a) the same group, (b) dense ranks matching the
    /// sorted survivor order, (c) no failed member.
    #[test]
    fn shrink_produces_identical_dense_groups(
        p in 3usize..=7,
        victim_pick in any::<usize>(),
        at in 1u64..=10,
    ) {
        let victim = victim_pick % p;
        let plan = FaultPlan::none().kill_at_point(RankId(victim), "allreduce.step", at);
        let u = Universe::new(Topology::flat(), plan);
        let handles = u.spawn_batch(p, move |proc: Proc| {
            let comm = proc.init_comm();
            let mut buf = vec![1.0f32; 32];
            match comm.allreduce(&mut buf, collectives::ReduceOp::Sum, Default::default()) {
                Err(ulfm::UlfmError::SelfDied) => return None,
                r => {
                    if r.is_ok() {
                        // Join recovery via the revocation signal.
                        if let Err(ulfm::UlfmError::SelfDied) = comm.barrier() {
                            return None;
                        }
                    }
                }
            }
            comm.revoke();
            match comm.shrink() {
                Ok(c) => Some((c.rank(), c.group().to_vec())),
                Err(_) => None,
            }
        }).unwrap();
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        let survivors: Vec<&(usize, Vec<RankId>)> = results.iter().flatten().collect();
        // If the victim's death fired (it may not, if `at` exceeds the
        // protocol length), survivors exclude it.
        prop_assert!(!survivors.is_empty());
        let group0 = &survivors[0].1;
        let mut seen_ranks: Vec<usize> = Vec::new();
        for (rank, group) in &survivors {
            prop_assert_eq!(group, group0, "groups differ across survivors");
            // Dense rank = position of self in group; collect for coverage.
            seen_ranks.push(*rank);
        }
        seen_ranks.sort_unstable();
        seen_ranks.dedup();
        prop_assert_eq!(seen_ranks.len(), survivors.len(), "duplicate dense ranks");
        // Group is sorted and has no dead members at shrink time.
        prop_assert!(group0.windows(2).all(|w| w[0] < w[1]));
    }
}
