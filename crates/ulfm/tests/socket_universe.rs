//! ULFM recovery over the socket backend: real byte-stream transports, one
//! universe per rank, revoke propagated as a transport signal instead of
//! shared memory. This is the in-process `resilience.rs` story replayed on
//! `SocketBackend` — the recovery protocol itself is unchanged.

use std::sync::Arc;
use std::time::Duration;

use collectives::{AllreduceAlgo, ReduceOp};
use transport::{Backend, BackendKind, Endpoint, FaultPlan, RankId, SocketBackend, Topology};
use ulfm::{UlfmError, Universe};

fn input_for(rank: usize, len: usize) -> Vec<f32> {
    (0..len).map(|i| (rank * 13 + i) as f32 * 0.5).collect()
}

fn sum_over(ranks: &[usize], len: usize) -> Vec<f32> {
    let mut acc = vec![0.0; len];
    for &r in ranks {
        for (a, v) in acc.iter_mut().zip(input_for(r, len)) {
            *a += v;
        }
    }
    acc
}

/// Spawn one thread per socket backend, each running its own `Universe`.
/// The victim dies at a fault point mid-allreduce; survivors revoke (the
/// revoke crosses rank boundaries as a transport signal), shrink, and
/// finish the allreduce on the smaller communicator.
fn recovery_over_sockets(kind: BackendKind) {
    const N: usize = 3;
    const VICTIM: usize = 1;
    const LEN: usize = 32;
    let plan = FaultPlan::none().kill_at_point(RankId(VICTIM), "allreduce.step", 2);
    let backends = SocketBackend::local_mesh(kind, Topology::flat(), N, plan).expect("mesh");
    // Socket peers have no shared memory: a rank that never touches the dead
    // link must learn of the death via suspicion, not global wakeup.
    for b in &backends {
        b.set_suspicion_timeout(Some(Duration::from_secs(2)));
    }
    let group: Vec<RankId> = (0..N).map(RankId).collect();

    let handles: Vec<_> = backends
        .iter()
        .cloned()
        .map(|b| {
            let group = group.clone();
            std::thread::spawn(move || -> Option<Vec<f32>> {
                let rank = b.rank().0;
                let ep = Endpoint::from_backend(b as Arc<dyn Backend>);
                let (_u, proc) = Universe::for_backend(ep, group);
                let comm = proc.init_comm();
                let mut buf = input_for(rank, LEN);
                match comm.allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring) {
                    Ok(()) => panic!("rank {rank}: allreduce must fail under the kill"),
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => assert!(e.is_recoverable(), "rank {rank}: unexpected {e:?}"),
                }
                comm.revoke();
                let shrunk = comm.shrink().expect("survivor must shrink");
                assert_eq!(shrunk.size(), N - 1);
                let mut buf = input_for(rank, LEN);
                shrunk
                    .allreduce(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring)
                    .expect("allreduce on shrunk communicator");
                Some(buf)
            })
        })
        .collect();

    let expected = sum_over(&[0, 2], LEN);
    let mut survivors = 0;
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join().expect("worker panicked") {
            Some(buf) => {
                assert_eq!(buf, expected, "rank {rank} result mismatch");
                survivors += 1;
            }
            None => assert_eq!(rank, VICTIM, "only the victim may die"),
        }
    }
    assert_eq!(survivors, N - 1);
    for b in &backends {
        b.shutdown();
    }
}

#[test]
fn recovery_over_tcp_sockets() {
    recovery_over_sockets(BackendKind::Tcp);
}

#[test]
fn recovery_over_unix_sockets() {
    recovery_over_sockets(BackendKind::Unix);
}

/// A revoke issued by one rank must interrupt a peer that is blocked in an
/// unrelated recv on another universe instance — that is exactly what the
/// cross-process SIGNAL path exists for.
#[test]
fn revoke_signal_interrupts_remote_recv() {
    const N: usize = 2;
    let backends =
        SocketBackend::local_mesh(BackendKind::Tcp, Topology::flat(), N, FaultPlan::none())
            .expect("mesh");
    let group: Vec<RankId> = (0..N).map(RankId).collect();
    let mk = |b: Arc<SocketBackend>| {
        Universe::for_backend(Endpoint::from_backend(b as Arc<dyn Backend>), group.clone())
    };
    let (_u0, p0) = mk(Arc::clone(&backends[0]));
    let (_u1, p1) = mk(Arc::clone(&backends[1]));

    let blocked = std::thread::spawn(move || {
        let comm = p1.init_comm();
        // Nobody ever sends on this channel; only the revoke can end it.
        let got = comm.recv(0, 7);
        (comm.is_revoked(), got)
    });
    let comm0 = p0.init_comm();
    // Give the peer time to actually block.
    std::thread::sleep(Duration::from_millis(50));
    comm0.revoke();
    let (revoked, got) = blocked.join().expect("blocked rank panicked");
    assert!(revoked, "revoke signal did not reach the remote universe");
    assert!(
        matches!(got, Err(UlfmError::Revoked)),
        "blocked recv must observe revocation, got {got:?}"
    );
    for b in &backends {
        b.shutdown();
    }
}
