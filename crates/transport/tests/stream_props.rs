//! Property tests for the socket stream layer: arbitrary envelope
//! sequences, split and coalesced at arbitrary byte boundaries, must
//! reassemble exactly; a stream truncated mid-envelope must yield a clean
//! [`StreamError::TruncatedStream`] from `finish()` — never a panic, never
//! a partial envelope.

use proptest::prelude::*;
use transport::{encode_envelope, StreamDecoder, StreamEnvelope, StreamError, StreamKind};

const KINDS: [StreamKind; 6] = [
    StreamKind::Data,
    StreamKind::Ack,
    StreamKind::Hello,
    StreamKind::Signal,
    StreamKind::Die,
    StreamKind::Bye,
];

/// Build an envelope sequence from independently generated kind indices
/// and payloads (the proptest shim has no tuple strategies).
fn zip_envelopes(kinds: &[usize], payloads: &[Vec<u8>]) -> Vec<StreamEnvelope> {
    kinds
        .iter()
        .zip(payloads)
        .map(|(k, payload)| StreamEnvelope {
            kind: KINDS[k % KINDS.len()],
            payload: payload.clone(),
        })
        .collect()
}

/// Concatenate the wire encoding of a sequence of envelopes.
fn encode_all(envs: &[StreamEnvelope]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for e in envs {
        bytes.extend_from_slice(&encode_envelope(e.kind, &e.payload));
    }
    bytes
}

/// Feed `bytes` to a decoder in chunks cut at the given boundaries,
/// draining complete envelopes after every push (as the reader loop does).
fn decode_chunked(bytes: &[u8], cuts: &[usize]) -> (Vec<StreamEnvelope>, StreamDecoder) {
    let mut dec = StreamDecoder::new();
    let mut out = Vec::new();
    let mut prev = 0usize;
    let mut cutpoints: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    cutpoints.sort_unstable();
    cutpoints.push(bytes.len());
    for cut in cutpoints {
        if cut > prev {
            dec.push(&bytes[prev..cut]);
            prev = cut;
        }
        while let Some(env) = dec.next_envelope().expect("valid stream must decode") {
            out.push(env);
        }
    }
    (out, dec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any envelope sequence, split/coalesced at any byte boundaries,
    /// round-trips exactly and ends on a clean boundary.
    #[test]
    fn arbitrary_splits_reassemble_exactly(
        kinds in proptest::collection::vec(0usize..6, 0..12),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 0..12),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let n = kinds.len().min(payloads.len());
        let envs = zip_envelopes(&kinds[..n], &payloads[..n]);
        let bytes = encode_all(&envs);
        let (decoded, dec) = decode_chunked(&bytes, &cuts);
        prop_assert_eq!(decoded, envs);
        prop_assert_eq!(dec.finish(), Ok(()));
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A stream truncated anywhere strictly inside its final envelope
    /// decodes every whole envelope before the tear, then reports
    /// TruncatedStream from finish() — and never panics or yields a
    /// partial envelope.
    #[test]
    fn truncated_tail_is_a_clean_error(
        kinds in proptest::collection::vec(0usize..6, 1..8),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
        cut_back in any::<usize>(),
    ) {
        let n = kinds.len().min(payloads.len());
        let envs = zip_envelopes(&kinds[..n], &payloads[..n]);
        let bytes = encode_all(&envs);
        let last = envs.last().unwrap();
        let last_len = encode_envelope(last.kind, &last.payload).len();
        // Truncate somewhere strictly inside the final envelope: dropping
        // all `last_len` bytes would leave a clean boundary, so keep at
        // least one byte of it (headers are 5 bytes, so last_len > 1).
        let drop = 1 + cut_back % (last_len - 1);
        let torn = &bytes[..bytes.len() - drop];
        let (decoded, mut dec) = decode_chunked(torn, &cuts);
        // Every envelope before the torn one still decodes, in order.
        prop_assert_eq!(decoded.as_slice(), &envs[..envs.len() - 1]);
        prop_assert_eq!(dec.next_envelope(), Ok(None));
        match dec.finish() {
            Err(StreamError::TruncatedStream { leftover }) => {
                prop_assert_eq!(leftover, last_len - drop);
            }
            other => prop_assert!(false, "expected TruncatedStream, got {:?}", other),
        }
    }

    /// Hostile bytes never panic the decoder: it either produces envelopes
    /// or reports a fatal error, and once it errors it stays errored.
    #[test]
    fn garbage_never_panics(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut dec = StreamDecoder::new();
        let mut prev = 0usize;
        let mut cutpoints: Vec<usize> = cuts.iter().map(|c| c % (junk.len() + 1)).collect();
        cutpoints.sort_unstable();
        cutpoints.push(junk.len());
        'outer: for cut in cutpoints {
            if cut > prev {
                dec.push(&junk[prev..cut]);
                prev = cut;
            }
            loop {
                match dec.next_envelope() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        // Fatal and sticky: the same error again, forever.
                        prop_assert_eq!(dec.next_envelope(), Err(e));
                        break 'outer;
                    }
                }
            }
        }
    }
}
