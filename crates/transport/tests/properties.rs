//! Property tests for the transport layer: wire codec, topology algebra,
//! and ordering/liveness invariants of the fabric — including exactly-once
//! in-order delivery over adversarially perturbed links.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use transport::{
    Endpoint, Fabric, LinkPerturb, PerturbPlan, RankId, RetryPolicy, Topology, TransportError, Wire,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_roundtrip_f32(xs in proptest::collection::vec(any::<f32>(), 0..128)) {
        let bytes = f32::encode_slice(&xs);
        prop_assert_eq!(bytes.len(), xs.len() * 4);
        let back = f32::decode_slice(&bytes);
        for (a, b) in xs.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wire_roundtrip_u64(xs in proptest::collection::vec(any::<u64>(), 0..64)) {
        prop_assert_eq!(u64::decode_slice(&u64::encode_slice(&xs)), xs);
    }

    #[test]
    fn wire_roundtrip_mixed_ints(
        a in any::<i32>(),
        b in any::<u16>(),
        c in any::<i64>(),
    ) {
        let mut buf = Vec::new();
        a.write(&mut buf);
        b.write(&mut buf);
        c.write(&mut buf);
        prop_assert_eq!(i32::read(&buf[0..4]), a);
        prop_assert_eq!(u16::read(&buf[4..6]), b);
        prop_assert_eq!(i64::read(&buf[6..14]), c);
    }

    /// node_of and ranks_on_node are mutually consistent for any topology.
    #[test]
    fn topology_partition_invariants(rpn in 1usize..=16, total in 0usize..=128) {
        let t = Topology::new(rpn);
        // Every rank appears on exactly one node, its own.
        for r in 0..total {
            let node = t.node_of(RankId(r));
            let ranks = t.ranks_on_node(node, total);
            prop_assert!(ranks.contains(&RankId(r)));
            prop_assert!(ranks.len() <= rpn);
        }
        // Node lists tile the rank space exactly.
        let nodes = t.nodes_for(total);
        let mut all: Vec<RankId> = Vec::new();
        for nd in 0..nodes {
            all.extend(t.ranks_on_node(transport::NodeId(nd), total));
        }
        prop_assert_eq!(all.len(), total);
        for (i, r) in all.iter().enumerate() {
            prop_assert_eq!(r.0, i);
        }
    }

    /// FIFO per (sender, tag) channel: any interleaving of sends arrives in
    /// order when received from the same channel.
    #[test]
    fn fabric_fifo_per_channel(msgs in proptest::collection::vec(0u8..4, 1..40)) {
        let fabric = Fabric::without_faults(Topology::flat());
        let ranks = fabric.register_ranks(2);
        let tx = Endpoint::new(Arc::clone(&fabric), ranks[0]);
        let rx = Endpoint::new(Arc::clone(&fabric), ranks[1]);
        // Sends interleave across 4 tags; per tag the payload sequence is
        // the subsequence of `msgs` with that tag.
        for (i, &tag) in msgs.iter().enumerate() {
            tx.send(ranks[1], tag as u64, &[i as u8]).unwrap();
        }
        for tag in 0u8..4 {
            let expected: Vec<u8> = msgs
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == tag)
                .map(|(i, _)| i as u8)
                .collect();
            for want in expected {
                let got = rx.recv(ranks[0], tag as u64).unwrap();
                prop_assert_eq!(got, vec![want]);
            }
        }
    }

    /// Killing any subset of ranks leaves exactly the complement alive.
    #[test]
    fn alive_set_is_complement_of_killed(
        total in 1usize..=32,
        kills in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        let fabric = Fabric::without_faults(Topology::flat());
        fabric.register_ranks(total);
        let mut killed: Vec<usize> = kills.iter().map(|k| k % total).collect();
        for &k in &killed {
            fabric.kill_rank(RankId(k));
        }
        killed.sort_unstable();
        killed.dedup();
        let alive = fabric.alive_ranks();
        prop_assert_eq!(alive.len(), total - killed.len());
        for r in alive {
            prop_assert!(!killed.contains(&r.0));
        }
        prop_assert_eq!(fabric.stats().deaths, killed.len() as u64);
    }

    /// Exactly-once, in-order delivery survives any random perturbation
    /// seed: drops, duplicates, corruption, and reordering on every link
    /// are healed by checksums + sequence numbers + retransmission, and the
    /// receiver observes each payload exactly once, in send order.
    #[test]
    fn perturbed_links_deliver_exactly_once_in_order(
        seed in any::<u64>(),
        msgs in proptest::collection::vec(0u8..3, 1..30),
    ) {
        let fabric = Fabric::without_faults(Topology::flat());
        fabric.set_perturbation(
            PerturbPlan::seeded(seed)
                .all_links(
                    LinkPerturb::clean()
                        .drop(0.25)
                        .duplicate(0.25)
                        .corrupt(0.15)
                        .reorder(0.10),
                )
                .retry(RetryPolicy {
                    max_retries: 48,
                    base: Duration::from_micros(10),
                    cap: Duration::from_micros(200),
                }),
        );
        let ranks = fabric.register_ranks(2);
        let tx = Endpoint::new(Arc::clone(&fabric), ranks[0]);
        let rx = Endpoint::new(Arc::clone(&fabric), ranks[1]);
        for (i, &tag) in msgs.iter().enumerate() {
            tx.send(ranks[1], tag as u64, &[i as u8]).unwrap();
        }
        // Per tag channel: the exact subsequence, in order, nothing extra.
        for tag in 0u8..3 {
            let expected: Vec<u8> = msgs
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == tag)
                .map(|(i, _)| i as u8)
                .collect();
            for want in expected {
                let got = rx.recv(ranks[0], tag as u64).unwrap();
                prop_assert_eq!(got, vec![want]);
            }
            // Channel must now be empty: duplicates were all suppressed.
            prop_assert_eq!(
                rx.recv_timeout(ranks[0], tag as u64, Duration::from_millis(1)),
                Err(TransportError::Timeout)
            );
        }
        prop_assert_eq!(fabric.stats().deaths, 0);
    }

    /// A link that never delivers exhausts the retry budget and surfaces
    /// `PeerDead` (the ULFM suspicion signal) in bounded time — it must
    /// never hang or return a bare timeout.
    #[test]
    fn exhausted_retries_surface_peer_dead(seed in any::<u64>()) {
        let fabric = Fabric::without_faults(Topology::flat());
        let policy = RetryPolicy {
            max_retries: 4,
            base: Duration::from_micros(20),
            cap: Duration::from_micros(100),
        };
        fabric.set_perturbation(
            PerturbPlan::seeded(seed)
                .link(RankId(0), RankId(1), LinkPerturb::clean().drop(1.0))
                .retry(policy),
        );
        let ranks = fabric.register_ranks(2);
        let tx = Endpoint::new(Arc::clone(&fabric), ranks[0]);
        let start = Instant::now();
        prop_assert_eq!(
            tx.send(ranks[1], 0, b"into the void"),
            Err(TransportError::PeerDead(ranks[1]))
        );
        prop_assert!(start.elapsed() < Duration::from_secs(2), "bounded failure");
        prop_assert_eq!(fabric.stats().suspicions, 1);
        // The suspicion is sticky: later traffic fails fast.
        prop_assert_eq!(
            tx.send(ranks[1], 1, b"again"),
            Err(TransportError::PeerDead(ranks[1]))
        );
    }
}
